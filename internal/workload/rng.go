// Package workload generates adversarial, reproducible traffic for the
// scenario lab: bursty arrival processes (Gamma-renewal and two-state
// MMPP), diurnal rate envelopes, mixed CBR/VBR connection fleets, and
// connection churn schedules with holding-time distributions.
//
// Every generator is a pure function of its seed: the same seed produces
// the byte-identical sequence on every run, platform and Go version,
// because the package carries its own splitmix64-based PRNG instead of
// depending on math/rand's stream stability. Determinism is what turns a
// scenario into an experiment — a falsified hypothesis can be replayed
// exactly from its recorded seed.
package workload

import (
	"errors"
	"math"
)

// ErrConfig reports invalid generator parameters.
var ErrConfig = errors.New("workload: invalid configuration")

// RNG is a small deterministic pseudo-random generator (splitmix64 core).
// It is not concurrency-safe; derive independent substreams with Split
// instead of sharing one RNG across generators.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent substream keyed by label: generators for
// different concerns (arrivals, fleet, holding times) never consume from
// each other's sequence, so adding a draw to one cannot silently shift
// another. The parent stream is not advanced.
func (r *RNG) Split(label string) *RNG {
	// FNV-1a over the label, mixed with the parent seed through one
	// splitmix64 step for avalanche.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	child := &RNG{state: r.state ^ h}
	child.state = child.state*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	return child
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -mean * math.Log(1-r.Float64())
}

// Normal returns a standard normal draw (Box–Muller, one value per call;
// the spare is discarded to keep the state trajectory simple).
func (r *RNG) Normal() float64 {
	u := 1 - r.Float64() // (0, 1]
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Gamma returns a Gamma(shape, scale) draw (Marsaglia–Tsang squeeze for
// shape >= 1, boosted for shape < 1). It panics on non-positive
// parameters; generator constructors validate before drawing.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("workload: Gamma with non-positive parameters")
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := 1 - r.Float64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64() // (0, 1]
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}
