package workload

import (
	"fmt"
	"math"
)

// Arrivals is a deterministic arrival process: Next returns the absolute
// time of the next arrival, in abstract time units chosen by the caller
// (the scenario decides whether a unit is a cell time, a millisecond or a
// limiter-clock second). Successive calls are non-decreasing.
type Arrivals interface {
	Next() float64
}

// Times drains the next n arrival instants of a process into a slice.
func Times(a Arrivals, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

// GammaConfig parameterizes a Gamma-renewal arrival process: interarrival
// times are i.i.d. Gamma draws with mean 1/Rate and coefficient of
// variation CV. CV = 1 degenerates to Poisson; CV > 1 is burstier than
// Poisson (the inference-sim hypothesis methodology uses CV = 3.5 as its
// reference storm).
type GammaConfig struct {
	// Rate is the mean arrival rate (arrivals per time unit); > 0.
	Rate float64
	// CV is the coefficient of variation of interarrival times; > 0.
	CV float64
}

// GammaProcess is a seeded Gamma-renewal process.
type GammaProcess struct {
	rng          *RNG
	shape, scale float64
	now          float64
}

// NewGamma returns a Gamma-renewal process. Shape and scale derive from
// (Rate, CV): shape = 1/CV², scale = CV²/Rate, giving interarrival mean
// 1/Rate and the requested CV.
func NewGamma(seed uint64, cfg GammaConfig) (*GammaProcess, error) {
	if !(cfg.Rate > 0) || math.IsInf(cfg.Rate, 0) {
		return nil, fmt.Errorf("%w: gamma rate %g", ErrConfig, cfg.Rate)
	}
	if !(cfg.CV > 0) || math.IsInf(cfg.CV, 0) {
		return nil, fmt.Errorf("%w: gamma CV %g", ErrConfig, cfg.CV)
	}
	return &GammaProcess{
		rng:   NewRNG(seed).Split("gamma-renewal"),
		shape: 1 / (cfg.CV * cfg.CV),
		scale: cfg.CV * cfg.CV / cfg.Rate,
	}, nil
}

// Next implements Arrivals.
func (g *GammaProcess) Next() float64 {
	g.now += g.rng.Gamma(g.shape, g.scale)
	return g.now
}

// MMPPConfig parameterizes a two-state Markov-modulated Poisson process:
// the source alternates between a quiet and a burst state, each holding
// for an exponential sojourn, emitting Poisson arrivals at the state's
// rate. It is the classical adversarial storm model — long quiet spells
// that lull adaptive controls, then sustained bursts far above the mean.
type MMPPConfig struct {
	// QuietRate and BurstRate are the per-state arrival rates; QuietRate
	// >= 0, BurstRate > 0.
	QuietRate float64
	BurstRate float64
	// MeanQuiet and MeanBurst are the mean state sojourn times; > 0.
	MeanQuiet float64
	MeanBurst float64
}

// MeanRate returns the stationary mean arrival rate: the sojourn-weighted
// average of the two state rates.
func (c MMPPConfig) MeanRate() float64 {
	return (c.QuietRate*c.MeanQuiet + c.BurstRate*c.MeanBurst) /
		(c.MeanQuiet + c.MeanBurst)
}

// MMPP is a seeded two-state Markov-modulated Poisson process.
type MMPP struct {
	cfg      MMPPConfig
	rng      *RNG
	now      float64
	stateEnd float64
	burst    bool
}

// NewMMPP returns a two-state MMPP starting in the quiet state.
func NewMMPP(seed uint64, cfg MMPPConfig) (*MMPP, error) {
	if cfg.QuietRate < 0 || !(cfg.BurstRate > 0) {
		return nil, fmt.Errorf("%w: MMPP rates quiet=%g burst=%g", ErrConfig, cfg.QuietRate, cfg.BurstRate)
	}
	if !(cfg.MeanQuiet > 0) || !(cfg.MeanBurst > 0) {
		return nil, fmt.Errorf("%w: MMPP sojourns quiet=%g burst=%g", ErrConfig, cfg.MeanQuiet, cfg.MeanBurst)
	}
	m := &MMPP{cfg: cfg, rng: NewRNG(seed).Split("mmpp")}
	m.stateEnd = m.rng.Exp(cfg.MeanQuiet)
	return m, nil
}

// Next implements Arrivals.
func (m *MMPP) Next() float64 {
	for {
		rate := m.cfg.QuietRate
		if m.burst {
			rate = m.cfg.BurstRate
		}
		if rate > 0 {
			gap := m.rng.Exp(1 / rate)
			if m.now+gap <= m.stateEnd {
				m.now += gap
				return m.now
			}
		}
		// No arrival before the state expires: switch states. The
		// memorylessness of the exponential lets the next state's clock
		// start fresh at the boundary.
		m.now = m.stateEnd
		m.burst = !m.burst
		mean := m.cfg.MeanQuiet
		if m.burst {
			mean = m.cfg.MeanBurst
		}
		m.stateEnd = m.now + m.rng.Exp(mean)
	}
}

// Envelope is a diurnal rate envelope: the instantaneous arrival rate is
// Base*(1 + Amplitude*sin(2πt/Period)). Over any whole period the sine
// integrates to zero, so the envelope's mean rate is exactly Base — the
// target load the property tests pin.
type Envelope struct {
	// Base is the mean rate; > 0.
	Base float64
	// Amplitude in [0, 1) scales the swing; 0 is a flat Poisson process.
	Amplitude float64
	// Period is the cycle length in time units; > 0.
	Period float64
}

func (e Envelope) validate() error {
	if !(e.Base > 0) || math.IsInf(e.Base, 0) {
		return fmt.Errorf("%w: envelope base rate %g", ErrConfig, e.Base)
	}
	if e.Amplitude < 0 || e.Amplitude >= 1 {
		return fmt.Errorf("%w: envelope amplitude %g not in [0, 1)", ErrConfig, e.Amplitude)
	}
	if !(e.Period > 0) || math.IsInf(e.Period, 0) {
		return fmt.Errorf("%w: envelope period %g", ErrConfig, e.Period)
	}
	return nil
}

// Rate returns the instantaneous rate at time t.
func (e Envelope) Rate(t float64) float64 {
	return e.Base * (1 + e.Amplitude*math.Sin(2*math.Pi*t/e.Period))
}

// MeanRate returns the envelope's exact mean rate over a whole period.
func (e Envelope) MeanRate() float64 { return e.Base }

// Integrate numerically integrates the rate over [0, t] by midpoint rule
// with the given number of steps — the oracle the envelope property test
// compares against Base*t.
func (e Envelope) Integrate(t float64, steps int) float64 {
	if steps < 1 {
		steps = 1
	}
	h := t / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += e.Rate((float64(i) + 0.5) * h)
	}
	return sum * h
}

// DiurnalProcess is a seeded non-homogeneous Poisson process whose
// intensity follows an Envelope, generated by thinning a homogeneous
// process at the peak rate.
type DiurnalProcess struct {
	env  Envelope
	peak float64
	rng  *RNG
	now  float64
}

// NewDiurnal returns a diurnal arrival process over env.
func NewDiurnal(seed uint64, env Envelope) (*DiurnalProcess, error) {
	if err := env.validate(); err != nil {
		return nil, err
	}
	return &DiurnalProcess{
		env:  env,
		peak: env.Base * (1 + env.Amplitude),
		rng:  NewRNG(seed).Split("diurnal"),
	}, nil
}

// Next implements Arrivals.
func (d *DiurnalProcess) Next() float64 {
	for {
		d.now += d.rng.Exp(1 / d.peak)
		// Accept with probability rate(t)/peak (thinning): the survivors
		// form the non-homogeneous process with intensity rate(t).
		if d.rng.Float64()*d.peak < d.env.Rate(d.now) {
			return d.now
		}
	}
}
