package bitstream

import (
	"errors"
	"math"
	"testing"
)

func TestDelayedZeroCDV(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	got, err := s.Delayed(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s, 0) {
		t.Fatalf("Delayed(0) = %v, want unchanged %v", got, s)
	}
}

func TestDelayedNegativeCDV(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	if _, err := s.Delayed(-1); !errors.Is(err, ErrNegative) {
		t.Fatalf("Delayed(-1) error = %v, want ErrNegative", err)
	}
}

func TestDelayedRejectsAggregate(t *testing.T) {
	agg := MustNew([]Segment{{0, 3}, {1, 0.5}})
	if _, err := agg.Delayed(1); !errors.Is(err, ErrRateAboveLink) {
		t.Fatalf("Delayed on aggregate error = %v, want ErrRateAboveLink", err)
	}
}

func TestDelayedZeroStream(t *testing.T) {
	got, err := Zero().Delayed(10)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatalf("Zero().Delayed(10) = %v, want zero", got)
	}
}

// TestDelayedHandComputed verifies Algorithm 3.1 on a worked example.
// S = {(1,0),(0.5,1)} delayed by CDV=2: bits in [0,2] are 1 + 0.5 = 1.5
// (AREA1). After CDV the stream arrives at 0.5, so the unit-rate release
// drains the backlog at rate 1-0.5: t' solves A(t') = t'-2, i.e.
// 1 + 0.5(t'-1) = t'-2 -> t' = 5. S' = {(1,0),(0.5,3)}.
func TestDelayedHandComputed(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	got, err := s.Delayed(2)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {3, 0.5}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Delayed(2) = %v, want %v", got, want)
	}
}

// TestDelayedVBRHandComputed delays a full VBR envelope past its burst.
// S = {(1,0),(0.5,1),(0.1,9)} (PCR=0.5, SCR=0.1, MBS=5), CDV=20.
// AREA1 = A(20) = 1 + 0.5*8 + 0.1*11 = 6.1. t' solves A(t') = t'-20 in the
// tail: 5 + 0.1(t'-9) = t'-20 -> 0.9 t' = 24.1 -> t' = 26.777...
// S' = {(1,0),(0.1, t'-20)}.
func TestDelayedVBRHandComputed(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {9, 0.1}})
	got, err := s.Delayed(20)
	if err != nil {
		t.Fatal(err)
	}
	tPrime := 24.1 / 0.9
	want := MustNew([]Segment{{0, 1}, {tPrime - 20, 0.1}})
	if !got.Equal(want, 1e-9) {
		t.Fatalf("Delayed(20) = %v, want %v", got, want)
	}
}

func TestDelayedSaturatedStream(t *testing.T) {
	// A stream at permanent link rate stays saturated under any delay.
	got, err := Constant(1).Delayed(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Constant(1), 0) {
		t.Fatalf("Constant(1).Delayed(5) = %v, want constant 1", got)
	}
}

// delayedCumCharacterization checks the exact cumulative characterization of
// Algorithm 3.1: A'(tau) = min(tau, A(tau + cdv)) for all tau >= 0.
func delayedCumCharacterization(t *testing.T, s Stream, cdv float64) {
	t.Helper()
	got, err := s.Delayed(cdv)
	if err != nil {
		t.Fatalf("Delayed(%g) on %v: %v", cdv, s, err)
	}
	samples := []float64{0, 0.1, 0.5, 1, 1.5, 2, 3, 5, 8, 13, 21, 34, 55, 100, 1000}
	for _, sg := range got.Segments() {
		samples = append(samples, sg.Start, sg.Start+1e-3)
	}
	for _, tau := range samples {
		want := math.Min(tau, s.CumAt(tau+cdv))
		if g := got.CumAt(tau); math.Abs(g-want) > 1e-6 {
			t.Fatalf("Delayed(%g) of %v: A'(%g) = %g, want min(%g, A(%g)=%g)",
				cdv, s, tau, g, tau, tau+cdv, s.CumAt(tau+cdv))
		}
	}
}

func TestDelayedCumulativeCharacterization(t *testing.T) {
	streams := []Stream{
		MustNew([]Segment{{0, 1}, {1, 0.5}}),
		MustNew([]Segment{{0, 1}, {1, 0.5}, {9, 0.1}}),
		MustNew([]Segment{{0, 1}, {3, 0.9}, {10, 0.3}, {40, 0.05}}),
		MustNew([]Segment{{0, 0.4}}),
		MustNew([]Segment{{0, 1}, {2, 0}}), // finite stream: 2 cells then silence
	}
	cdvs := []float64{0.25, 1, 2, 7, 32, 500}
	for _, s := range streams {
		for _, cdv := range cdvs {
			delayedCumCharacterization(t, s, cdv)
		}
	}
}

func TestDelayedFiniteStreamDrainsCompletely(t *testing.T) {
	// Two cells then silence, delayed by 10: both cells clump at the delay
	// horizon and are released back-to-back.
	s := MustNew([]Segment{{0, 1}, {2, 0}})
	got, err := s.Delayed(10)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {2, 0}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Delayed(10) = %v, want %v", got, want)
	}
}

func TestFilteredIdentityBelowLinkRate(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	if got := s.Filtered(); !got.Equal(s, 0) {
		t.Fatalf("Filtered() changed a conforming stream: %v -> %v", s, got)
	}
	if got := Zero().Filtered(); !got.IsZero() {
		t.Fatalf("Zero().Filtered() = %v, want zero", got)
	}
}

// TestFilteredHandComputed verifies Algorithm 3.4 on a worked example.
// S = {(3,0),(0.5,2)}: queue builds at rate 2 during [0,2) (AREA1 = 4), then
// drains at rate 0.5: t' solves A(t') = t', i.e. 6 + 0.5(t'-2) = t' ->
// t' = 10. S' = {(1,0),(0.5,10)}.
func TestFilteredHandComputed(t *testing.T) {
	s := MustNew([]Segment{{0, 3}, {2, 0.5}})
	got := s.Filtered()
	want := MustNew([]Segment{{0, 1}, {10, 0.5}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Filtered = %v, want %v", got, want)
	}
}

func TestFilteredNeverDrains(t *testing.T) {
	// Tail rate >= 1: the link stays saturated forever.
	s := MustNew([]Segment{{0, 3}, {2, 1.5}})
	got := s.Filtered()
	if !got.Equal(Constant(1), 0) {
		t.Fatalf("Filtered = %v, want constant 1", got)
	}
}

// filteredCumCharacterization checks the exact cumulative characterization of
// Algorithm 3.4: A_f(t) = min(t, A(t)) for all t >= 0.
func filteredCumCharacterization(t *testing.T, s Stream) {
	t.Helper()
	got := s.Filtered()
	samples := []float64{0, 0.1, 0.5, 1, 2, 3, 5, 8, 13, 21, 55, 144, 1000}
	for _, sg := range got.Segments() {
		samples = append(samples, sg.Start, sg.Start+1e-3)
	}
	for _, at := range samples {
		want := math.Min(at, s.CumAt(at))
		if g := got.CumAt(at); math.Abs(g-want) > 1e-6 {
			t.Fatalf("Filtered of %v: A_f(%g) = %g, want min(%g, %g)",
				s, at, g, at, s.CumAt(at))
		}
	}
}

func TestFilteredCumulativeCharacterization(t *testing.T) {
	streams := []Stream{
		MustNew([]Segment{{0, 3}, {2, 0.5}}),
		MustNew([]Segment{{0, 5}, {1, 2}, {3, 0.2}}),
		MustNew([]Segment{{0, 2}, {4, 0}}),
		MustNew([]Segment{{0, 1.2}, {10, 0.9}, {20, 0.1}}),
		MustNew([]Segment{{0, 0.8}}),
	}
	for _, s := range streams {
		filteredCumCharacterization(t, s)
	}
}

func TestFilteredIdempotent(t *testing.T) {
	streams := []Stream{
		MustNew([]Segment{{0, 3}, {2, 0.5}}),
		MustNew([]Segment{{0, 5}, {1, 2}, {3, 0.2}}),
		MustNew([]Segment{{0, 2}, {4, 0}}),
	}
	for _, s := range streams {
		once := s.Filtered()
		twice := once.Filtered()
		if !twice.Equal(once, 1e-12) {
			t.Errorf("Filtered not idempotent: %v -> %v -> %v", s, once, twice)
		}
	}
}

func TestDelayBoundZeroStream(t *testing.T) {
	d, err := DelayBound(Zero(), Constant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("DelayBound(zero) = %g, want 0", d)
	}
}

func TestDelayBoundConformingStream(t *testing.T) {
	// A stream that never exceeds the available service has zero queueing.
	s := MustNew([]Segment{{0, 1}, {1, 0.3}})
	d, err := DelayBound(s, Zero())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("DelayBound = %g, want 0 (rate never exceeds service)", d)
	}
}

// TestDelayBoundBurstAggregate: two unit-rate bursts of K cells each arrive
// simultaneously. 2K cells arrive in K cell times on a unit link; the last
// bit of the aggregate waits exactly K cell times.
func TestDelayBoundBurstAggregate(t *testing.T) {
	const k = 32
	s := MustNew([]Segment{{0, 2}, {k, 0}})
	d, err := DelayBound(s, Zero())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-k) > 1e-9 {
		t.Fatalf("DelayBound = %g, want %d", d, k)
	}
}

// TestDelayBoundWithHigherPriority: one cell arriving at t in [0,1] against a
// constant higher-priority load of 0.5 sees service rate 0.5; g(t) = 2 A(t),
// so D peaks at t=1 with D = 2*1 - 1 = 1.
func TestDelayBoundWithHigherPriority(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0}})
	d, err := DelayBound(s, Constant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 {
		t.Fatalf("DelayBound = %g, want 1", d)
	}
}

// TestDelayBoundSaturatedInterval: the higher priority saturates the link for
// the first 5 cell times; low-priority bits arriving at t=0 wait until t=5.
func TestDelayBoundSaturatedInterval(t *testing.T) {
	higher := MustNew([]Segment{{0, 1}, {5, 0}})
	s := MustNew([]Segment{{0, 0.5}, {2, 0}})
	d, err := DelayBound(s, higher)
	if err != nil {
		t.Fatal(err)
	}
	// A bit of S arriving at t=2 (the last) has A(2)=1 bits ahead of it; the
	// link is busy with higher traffic until 5, then serves 1 bit by 6:
	// D = 6 - 2 = 4. The first bit (t=0) waits 5. Max over t: at t=0, g=5
	// (no S bits served before 5), D=5.
	if math.Abs(d-5) > 1e-9 {
		t.Fatalf("DelayBound = %g, want 5", d)
	}
}

func TestDelayBoundUnstable(t *testing.T) {
	s := Constant(0.6)
	if _, err := DelayBound(s, Constant(0.5)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("DelayBound error = %v, want ErrUnstable", err)
	}
	if _, err := DelayBound(Constant(0.1), Constant(1)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("DelayBound with saturated higher priority error = %v, want ErrUnstable", err)
	}
}

func TestDelayBoundStableAtExactCapacity(t *testing.T) {
	// Tail arrival rate exactly equals tail service rate: delay is bounded
	// (D stops growing once rates balance).
	s := MustNew([]Segment{{0, 1}, {4, 0.5}})
	d, err := DelayBound(s, Constant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// During [0,4): arrivals at 1, service at 0.5; backlog grows to 2 by
	// t=4- ... g(4) = A(4)/0.5 = 8, D = 8-4 = 4.
	if math.Abs(d-4) > 1e-9 {
		t.Fatalf("DelayBound = %g, want 4", d)
	}
}

func TestDelayBoundRejectsUnfilteredHigher(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0}})
	agg := MustNew([]Segment{{0, 2}, {1, 0.1}})
	if _, err := DelayBound(s, agg); !errors.Is(err, ErrRateAboveLink) {
		t.Fatalf("DelayBound error = %v, want ErrRateAboveLink", err)
	}
}

// TestDelayBoundEqualsBacklogAtHighestPriority: with no higher-priority
// traffic the service slope is 1, so the delay bound equals the maximum
// backlog (the paper's AREA1 remark after Algorithm 4.1).
func TestDelayBoundEqualsBacklogAtHighestPriority(t *testing.T) {
	streams := []Stream{
		MustNew([]Segment{{0, 2}, {32, 0}}),
		MustNew([]Segment{{0, 5}, {1, 2}, {3, 0.2}}),
		MustNew([]Segment{{0, 3}, {2, 0.5}}),
		MustNew([]Segment{{0, 1.5}, {8, 0.9}, {30, 0.1}}),
	}
	for _, s := range streams {
		d, err := DelayBound(s, Zero())
		if err != nil {
			t.Fatalf("DelayBound(%v): %v", s, err)
		}
		q, err := MaxBacklog(s, Zero())
		if err != nil {
			t.Fatalf("MaxBacklog(%v): %v", s, err)
		}
		if math.Abs(d-q) > 1e-9 {
			t.Errorf("stream %v: delay bound %g != backlog %g at highest priority", s, d, q)
		}
	}
}

func TestMaxBacklogHandComputed(t *testing.T) {
	// S = {(3,0),(0.5,2)} on a unit link: backlog peaks at t=2 with
	// (3-1)*2 = 4 cells.
	s := MustNew([]Segment{{0, 3}, {2, 0.5}})
	q, err := MaxBacklog(s, Zero())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-4) > 1e-12 {
		t.Fatalf("MaxBacklog = %g, want 4", q)
	}
}

func TestMaxBacklogWithHigherPriority(t *testing.T) {
	// Service rate is 1-0.5=0.5; S at rate 2 for 3 cell times: backlog
	// peaks at (2-0.5)*3 = 4.5.
	s := MustNew([]Segment{{0, 2}, {3, 0.2}})
	q, err := MaxBacklog(s, Constant(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-4.5) > 1e-12 {
		t.Fatalf("MaxBacklog = %g, want 4.5", q)
	}
}

func TestMaxBacklogUnstable(t *testing.T) {
	if _, err := MaxBacklog(Constant(0.6), Constant(0.5)); !errors.Is(err, ErrUnstable) {
		t.Fatalf("MaxBacklog error = %v, want ErrUnstable", err)
	}
}

func TestMaxBacklogZero(t *testing.T) {
	q, err := MaxBacklog(Zero(), Zero())
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("MaxBacklog(zero) = %g, want 0", q)
	}
	q, err = MaxBacklog(Constant(0.5), Zero())
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Fatalf("MaxBacklog(conforming) = %g, want 0", q)
	}
}

// TestBacklogNeverExceedsDelayBound: with service rate <= 1 cell per cell
// time, a backlog of Q cells implies the bit at the back waits at least Q
// cell times, so Q <= D. This is why a FIFO of D cells suffices.
func TestBacklogNeverExceedsDelayBound(t *testing.T) {
	cases := []struct {
		s, higher Stream
	}{
		{MustNew([]Segment{{0, 2}, {32, 0}}), Zero()},
		{MustNew([]Segment{{0, 5}, {1, 2}, {3, 0.2}}), Zero()},
		{MustNew([]Segment{{0, 2}, {3, 0.2}}), Constant(0.5)},
		{MustNew([]Segment{{0, 1}, {1, 0}}), MustNew([]Segment{{0, 1}, {5, 0}})},
	}
	for _, c := range cases {
		d, err := DelayBound(c.s, c.higher)
		if err != nil {
			t.Fatal(err)
		}
		q, err := MaxBacklog(c.s, c.higher)
		if err != nil {
			t.Fatal(err)
		}
		if q > d+1e-9 {
			t.Errorf("S=%v S1=%v: backlog %g > delay bound %g", c.s, c.higher, q, d)
		}
	}
}
