package bitstream

import (
	"errors"
	"math"
	"testing"
)

// fuzzSpec clamps raw fuzz inputs into a valid (PCR, SCR, MBS) triple.
func fuzzSpec(pcr, scr, mbs float64) (float64, float64, float64, bool) {
	if math.IsNaN(pcr) || math.IsNaN(scr) || math.IsNaN(mbs) ||
		math.IsInf(pcr, 0) || math.IsInf(scr, 0) || math.IsInf(mbs, 0) {
		return 0, 0, 0, false
	}
	pcr = 0.01 + math.Mod(math.Abs(pcr), 0.99)
	scr = pcr * (0.01 + math.Mod(math.Abs(scr), 0.99))
	mbs = 1 + math.Mod(math.Abs(mbs), 100)
	return pcr, scr, mbs, true
}

// FuzzDelayedCharacterization fuzzes Algorithm 3.1 against its exact
// cumulative characterization A'(tau) = min(tau, A(tau+cdv)).
func FuzzDelayedCharacterization(f *testing.F) {
	f.Add(0.5, 0.1, 8.0, 32.0)
	f.Add(1.0, 1.0, 1.0, 0.5)
	f.Add(0.03, 0.02, 64.0, 500.0)
	f.Fuzz(func(t *testing.T, pcrRaw, scrRaw, mbsRaw, cdvRaw float64) {
		pcr, scr, mbs, ok := fuzzSpec(pcrRaw, scrRaw, mbsRaw)
		if !ok || math.IsNaN(cdvRaw) || math.IsInf(cdvRaw, 0) {
			t.Skip()
		}
		cdv := math.Mod(math.Abs(cdvRaw), 2048)
		s, err := FromVBR(pcr, scr, mbs)
		if err != nil {
			t.Fatalf("FromVBR(%g,%g,%g): %v", pcr, scr, mbs, err)
		}
		d, err := s.Delayed(cdv)
		if err != nil {
			t.Fatalf("Delayed(%g): %v", cdv, err)
		}
		for _, tau := range []float64{0, 0.3, 1, 4, 17, 130, 1025, 9000} {
			want := math.Min(tau, s.CumAt(tau+cdv))
			if got := d.CumAt(tau); math.Abs(got-want) > 1e-5 {
				t.Fatalf("S=%v cdv=%g: A'(%g)=%g want %g", s, cdv, tau, got, want)
			}
		}
	})
}

// FuzzFilteredCharacterization fuzzes Algorithm 3.4 against
// A_f(t) = min(t, A(t)) on multiplexed aggregates.
func FuzzFilteredCharacterization(f *testing.F) {
	f.Add(0.5, 0.1, 8.0, 0.9, 0.4, 32.0)
	f.Add(1.0, 0.9, 2.0, 1.0, 0.99, 3.0)
	f.Fuzz(func(t *testing.T, p1, s1, m1, p2, s2, m2 float64) {
		pcrA, scrA, mbsA, ok := fuzzSpec(p1, s1, m1)
		if !ok {
			t.Skip()
		}
		pcrB, scrB, mbsB, ok := fuzzSpec(p2, s2, m2)
		if !ok {
			t.Skip()
		}
		a, err := FromVBR(pcrA, scrA, mbsA)
		if err != nil {
			t.Skip()
		}
		b, err := FromVBR(pcrB, scrB, mbsB)
		if err != nil {
			t.Skip()
		}
		agg := Add(a, b)
		fil := agg.Filtered()
		for _, at := range []float64{0, 0.5, 1, 3, 9, 40, 333, 4096} {
			want := math.Min(at, agg.CumAt(at))
			if got := fil.CumAt(at); math.Abs(got-want) > 1e-5 {
				t.Fatalf("agg=%v: A_f(%g)=%g want %g", agg, at, got, want)
			}
		}
		// Demultiplexing must recover both components.
		backA, err := Sub(agg, b)
		if err != nil || !backA.Equal(a, 1e-6) {
			t.Fatalf("Sub(agg,b) = %v (%v), want %v", backA, err, a)
		}
	})
}

// FuzzDelayBoundNoPanicAndStable fuzzes Algorithm 4.1 for robustness: on
// arbitrary valid inputs it must terminate with either a finite
// non-negative bound (matching brute force loosely) or ErrUnstable, never
// panic or loop.
func FuzzDelayBoundNoPanicAndStable(f *testing.F) {
	f.Add(0.5, 0.1, 8.0, 0.4, 0.2, 4.0, 64.0)
	f.Add(0.9, 0.8, 32.0, 0.3, 0.05, 16.0, 1.0)
	f.Fuzz(func(t *testing.T, p1, s1, m1, p2, s2, m2, cdvRaw float64) {
		pcrA, scrA, mbsA, ok := fuzzSpec(p1, s1, m1)
		if !ok {
			t.Skip()
		}
		pcrB, scrB, mbsB, ok := fuzzSpec(p2, s2, m2)
		if !ok || math.IsNaN(cdvRaw) || math.IsInf(cdvRaw, 0) {
			t.Skip()
		}
		cdv := math.Mod(math.Abs(cdvRaw), 1024)
		a, err := FromVBR(pcrA, scrA, mbsA)
		if err != nil {
			t.Skip()
		}
		b, err := FromVBR(pcrB, scrB, mbsB)
		if err != nil {
			t.Skip()
		}
		da, err := a.Delayed(cdv)
		if err != nil {
			t.Fatal(err)
		}
		s := Add(da, Add(a, b))
		higher := b.Filtered()
		d, err := DelayBound(s, higher)
		if err != nil {
			if !errors.Is(err, ErrUnstable) {
				t.Fatalf("unexpected error: %v", err)
			}
			if s.TailRate()+higher.TailRate() < 1-1e-9 {
				t.Fatalf("ErrUnstable on a stable configuration: tails %g + %g",
					s.TailRate(), higher.TailRate())
			}
			return
		}
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("DelayBound = %g", d)
		}
		// The bound can be zero only if the arrival rate never exceeds
		// the service rate at t=0.
		if d == 0 && s.PeakRate() > 1-higher.PeakRate()+Eps {
			t.Fatalf("bound 0 with initial overload: S=%v S1=%v", s, higher)
		}
	})
}
