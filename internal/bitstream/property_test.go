package bitstream

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// vbrParams is a quick-generable VBR descriptor with sane ranges.
type vbrParams struct {
	PCR, SCR, MBS float64
}

// Generate implements quick.Generator, drawing PCR in (0,1], SCR in (0,PCR]
// and MBS in [1,64].
func (vbrParams) Generate(r *rand.Rand, _ int) reflect.Value {
	pcr := 0.01 + 0.99*r.Float64()
	scr := pcr * (0.05 + 0.95*r.Float64())
	mbs := 1 + math.Floor(64*r.Float64())
	return reflect.ValueOf(vbrParams{PCR: pcr, SCR: scr, MBS: mbs})
}

func (p vbrParams) stream(t *testing.T) Stream {
	t.Helper()
	s, err := FromVBR(p.PCR, p.SCR, p.MBS)
	if err != nil {
		t.Fatalf("FromVBR(%+v): %v", p, err)
	}
	return s
}

// randomAggregate builds a multiplexed stream of up to four delayed VBR
// envelopes, the shape the CAC engine manipulates.
type randomAggregate struct {
	Parts [4]vbrParams
	CDVs  [4]float64
	N     int
}

func (randomAggregate) Generate(r *rand.Rand, size int) reflect.Value {
	var a randomAggregate
	a.N = 1 + r.Intn(4)
	for i := 0; i < a.N; i++ {
		a.Parts[i] = vbrParams{}.Generate(r, size).Interface().(vbrParams)
		a.CDVs[i] = 64 * r.Float64()
	}
	return reflect.ValueOf(a)
}

func (a randomAggregate) stream(t *testing.T) Stream {
	t.Helper()
	streams := make([]Stream, 0, a.N)
	for i := 0; i < a.N; i++ {
		s := a.Parts[i].stream(t)
		d, err := s.Delayed(a.CDVs[i])
		if err != nil {
			t.Fatalf("Delayed(%g) on %v: %v", a.CDVs[i], s, err)
		}
		streams = append(streams, d)
	}
	return Sum(streams...)
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300}
}

// TestPropVBRStreamIsCanonical: every generated envelope satisfies the model
// invariants: t(0)=0, strictly increasing breakpoints, strictly decreasing
// rates, peak rate 1.
func TestPropVBRStreamIsCanonical(t *testing.T) {
	f := func(p vbrParams) bool {
		s := p.stream(t)
		segs := s.Segments()
		if segs[0].Start != 0 || segs[0].Rate != 1 {
			return false
		}
		for i := 1; i < len(segs); i++ {
			if segs[i].Start <= segs[i-1].Start || segs[i].Rate >= segs[i-1].Rate {
				return false
			}
		}
		return s.TailRate() > 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropVBRCumMatchesTokenBucket: the envelope's cumulative function
// dominates the discrete worst-case generation (MBS cells at PCR then SCR)
// and matches it exactly at cell boundaries, which is the defining property
// of the continuous approximation in the paper's Figure 2.
func TestPropVBRCumMatchesTokenBucket(t *testing.T) {
	f := func(p vbrParams) bool {
		s := p.stream(t)
		// Worst-case discrete generation times: cell k at time t_k.
		mbs := int(p.MBS)
		tk := 0.0
		for k := 0; k < mbs+16; k++ {
			if k > 0 {
				if k < mbs {
					tk += 1 / p.PCR
				} else {
					tk += 1 / p.SCR
				}
			}
			// By time t_k + 1 (the cell occupies one cell time at link
			// rate), the envelope must account for at least k+1 cells.
			if s.CumAt(tk+1) < float64(k+1)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropDelayedCharacterization: A'(tau) = min(tau, A(tau+cdv)).
func TestPropDelayedCharacterization(t *testing.T) {
	f := func(p vbrParams, cdvSeed float64) bool {
		s := p.stream(t)
		cdv := math.Abs(cdvSeed)
		cdv = math.Mod(cdv, 512)
		got, err := s.Delayed(cdv)
		if err != nil {
			return false
		}
		for _, tau := range []float64{0, 0.5, 1, 2, 5, 17, 63, 255, 1024} {
			want := math.Min(tau, s.CumAt(tau+cdv))
			if math.Abs(got.CumAt(tau)-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropDelayedDominates: delaying can only add traffic to every prefix,
// A'(tau) >= A(tau), so worst-case envelopes remain valid upper bounds as a
// connection crosses the network.
func TestPropDelayedDominates(t *testing.T) {
	f := func(p vbrParams, cdvSeed float64) bool {
		s := p.stream(t)
		cdv := math.Mod(math.Abs(cdvSeed), 512)
		got, err := s.Delayed(cdv)
		if err != nil {
			return false
		}
		for _, tau := range []float64{0.25, 1, 3, 10, 40, 160, 640} {
			if got.CumAt(tau) < s.CumAt(tau)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropFilteredCharacterization: A_f(t) = min(t, A(t)) on aggregates.
func TestPropFilteredCharacterization(t *testing.T) {
	f := func(a randomAggregate) bool {
		s := a.stream(t)
		got := s.Filtered()
		for _, at := range []float64{0, 0.5, 1, 2, 5, 17, 63, 255, 1024, 4096} {
			want := math.Min(at, s.CumAt(at))
			if math.Abs(got.CumAt(at)-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropFilteredIdempotent on random aggregates.
func TestPropFilteredIdempotent(t *testing.T) {
	f := func(a randomAggregate) bool {
		once := a.stream(t).Filtered()
		return once.Filtered().Equal(once, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropAddSubRoundTrip: demultiplexing recovers a multiplexed component.
func TestPropAddSubRoundTrip(t *testing.T) {
	f := func(p1, p2 vbrParams) bool {
		a, b := p1.stream(t), p2.stream(t)
		agg := Add(a, b)
		gotA, err := Sub(agg, b)
		if err != nil {
			return false
		}
		gotB, err := Sub(agg, a)
		if err != nil {
			return false
		}
		return gotA.Equal(a, 1e-9) && gotB.Equal(b, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropSumRateAdditive: the aggregate rate is the sum of component rates
// at every probe instant (Algorithm 3.2's defining property).
func TestPropSumRateAdditive(t *testing.T) {
	f := func(p1, p2, p3 vbrParams) bool {
		s1, s2, s3 := p1.stream(t), p2.stream(t), p3.stream(t)
		agg := Sum(s1, s2, s3)
		for _, at := range []float64{0, 0.5, 1, 1.5, 2, 5, 20, 100, 1000} {
			want := s1.RateAt(at) + s2.RateAt(at) + s3.RateAt(at)
			if math.Abs(agg.RateAt(at)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropDelayBoundMonotoneInTraffic: adding a connection never decreases
// the delay bound. This is what lets the CAC admit connections one at a time
// without revisiting earlier decisions.
func TestPropDelayBoundMonotoneInTraffic(t *testing.T) {
	f := func(a randomAggregate, p vbrParams) bool {
		s := a.stream(t)
		extra := p.stream(t)
		d1, err1 := DelayBound(s, Zero())
		d2, err2 := DelayBound(Add(s, extra), Zero())
		if err1 != nil {
			// If the base is already unstable, adding traffic must stay
			// unstable.
			return err2 != nil
		}
		if err2 != nil {
			return true // became unstable: bound grew past any finite value
		}
		return d2 >= d1-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropFilteringTightensBound: filtering an aggregate through a link can
// only reduce (or preserve) the downstream delay bound — the "filtering
// effect" the paper exploits for tighter bounds.
func TestPropFilteringTightensBound(t *testing.T) {
	f := func(a randomAggregate) bool {
		s := a.stream(t)
		dRaw, errRaw := DelayBound(s, Zero())
		dFil, errFil := DelayBound(s.Filtered(), Zero())
		if errRaw != nil {
			// Unstable raw aggregate (tail rate >= 1): the filtered stream
			// is the saturated unit-rate stream, whose downstream bound is
			// finite (the upstream link cannot deliver more than rate 1).
			// Any finite bound tightens an infinite one.
			return true
		}
		if errFil != nil {
			return false
		}
		return dFil <= dRaw+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropDelayWorsensBound: jitter clumping never reduces the delay bound
// a stream induces downstream.
func TestPropDelayWorsensBound(t *testing.T) {
	f := func(p vbrParams, cdvSeed float64) bool {
		s := p.stream(t)
		cdv := math.Mod(math.Abs(cdvSeed), 256)
		d, err := s.Delayed(cdv)
		if err != nil {
			return false
		}
		b1, err1 := DelayBound(s, Constant(0.3))
		b2, err2 := DelayBound(d, Constant(0.3))
		if err1 != nil || err2 != nil {
			// Tail rates are unchanged by Delayed, so stability must agree.
			return (err1 == nil) == (err2 == nil)
		}
		return b2 >= b1-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropBacklogAtMostDelay: Q <= D at every queueing point.
func TestPropBacklogAtMostDelay(t *testing.T) {
	f := func(a randomAggregate) bool {
		s := a.stream(t)
		d, errD := DelayBound(s, Zero())
		q, errQ := MaxBacklog(s, Zero())
		if errD != nil || errQ != nil {
			return (errD == nil) == (errQ == nil)
		}
		return q <= d+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropDelayBoundMatchesBruteForce cross-validates Algorithm 4.1 against
// a direct numerical evaluation of D(t) = g(t) - t on a dense grid.
func TestPropDelayBoundMatchesBruteForce(t *testing.T) {
	f := func(a randomAggregate, hp vbrParams) bool {
		s := a.stream(t)
		higher := hp.stream(t).Filtered()
		// Keep the scenario stable.
		if s.TailRate()+higher.TailRate() >= 1 {
			return true
		}
		d, err := DelayBound(s, higher)
		if err != nil {
			return false
		}
		brute, dt := bruteForceDelayBound(s, higher)
		return math.Abs(d-brute) < 16*dt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// bruteForceDelayBound numerically inverts the service curve on a dense
// grid, returning the bound and the grid step (which scales its error).
func bruteForceDelayBound(s, higher Stream) (bound, dt float64) {
	// Grid horizon: past all breakpoints plus drain time.
	horizon := 1.0
	for _, sg := range s.Segments() {
		horizon = math.Max(horizon, sg.Start)
	}
	for _, sg := range higher.Segments() {
		horizon = math.Max(horizon, sg.Start)
	}
	horizon = horizon*2 + 256
	const steps = 200000
	dt = horizon / steps
	// Cumulative arrivals and service on the grid.
	best := 0.0
	a, c := 0.0, 0.0
	cGrid := make([]float64, steps+1)
	for i := 1; i <= steps; i++ {
		tm := float64(i-1) * dt
		c += (1 - higher.RateAt(tm)) * dt
		cGrid[i] = c
	}
	j := 0
	for i := 0; i <= steps; i++ {
		tm := float64(i) * dt
		if i > 0 {
			a += s.RateAt(float64(i-1)*dt) * dt
		}
		for j <= steps && cGrid[j] < a-1e-12 {
			j++
		}
		if j > steps {
			break
		}
		if d := float64(j)*dt - tm; d > best {
			best = d
		}
	}
	return best, dt
}
