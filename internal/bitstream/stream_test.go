package bitstream

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		segs    []Segment
		wantErr bool
	}{
		{name: "empty", segs: nil},
		{name: "single", segs: []Segment{{0, 0.5}}},
		{name: "decreasing", segs: []Segment{{0, 1}, {1, 0.5}, {3, 0.1}}},
		{name: "nonzero start", segs: []Segment{{1, 0.5}}, wantErr: true},
		{name: "negative rate", segs: []Segment{{0, -0.5}}, wantErr: true},
		{name: "nan rate", segs: []Segment{{0, math.NaN()}}, wantErr: true},
		{name: "inf rate", segs: []Segment{{0, math.Inf(1)}}, wantErr: true},
		{name: "nan start", segs: []Segment{{0, 1}, {math.NaN(), 0.5}}, wantErr: true},
		{name: "non increasing times", segs: []Segment{{0, 1}, {1, 0.5}, {1, 0.2}}, wantErr: true},
		{name: "decreasing times", segs: []Segment{{0, 1}, {2, 0.5}, {1, 0.2}}, wantErr: true},
		{name: "increasing rates", segs: []Segment{{0, 0.5}, {1, 0.8}}, wantErr: true},
		{name: "rate above one is allowed for aggregates", segs: []Segment{{0, 4}, {1, 0.5}}},
		{name: "equal adjacent rates merge", segs: []Segment{{0, 1}, {1, 0.5}, {2, 0.5}, {3, 0.1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := New(tt.segs)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("New(%v) = %v, want error", tt.segs, s)
				}
				if !errors.Is(err, ErrInvalidStream) {
					t.Fatalf("New(%v) error = %v, want ErrInvalidStream", tt.segs, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%v) unexpected error: %v", tt.segs, err)
			}
		})
	}
}

func TestNewCanonicalizesEqualRates(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {2, 0.5}, {3, 0.5}})
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 (equal-rate segments merged); stream %v", got, s)
	}
}

func TestNewAllZeroIsEmpty(t *testing.T) {
	s := MustNew([]Segment{{0, 0}})
	if !s.IsZero() {
		t.Fatalf("all-zero stream should canonicalize to empty, got %v", s)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid segments did not panic")
		}
	}()
	MustNew([]Segment{{1, 0.5}})
}

func TestConstant(t *testing.T) {
	if !Constant(0).IsZero() {
		t.Error("Constant(0) should be the zero stream")
	}
	c := Constant(0.25)
	for _, at := range []float64{0, 1, 1e6} {
		if got := c.RateAt(at); got != 0.25 {
			t.Errorf("Constant(0.25).RateAt(%g) = %g, want 0.25", at, got)
		}
	}
	if got := c.TailRate(); got != 0.25 {
		t.Errorf("TailRate = %g, want 0.25", got)
	}
}

func TestFromVBR(t *testing.T) {
	// Algorithm 2.1: S = {(1,0), (PCR,1), (SCR, 1+(MBS-1)/PCR)}.
	s, err := FromVBR(0.5, 0.1, 11)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {1, 0.5}, {21, 0.1}})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("FromVBR(0.5, 0.1, 11) = %v, want %v", s, want)
	}
}

func TestFromVBRCBRSpecialCase(t *testing.T) {
	// A CBR connection is VBR with SCR == PCR: the burst segment merges
	// with the sustained segment.
	s, err := FromVBR(0.25, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {1, 0.25}})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("FromVBR CBR = %v, want %v", s, want)
	}
}

func TestFromVBRSingleCellBurst(t *testing.T) {
	// MBS == 1: the whole burst is the initial unit-rate cell.
	s, err := FromVBR(0.5, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {1, 0.1}})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("FromVBR(0.5,0.1,1) = %v, want %v", s, want)
	}
}

func TestFromVBRPeakRateOne(t *testing.T) {
	// PCR == 1: the initial cell and the burst merge into one unit-rate
	// segment of length MBS.
	s, err := FromVBR(1, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 1}, {5, 0.2}})
	if !s.Equal(want, 1e-12) {
		t.Fatalf("FromVBR(1,0.2,5) = %v, want %v", s, want)
	}
}

func TestFromVBRErrors(t *testing.T) {
	tests := []struct {
		name          string
		pcr, scr, mbs float64
	}{
		{"zero pcr", 0, 0.1, 2},
		{"negative pcr", -0.5, 0.1, 2},
		{"pcr above link", 1.5, 0.1, 2},
		{"zero scr", 0.5, 0, 2},
		{"scr above pcr", 0.5, 0.6, 2},
		{"mbs below one", 0.5, 0.1, 0.5},
		{"nan mbs", 0.5, 0.1, math.NaN()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromVBR(tt.pcr, tt.scr, tt.mbs); err == nil {
				t.Errorf("FromVBR(%g,%g,%g) succeeded, want error", tt.pcr, tt.scr, tt.mbs)
			}
		})
	}
}

func TestRateAt(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {21, 0.1}})
	tests := []struct {
		at   float64
		want float64
	}{
		{-1, 0}, {0, 1}, {0.5, 1}, {1, 0.5}, {20.999, 0.5}, {21, 0.1}, {1e9, 0.1},
	}
	for _, tt := range tests {
		if got := s.RateAt(tt.at); got != tt.want {
			t.Errorf("RateAt(%g) = %g, want %g", tt.at, got, tt.want)
		}
	}
}

func TestCumAt(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {21, 0.1}})
	tests := []struct {
		at   float64
		want float64
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 1.5}, {21, 11}, {31, 12},
	}
	for _, tt := range tests {
		if got := s.CumAt(tt.at); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("CumAt(%g) = %g, want %g", tt.at, got, tt.want)
		}
	}
}

func TestPeakAndTailRate(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {21, 0.1}})
	if got := s.PeakRate(); got != 1 {
		t.Errorf("PeakRate = %g, want 1", got)
	}
	if got := s.TailRate(); got != 0.1 {
		t.Errorf("TailRate = %g, want 0.1", got)
	}
	if got := Zero().PeakRate(); got != 0 {
		t.Errorf("Zero().PeakRate = %g, want 0", got)
	}
	if got := Zero().TailRate(); got != 0 {
		t.Errorf("Zero().TailRate = %g, want 0", got)
	}
}

func TestScaled(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	doubled, err := s.Scaled(2)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew([]Segment{{0, 2}, {1, 1}})
	if !doubled.Equal(want, 1e-12) {
		t.Fatalf("Scaled(2) = %v, want %v", doubled, want)
	}
	zero, err := s.Scaled(0)
	if err != nil {
		t.Fatal(err)
	}
	if !zero.IsZero() {
		t.Errorf("Scaled(0) = %v, want zero", zero)
	}
	if _, err := s.Scaled(-1); err == nil {
		t.Error("Scaled(-1) succeeded, want error")
	}
	if _, err := s.Scaled(math.NaN()); err == nil {
		t.Error("Scaled(NaN) succeeded, want error")
	}
}

func TestSegmentsReturnsCopy(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	segs := s.Segments()
	segs[0].Rate = 99
	if got := s.RateAt(0); got != 1 {
		t.Fatalf("mutating Segments() result changed the stream: RateAt(0) = %g", got)
	}
}

func TestString(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}})
	got := s.String()
	if !strings.Contains(got, "(1,0)") || !strings.Contains(got, "(0.5,1)") {
		t.Errorf("String() = %q, want it to contain (1,0) and (0.5,1)", got)
	}
	if got := Zero().String(); got != "{}" {
		t.Errorf("Zero().String() = %q, want {}", got)
	}
}

func TestEqual(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	b := MustNew([]Segment{{0, 1}, {1, 0.5}})
	c := MustNew([]Segment{{0, 1}, {2, 0.5}})
	if !a.Equal(b, 1e-12) {
		t.Error("identical streams not Equal")
	}
	if a.Equal(c, 1e-12) {
		t.Error("streams with different breakpoints reported Equal")
	}
	if !Zero().Equal(Zero(), 0) {
		t.Error("Zero() not Equal to itself")
	}
}

func TestAdd(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	b := MustNew([]Segment{{0, 1}, {2, 0.25}})
	got := Add(a, b)
	want := MustNew([]Segment{{0, 2}, {1, 1.5}, {2, 0.75}})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Add = %v, want %v", got, want)
	}
}

func TestAddZeroIdentity(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	if got := Add(a, Zero()); !got.Equal(a, 0) {
		t.Errorf("Add(a, 0) = %v, want %v", got, a)
	}
	if got := Add(Zero(), a); !got.Equal(a, 0) {
		t.Errorf("Add(0, a) = %v, want %v", got, a)
	}
}

func TestAddCommutative(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}, {7, 0.1}})
	b := MustNew([]Segment{{0, 0.9}, {3, 0.25}})
	if !Add(a, b).Equal(Add(b, a), 1e-12) {
		t.Error("Add is not commutative")
	}
}

func TestSumMatchesRepeatedAdd(t *testing.T) {
	streams := []Stream{
		MustNew([]Segment{{0, 1}, {1, 0.5}}),
		MustNew([]Segment{{0, 1}, {2, 0.25}}),
		MustNew([]Segment{{0, 0.7}, {5, 0.1}}),
		Zero(),
		MustNew([]Segment{{0, 1}, {1, 0.9}, {10, 0.05}}),
	}
	want := Zero()
	for _, s := range streams {
		want = Add(want, s)
	}
	got := Sum(streams...)
	if !got.Equal(want, 1e-9) {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
}

func TestSumEmptyAndSingle(t *testing.T) {
	if !Sum().IsZero() {
		t.Error("Sum() should be zero")
	}
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	if got := Sum(a); !got.Equal(a, 0) {
		t.Errorf("Sum(a) = %v, want %v", got, a)
	}
	if got := Sum(Zero(), a, Zero()); !got.Equal(a, 0) {
		t.Errorf("Sum(0,a,0) = %v, want %v", got, a)
	}
}

func TestSubRecoverComponent(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	b := MustNew([]Segment{{0, 1}, {2, 0.25}})
	agg := Add(a, b)
	got, err := Sub(agg, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 1e-12) {
		t.Fatalf("Sub(a+b, b) = %v, want %v", got, a)
	}
	got, err = Sub(agg, a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b, 1e-12) {
		t.Fatalf("Sub(a+b, a) = %v, want %v", got, b)
	}
}

func TestSubZero(t *testing.T) {
	a := MustNew([]Segment{{0, 1}, {1, 0.5}})
	got, err := Sub(a, Zero())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(a, 0) {
		t.Errorf("Sub(a, 0) = %v, want %v", got, a)
	}
	got, err = Sub(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Errorf("Sub(a, a) = %v, want zero", got)
	}
}

func TestSubNotComponent(t *testing.T) {
	a := MustNew([]Segment{{0, 0.5}})
	b := MustNew([]Segment{{0, 1}, {1, 0.2}})
	if _, err := Sub(a, b); !errors.Is(err, ErrNotComponent) {
		t.Errorf("Sub error = %v, want ErrNotComponent (negative rate)", err)
	}
	// Difference that would produce an increasing rate function: the
	// subtrahend drops earlier than the aggregate would allow.
	agg := MustNew([]Segment{{0, 1}, {5, 0.6}})
	comp := MustNew([]Segment{{0, 0.9}, {1, 0.1}})
	if _, err := Sub(agg, comp); !errors.Is(err, ErrNotComponent) {
		t.Errorf("Sub error = %v, want ErrNotComponent (increasing rate)", err)
	}
}

// TestCBRAggregationEqualsVBR verifies the equivalence the paper uses in
// Section 5: the worst-case aggregated traffic of N CBR connections of peak
// rate R equals that of a VBR connection with PCR=N, SCR=N*R, MBS=N.
func TestCBRAggregationEqualsVBR(t *testing.T) {
	const (
		n = 16
		r = 0.02
	)
	cbr, err := FromVBR(r, r, 1)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]Stream, n)
	for i := range streams {
		streams[i] = cbr
	}
	agg := Sum(streams...)
	// The equivalent VBR envelope with PCR=N (an aggregate rate, so built
	// directly rather than through FromVBR, which models a single source on
	// a unit link): MBS=N cells at rate PCR=N last MBS/PCR = 1 cell time.
	want := MustNew([]Segment{{0, n}, {1, n * r}})
	if !agg.Equal(want, 1e-9) {
		t.Fatalf("aggregate of %d CBR(%g) = %v, want VBR equivalent %v", n, r, agg, want)
	}
}

func TestInvCum(t *testing.T) {
	s := MustNew([]Segment{{0, 1}, {1, 0.5}, {21, 0.1}})
	tests := []struct {
		cells float64
		want  float64
	}{
		{0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 2}, {11, 21}, {12, 31},
	}
	for _, tt := range tests {
		got, ok := s.InvCum(tt.cells)
		if !ok {
			t.Fatalf("InvCum(%g) not ok", tt.cells)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("InvCum(%g) = %g, want %g", tt.cells, got, tt.want)
		}
	}
	if _, ok := s.InvCum(-1); ok {
		t.Error("negative cells reported ok")
	}
	// A finite stream (2 cells then silence) cannot deliver 3.
	finite := MustNew([]Segment{{0, 1}, {2, 0}})
	if _, ok := finite.InvCum(3); ok {
		t.Error("finite stream claimed to deliver 3 cells")
	}
	if got, ok := finite.InvCum(2); !ok || got != 2 {
		t.Errorf("InvCum(2) = %g, %v", got, ok)
	}
	if _, ok := Zero().InvCum(1); ok {
		t.Error("zero stream claimed delivery")
	}
}

// TestInvCumRoundTrip: InvCum inverts CumAt on random envelopes.
func TestInvCumRoundTrip(t *testing.T) {
	specs := [][3]float64{{0.5, 0.1, 11}, {0.9, 0.3, 4}, {0.2, 0.01, 40}}
	for _, p := range specs {
		s, err := FromVBR(p[0], p[1], p[2])
		if err != nil {
			t.Fatal(err)
		}
		for _, cells := range []float64{0.25, 1, 2.5, 7, 30, 123} {
			at, ok := s.InvCum(cells)
			if !ok {
				t.Fatalf("InvCum(%g) on %v not ok", cells, s)
			}
			if got := s.CumAt(at); math.Abs(got-cells) > 1e-9 {
				t.Errorf("CumAt(InvCum(%g)) = %g on %v", cells, got, s)
			}
		}
	}
}
