package bitstream

import (
	"fmt"
	"math"
	"sort"
)

// Add implements Algorithm 3.2 (bit stream multiplexing): the worst-case
// aggregate of two streams arriving at the same queueing point has rate
// r(t) = r1(t) + r2(t) at every instant.
func Add(a, b Stream) Stream {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	s, err := combine(a, b, func(x, y float64) float64 { return x + y })
	if err != nil {
		// Addition of two valid (monotone non-increasing, non-negative)
		// streams is always valid; this is unreachable by construction.
		panic(fmt.Sprintf("bitstream: Add produced invalid stream: %v", err))
	}
	return s
}

// Sum multiplexes any number of streams. It merges all breakpoints in a
// single pass, which is substantially cheaper than repeated pairwise Add for
// large aggregates.
func Sum(streams ...Stream) Stream {
	nonzero := make([]Stream, 0, len(streams))
	total := 0
	for _, s := range streams {
		if !s.IsZero() {
			nonzero = append(nonzero, s)
			total += s.Len()
		}
	}
	switch len(nonzero) {
	case 0:
		return Zero()
	case 1:
		return nonzero[0]
	}
	// Gather all breakpoints, sort, and evaluate the sum rate on each
	// interval. Rates are evaluated with per-stream cursors for linearity.
	points := make([]float64, 0, total)
	for _, s := range nonzero {
		for _, sg := range s.segs {
			points = append(points, sg.Start)
		}
	}
	sortFloats(points)
	points = dedupFloats(points)

	cursors := make([]int, len(nonzero))
	segs := make([]Segment, 0, len(points))
	for _, t := range points {
		rate := 0.0
		for i, s := range nonzero {
			for cursors[i]+1 < len(s.segs) && s.segs[cursors[i]+1].Start <= t {
				cursors[i]++
			}
			if s.segs[cursors[i]].Start <= t {
				rate += s.segs[cursors[i]].Rate
			}
		}
		segs = append(segs, Segment{Start: t, Rate: rate})
	}
	out, err := New(segs)
	if err != nil {
		panic(fmt.Sprintf("bitstream: Sum produced invalid stream: %v", err))
	}
	return out
}

// Sub implements Algorithm 3.3 (bit stream demultiplexing): removing a
// component stream b from an aggregate a yields r(t) = ra(t) - rb(t).
// Sub returns ErrNotComponent if b was not a component of a (the difference
// would be negative or rate-increasing beyond tolerance).
func Sub(a, b Stream) (Stream, error) {
	if b.IsZero() {
		return a, nil
	}
	return combine(a, b, func(x, y float64) float64 { return x - y })
}

// combine merges the breakpoints of a and b and applies op to the rates.
// It validates and canonicalizes the result, clamping |rate| <= Eps noise
// to zero.
func combine(a, b Stream, op func(x, y float64) float64) (Stream, error) {
	points := mergedBreakpoints(a, b)
	if len(points) == 0 {
		return Stream{}, nil
	}
	segs := make([]Segment, 0, len(points))
	ia, ib := -1, -1
	for _, t := range points {
		for ia+1 < len(a.segs) && a.segs[ia+1].Start <= t {
			ia++
		}
		for ib+1 < len(b.segs) && b.segs[ib+1].Start <= t {
			ib++
		}
		ra, rb := 0.0, 0.0
		if ia >= 0 {
			ra = a.segs[ia].Rate
		}
		if ib >= 0 {
			rb = b.segs[ib].Rate
		}
		r := op(ra, rb)
		if r < 0 {
			if r < -Eps {
				return Stream{}, fmt.Errorf("%w: rate %g at t=%g", ErrNotComponent, r, t)
			}
			r = 0
		}
		if n := len(segs); n > 0 && r > segs[n-1].Rate {
			if r > segs[n-1].Rate+Eps {
				return Stream{}, fmt.Errorf("%w: rate increases from %g to %g at t=%g",
					ErrNotComponent, segs[n-1].Rate, r, t)
			}
			r = segs[n-1].Rate
		}
		segs = append(segs, Segment{Start: t, Rate: r})
	}
	return New(segs)
}

// Delayed implements Algorithm 3.1: the worst-case distortion of the stream
// after passing through queueing points with an accumulated maximum delay
// variation cdv (cell times). In the worst case every bit generated during
// [0, cdv] is held until time cdv and then released at full link rate,
// producing
//
//	r'(t) = 1            for t in [0, t'-cdv)
//	r'(t) = r(t + cdv)   for t >= t'-cdv
//
// where t' is the instant all accumulated bits have drained: the smallest
// t >= cdv with A(t) = t - cdv (AREA1 = AREA2 in the paper's Figure 4).
//
// The stream must already conform to the link (rate <= 1 everywhere), which
// holds for every per-connection envelope produced by FromVBR.
func (s Stream) Delayed(cdv float64) (Stream, error) {
	if cdv < 0 || math.IsNaN(cdv) {
		return Stream{}, fmt.Errorf("%w: CDV %g", ErrNegative, cdv)
	}
	if cdv == 0 || s.IsZero() {
		return s, nil
	}
	if s.PeakRate() > 1+Eps {
		return Stream{}, fmt.Errorf("%w: peak rate %g", ErrRateAboveLink, s.PeakRate())
	}
	tPrime, drains := s.crossLine(cdv)
	if !drains {
		// r == 1 forever: the delayed stream is saturated at link rate.
		return Constant(1), nil
	}
	// Construct S': unit rate during [0, t'-cdv), then the original stream
	// shifted left by cdv. Rates are clamped to 1 to absorb the +Eps
	// tolerance admitted by the peak-rate guard above.
	clamp := func(r float64) float64 {
		if r > 1 {
			return 1
		}
		return r
	}
	segs := make([]Segment, 0, len(s.segs)+2)
	shift := tPrime - cdv
	if shift > 0 {
		segs = append(segs, Segment{Start: 0, Rate: 1})
		segs = append(segs, Segment{Start: shift, Rate: clamp(s.RateAt(tPrime))})
	} else {
		segs = append(segs, Segment{Start: 0, Rate: clamp(s.RateAt(cdv))})
	}
	for _, sg := range s.segs {
		if sg.Start > tPrime {
			segs = append(segs, Segment{Start: sg.Start - cdv, Rate: clamp(sg.Rate)})
		}
	}
	return New(segs)
}

// crossLine finds the smallest t >= offset with A(t) = t - offset, i.e. where
// the cumulative arrivals meet a unit-rate drain line started at time offset.
// The second return value is false when the stream never drains (tail rate
// >= 1).
func (s Stream) crossLine(offset float64) (float64, bool) {
	// f(t) = A(t) - (t - offset); f(offset) = A(offset) >= 0; f' = r(t) - 1.
	// With r <= 1 and monotone non-increasing, f is non-increasing for
	// t >= offset, so the first zero crossing is unique.
	area := 0.0 // A at segment start
	for i, sg := range s.segs {
		end := math.Inf(1)
		if i+1 < len(s.segs) {
			end = s.segs[i+1].Start
		}
		segStart := sg.Start
		segArea := area
		if segStart < offset {
			if end <= offset {
				area += sg.Rate * (end - segStart)
				continue
			}
			segArea += sg.Rate * (offset - segStart)
			segStart = offset
		}
		// Within [segStart, end): f(t) = segArea + rate*(t-segStart) - (t-offset).
		if sg.Rate < 1-Eps {
			t := segStart + (segArea-(segStart-offset))/(1-sg.Rate)
			if t <= end+Eps {
				if t < segStart {
					t = segStart
				}
				return t, true
			}
		}
		if !math.IsInf(end, 1) {
			area += sg.Rate * (end - sg.Start)
		}
	}
	// Ran out of segments with rate >= 1, or the final rate is < 1 but the
	// crossing computed above was within the last (infinite) segment and
	// was returned there. The only way to get here is tail rate >= 1-Eps.
	if s.TailRate() < 1-Eps {
		// Defensive: solve in the tail segment explicitly.
		last := s.segs[len(s.segs)-1]
		segStart := math.Max(last.Start, offset)
		segArea := s.CumAt(segStart)
		return segStart + (segArea-(segStart-offset))/(1-last.Rate), true
	}
	return 0, false
}

// Filtered implements Algorithm 3.4: the stream after passing through a
// transmission link of bandwidth 1 cell per cell time. While the incoming
// rate exceeds 1 a queue builds at the link; the output is capped at rate 1
// until the backlog drains at time t' (the smallest t > 0 with A(t) = t),
// after which the output equals the input:
//
//	r'(t) = 1      for t in [0, t')
//	r'(t) = r(t)   for t >= t'
//
// Filtering smooths aggregated streams and is what yields the tighter delay
// bounds the paper highlights. A stream that never drains (tail rate >= 1)
// filters to the saturated unit-rate stream.
func (s Stream) Filtered() Stream {
	if s.IsZero() || s.PeakRate() <= 1+Eps {
		return s
	}
	tPrime, drains := s.crossBusyPeriod()
	if !drains {
		return Constant(1)
	}
	segs := make([]Segment, 0, len(s.segs)+2)
	segs = append(segs, Segment{Start: 0, Rate: 1})
	if tPrime > 0 {
		segs = append(segs, Segment{Start: tPrime, Rate: s.RateAt(tPrime)})
	}
	for _, sg := range s.segs {
		if sg.Start > tPrime {
			segs = append(segs, Segment{Start: sg.Start, Rate: sg.Rate})
		}
	}
	out, err := New(segs)
	if err != nil {
		panic(fmt.Sprintf("bitstream: Filtered produced invalid stream: %v", err))
	}
	return out
}

// crossBusyPeriod finds the end of the initial busy period of a stream whose
// peak rate exceeds 1: the smallest t > 0 with A(t) = t after the rate has
// dropped below 1. Returns false when the backlog never drains.
func (s Stream) crossBusyPeriod() (float64, bool) {
	area := 0.0
	for i, sg := range s.segs {
		end := math.Inf(1)
		if i+1 < len(s.segs) {
			end = s.segs[i+1].Start
		}
		if sg.Rate < 1-Eps {
			// Within this segment: area + rate*(t-start) = t.
			t := sg.Start + (area-sg.Start)/(1-sg.Rate)
			if t <= end+Eps {
				if t < sg.Start {
					t = sg.Start
				}
				return t, true
			}
		}
		if math.IsInf(end, 1) {
			return 0, false // tail rate >= 1: never drains
		}
		area += sg.Rate * (end - sg.Start)
	}
	return 0, false
}

// DelayBound implements Algorithm 4.1: the worst-case queueing delay at a
// static-priority FIFO queueing point for the aggregated arriving stream s of
// priority p, given the filtered aggregated arriving stream higher of all
// priorities above p. The service available to s at time t is 1 - r1(t); a
// bit of s arriving at time t departs at g(t) with C(g(t)) = A(t), where
// C(t) = integral of (1 - r1), and the bound is max over t of g(t) - t.
//
// higher must conform to the link (rate <= 1; it is a filtered stream). For
// the highest priority level pass Zero(); the bound then reduces to the
// maximum backlog behind a unit-rate server (AREA1 of the paper's Figure 7).
//
// DelayBound returns ErrUnstable when the tail arrival rate exceeds the tail
// service rate, in which case the delay is unbounded.
func DelayBound(s, higher Stream) (float64, error) {
	if s.IsZero() {
		return 0, nil
	}
	if higher.PeakRate() > 1+Eps {
		return 0, fmt.Errorf("%w: higher-priority stream has peak rate %g (must be filtered)",
			ErrRateAboveLink, higher.PeakRate())
	}
	var (
		t, g float64 // current arrival instant and its worst-case departure
		best float64
		k    int // segment index into s
		k1   int // segment index into higher
	)
	hRateAt := func(i int) float64 {
		if higher.IsZero() {
			return 0
		}
		return higher.segs[i].Rate
	}
	hNext := func(i int) float64 {
		if higher.IsZero() || i+1 >= len(higher.segs) {
			return math.Inf(1)
		}
		return higher.segs[i+1].Start
	}
	sNext := func(i int) float64 {
		if i+1 >= len(s.segs) {
			return math.Inf(1)
		}
		return s.segs[i+1].Start
	}
	// Advance g to cover arrivals before the first s segment? s starts at 0
	// by canonical form, so t = g = 0 and C(0) = A(0) = 0 holds initially.
	for iter := 0; ; iter++ {
		if iter > 4*(len(s.segs)+higher.Len())+8 {
			// Each iteration advances k or k1 or terminates; this is a
			// defensive bound against float pathology.
			return 0, fmt.Errorf("bitstream: DelayBound failed to converge for S=%v, S1=%v", s, higher)
		}
		rate := s.segs[k].Rate
		srv := 1 - hRateAt(k1)
		if srv < 0 {
			srv = 0
		}
		if rate <= srv+Eps {
			// D(t) is non-increasing from here on (rate only decreases,
			// service only increases): the recorded maximum is final.
			return best, nil
		}
		if srv <= Eps {
			// No service while higher priority saturates the link: g jumps
			// to the end of the saturated interval.
			tn := hNext(k1)
			if math.IsInf(tn, 1) {
				return 0, ErrUnstable
			}
			k1++
			if tn > g {
				g = tn
			}
			if d := g - t; d > best {
				best = d
			}
			continue
		}
		tnS := sNext(k)  // next arrival-rate change (in t)
		tnH := hNext(k1) // next service-rate change (in g)
		dtS := tnS - t   // time until arrival-rate change
		dtH := math.Inf(1)
		if !math.IsInf(tnH, 1) {
			dtH = (tnH - g) * srv / rate // time until g reaches tnH
		}
		if math.IsInf(dtS, 1) && math.IsInf(dtH, 1) {
			return 0, ErrUnstable // rate > srv forever
		}
		switch {
		case dtH < dtS-Eps:
			t += dtH
			g = tnH
			k1++
		case dtS < dtH-Eps:
			g += rate * dtS / srv
			t = tnS
			k++
		default: // simultaneous (within tolerance)
			t = tnS
			g = tnH
			k++
			k1++
		}
		if d := g - t; d > best {
			best = d
		}
	}
}

// MaxBacklog returns the worst-case backlog (in cells) of priority-p traffic
// s at a static-priority FIFO queueing point whose higher-priority filtered
// aggregate is higher: max over t of A(t) - C(t) with C the available
// service. It returns ErrUnstable when the backlog grows without bound.
//
// The backlog bound never exceeds the delay bound (service rate <= 1 cell
// per cell time), which is why a FIFO queue of D cells both bounds the delay
// by D cell times and never overflows.
func MaxBacklog(s, higher Stream) (float64, error) {
	if s.IsZero() {
		return 0, nil
	}
	if higher.PeakRate() > 1+Eps {
		return 0, fmt.Errorf("%w: higher-priority stream has peak rate %g (must be filtered)",
			ErrRateAboveLink, higher.PeakRate())
	}
	// Q(t) = A(t) - C(t) is concave (integrand r - (1-r1) is non-increasing),
	// so the peak is at the crossing r(t) = 1 - r1(t); sweep merged
	// breakpoints while the integrand is positive.
	q, best := 0.0, 0.0
	bps := mergedBreakpoints(s, higher)
	for i, t := range bps {
		rate := s.RateAt(t)
		srv := 1 - higher.RateAt(t)
		if srv < 0 {
			srv = 0
		}
		if rate <= srv+Eps {
			return best, nil
		}
		if i+1 >= len(bps) {
			return 0, ErrUnstable // positive net inflow forever
		}
		q += (rate - srv) * (bps[i+1] - t)
		if q > best {
			best = q
		}
	}
	return best, nil
}

func sortFloats(x []float64) {
	sort.Float64s(x)
}

func dedupFloats(x []float64) []float64 {
	out := x[:0]
	for i, v := range x {
		if i == 0 || v != x[i-1] {
			out = append(out, v)
		}
	}
	return out
}
