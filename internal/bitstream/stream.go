// Package bitstream implements the bit-stream traffic model of Zheng et al.,
// "Connection Admission Control for Hard Real-Time Communication in ATM
// Networks" (MERL TR-96-21 / ICDCS 1997).
//
// A bit stream S = {(r(k), t(k)); k = 0..m} represents a worst-case traffic
// envelope as a monotone non-increasing, step-wise rate function of time: the
// stream has rate r(k) during [t(k), t(k+1)), with t(m+1) = +inf. Time is
// measured in cell times (the time to transmit one ATM cell at full link
// bandwidth) and rates are normalized so that the link bandwidth is 1.
//
// The monotonicity invariant is what makes the paper's analysis tractable:
// filtering and worst-case delay have a single busy period, and the queueing
// delay bound of Algorithm 4.1 is reached at a unique crossing point.
//
// The package provides the complete algebra of the paper:
//
//   - FromVBR: Algorithm 2.1, the worst-case envelope of a (PCR, SCR, MBS)
//     connection.
//   - Stream.Delayed: Algorithm 3.1, worst-case clumping after an accumulated
//     cell delay variation CDV.
//   - Add / Sum: Algorithm 3.2, multiplexing.
//   - Sub: Algorithm 3.3, demultiplexing.
//   - Stream.Filtered: Algorithm 3.4, smoothing by a unit-bandwidth link.
//   - DelayBound: Algorithm 4.1, the worst-case queueing delay at a
//     static-priority FIFO queueing point.
//   - MaxBacklog: the companion buffer bound (AREA1 of the paper's Figure 7).
package bitstream

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Eps is the numerical tolerance used when comparing rates and times.
// Streams are manipulated with exact float64 arithmetic on breakpoints, so a
// small tolerance is sufficient to absorb rounding in derived quantities.
const Eps = 1e-9

// mergeEps is the tolerance below which adjacent segments with equal rates
// are merged during canonicalization. It is tighter than Eps so that merging
// never hides a genuine rate step.
const mergeEps = 1e-12

var (
	// ErrInvalidStream reports a stream that violates the bit-stream model
	// invariants (t(0) != 0, non-increasing breakpoints, increasing or
	// negative rates).
	ErrInvalidStream = errors.New("bitstream: invalid stream")

	// ErrRateAboveLink reports an operation that requires a stream already
	// conforming to a unit-bandwidth link (rate <= 1 everywhere), applied to
	// a stream that exceeds it.
	ErrRateAboveLink = errors.New("bitstream: stream rate exceeds link bandwidth")

	// ErrNotComponent reports a demultiplexing (Sub) whose result would not
	// be a valid bit stream; the subtrahend was not a component of the
	// aggregate.
	ErrNotComponent = errors.New("bitstream: subtrahend is not a component of the aggregate")

	// ErrUnstable reports a queueing point whose long-run arrival rate
	// exceeds the long-run service rate: the queueing delay is unbounded.
	ErrUnstable = errors.New("bitstream: queueing point is unstable (unbounded delay)")

	// ErrNegative reports a negative parameter (CDV, rate, time).
	ErrNegative = errors.New("bitstream: negative parameter")
)

// Segment is one step of a bit stream: the stream has rate Rate from time
// Start until the start of the next segment (or forever, for the last one).
type Segment struct {
	Start float64 `json:"t"` // cell times
	Rate  float64 `json:"r"` // normalized to link bandwidth
}

// Stream is a canonical bit stream: segment starts are strictly increasing
// beginning at 0, and rates are strictly decreasing. The zero value is the
// empty stream (rate 0 everywhere).
type Stream struct {
	segs []Segment
}

// New validates and canonicalizes segs into a Stream. The segments must start
// at time 0, have strictly increasing start times, finite non-negative rates,
// and non-increasing rates. Adjacent segments with equal rates are merged.
func New(segs []Segment) (Stream, error) {
	if len(segs) == 0 {
		return Stream{}, nil
	}
	if segs[0].Start != 0 {
		return Stream{}, fmt.Errorf("%w: first segment starts at %g, want 0", ErrInvalidStream, segs[0].Start)
	}
	for i, sg := range segs {
		if math.IsNaN(sg.Rate) || math.IsInf(sg.Rate, 0) || sg.Rate < 0 {
			return Stream{}, fmt.Errorf("%w: segment %d has rate %g", ErrInvalidStream, i, sg.Rate)
		}
		if math.IsNaN(sg.Start) || math.IsInf(sg.Start, 0) || sg.Start < 0 {
			return Stream{}, fmt.Errorf("%w: segment %d has start %g", ErrInvalidStream, i, sg.Start)
		}
		if i > 0 {
			if sg.Start <= segs[i-1].Start {
				return Stream{}, fmt.Errorf("%w: segment %d start %g <= previous start %g",
					ErrInvalidStream, i, sg.Start, segs[i-1].Start)
			}
			if sg.Rate > segs[i-1].Rate+mergeEps {
				return Stream{}, fmt.Errorf("%w: segment %d rate %g > previous rate %g (must be non-increasing)",
					ErrInvalidStream, i, sg.Rate, segs[i-1].Rate)
			}
		}
	}
	out := make([]Segment, 0, len(segs))
	for _, sg := range segs {
		if n := len(out); n > 0 && math.Abs(out[n-1].Rate-sg.Rate) <= mergeEps {
			continue // same rate: extend previous segment
		}
		out = append(out, sg)
	}
	// An all-zero stream canonicalizes to the empty stream.
	if len(out) == 1 && out[0].Rate == 0 {
		return Stream{}, nil
	}
	return Stream{segs: out}, nil
}

// MustNew is New for statically known inputs; it panics on invalid segments.
// It is intended for tests and package-level constants.
func MustNew(segs []Segment) Stream {
	s, err := New(segs)
	if err != nil {
		panic(err)
	}
	return s
}

// Constant returns the stream with constant rate r (>= 0).
func Constant(r float64) Stream {
	if r == 0 {
		return Stream{}
	}
	return Stream{segs: []Segment{{Start: 0, Rate: r}}}
}

// Zero returns the empty stream (rate 0 everywhere).
func Zero() Stream { return Stream{} }

// FromVBR implements Algorithm 2.1: the bit stream bounding the worst-case
// traffic generation of a VBR connection with peak cell rate pcr, sustainable
// cell rate scr and maximum burst size mbs (cells). The result is
//
//	S = {(1, 0), (PCR, 1), (SCR, 1 + (MBS-1)/PCR)}
//
// A CBR connection is the special case scr == pcr (mbs is then irrelevant).
// Requirements: 0 < scr <= pcr <= 1 and mbs >= 1.
func FromVBR(pcr, scr, mbs float64) (Stream, error) {
	switch {
	case !(pcr > 0) || pcr > 1+Eps:
		return Stream{}, fmt.Errorf("%w: PCR %g not in (0, 1]", ErrInvalidStream, pcr)
	case !(scr > 0) || scr > pcr+Eps:
		return Stream{}, fmt.Errorf("%w: SCR %g not in (0, PCR=%g]", ErrInvalidStream, scr, pcr)
	case !(mbs >= 1):
		return Stream{}, fmt.Errorf("%w: MBS %g < 1", ErrInvalidStream, mbs)
	}
	if scr > pcr {
		scr = pcr // clamp tolerance case
	}
	if pcr > 1 {
		pcr = 1
	}
	tail := 1 + (mbs-1)/pcr // end of the PCR burst
	segs := []Segment{{Start: 0, Rate: 1}}
	if tail > 1 {
		segs = append(segs, Segment{Start: 1, Rate: pcr})
		segs = append(segs, Segment{Start: tail, Rate: scr})
	} else {
		// MBS == 1: the single-cell burst is the initial unit-rate cell.
		segs = append(segs, Segment{Start: 1, Rate: scr})
	}
	return New(segs)
}

// Len returns the number of segments.
func (s Stream) Len() int { return len(s.segs) }

// IsZero reports whether the stream carries no traffic.
func (s Stream) IsZero() bool { return len(s.segs) == 0 }

// Segments returns a copy of the stream's segments.
func (s Stream) Segments() []Segment {
	out := make([]Segment, len(s.segs))
	copy(out, s.segs)
	return out
}

// RateAt returns r(t), the stream rate at time t (cell times).
func (s Stream) RateAt(t float64) float64 {
	if t < 0 {
		return 0
	}
	r := 0.0
	for _, sg := range s.segs {
		if sg.Start > t {
			break
		}
		r = sg.Rate
	}
	return r
}

// TailRate returns the long-run rate of the stream (the rate of the final
// segment), which governs stability of queueing points fed by it.
func (s Stream) TailRate() float64 {
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[len(s.segs)-1].Rate
}

// PeakRate returns the maximum instantaneous rate, r(0).
func (s Stream) PeakRate() float64 {
	if len(s.segs) == 0 {
		return 0
	}
	return s.segs[0].Rate
}

// CumAt returns A(t) = integral of r over [0, t]: the worst-case number of
// cells the stream delivers during [0, t].
func (s Stream) CumAt(t float64) float64 {
	if t <= 0 {
		return 0
	}
	area := 0.0
	for i, sg := range s.segs {
		end := t
		if i+1 < len(s.segs) && s.segs[i+1].Start < t {
			end = s.segs[i+1].Start
		}
		if end <= sg.Start {
			break
		}
		area += sg.Rate * (end - sg.Start)
	}
	return area
}

// InvCum returns the earliest time t with A(t) >= cells: how long the
// worst case needs to deliver that many cells. It returns ok=false when the
// stream never accumulates that much (a finite stream, or cells < 0).
func (s Stream) InvCum(cells float64) (float64, bool) {
	if cells <= 0 {
		return 0, cells == 0
	}
	area := 0.0
	for i, sg := range s.segs {
		end := math.Inf(1)
		if i+1 < len(s.segs) {
			end = s.segs[i+1].Start
		}
		if sg.Rate > 0 {
			t := sg.Start + (cells-area)/sg.Rate
			if t <= end {
				return t, true
			}
		}
		if math.IsInf(end, 1) {
			return 0, false // zero tail rate: the stream ends short
		}
		area += sg.Rate * (end - sg.Start)
	}
	return 0, false
}

// Scaled returns the stream with every rate multiplied by f >= 0. Scaling is
// used to express homogeneous aggregates without repeated addition.
func (s Stream) Scaled(f float64) (Stream, error) {
	if f < 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return Stream{}, fmt.Errorf("%w: scale factor %g", ErrNegative, f)
	}
	if f == 0 || s.IsZero() {
		return Stream{}, nil
	}
	segs := s.Segments()
	for i := range segs {
		segs[i].Rate *= f
	}
	return New(segs)
}

// String renders the stream as {(r0,t0),(r1,t1),...} in the paper's notation.
func (s Stream) String() string {
	if s.IsZero() {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, sg := range s.segs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "(%.6g,%.6g)", sg.Rate, sg.Start)
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether the two streams describe the same rate function to
// within eps, comparing at every breakpoint of either stream.
func (s Stream) Equal(o Stream, eps float64) bool {
	for _, t := range mergedBreakpoints(s, o) {
		if math.Abs(s.RateAt(t)-o.RateAt(t)) > eps {
			return false
		}
		// Probe just after the breakpoint as well: two streams could agree
		// at breakpoints but use slightly different ones.
		if math.Abs(s.RateAt(t+2*eps)-o.RateAt(t+2*eps)) > eps {
			return false
		}
	}
	return true
}

func mergedBreakpoints(a, b Stream) []float64 {
	out := make([]float64, 0, len(a.segs)+len(b.segs))
	i, j := 0, 0
	for i < len(a.segs) || j < len(b.segs) {
		var t float64
		switch {
		case i >= len(a.segs):
			t = b.segs[j].Start
			j++
		case j >= len(b.segs):
			t = a.segs[i].Start
			i++
		case a.segs[i].Start < b.segs[j].Start:
			t = a.segs[i].Start
			i++
		case a.segs[i].Start > b.segs[j].Start:
			t = b.segs[j].Start
			j++
		default:
			t = a.segs[i].Start
			i++
			j++
		}
		if n := len(out); n == 0 || out[n-1] != t {
			out = append(out, t)
		}
	}
	return out
}
