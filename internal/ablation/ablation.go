// Package ablation quantifies the paper's two modelling refinements over
// prior maximum-rate-function CAC schemes (Raha et al., INFOCOM'96), which
// the introduction claims as contributions:
//
//   - "more accurate modeling of traffic distortions": the exact worst-case
//     clumping of Algorithm 3.1 (area balance) versus the conservative
//     upper bound that adds the whole jitter window's traffic as an extra
//     burst on top of the undistorted envelope;
//   - "the filtering effect of a transmission link": smoothing each
//     incoming link's aggregate at link bandwidth (Algorithm 3.4) versus
//     aggregating raw envelopes.
//
// Each ablation disables one refinement and recomputes the symmetric RTnet
// experiment of Figure 10; the exact scheme must dominate both (equal or
// larger admissible load, equal or smaller bounds), and the gap is the
// value of the refinement.
package ablation

import (
	"errors"
	"fmt"

	"atmcac/internal/bitstream"
	"atmcac/internal/traffic"
)

// Variant selects the modelling scheme.
type Variant int

// Variants.
const (
	// Exact is the paper's full scheme: exact delay distortion and
	// per-link filtering.
	Exact Variant = iota + 1
	// NoFiltering keeps exact distortion but aggregates the transit
	// connections without smoothing them through the upstream ring link.
	NoFiltering
	// CrudeDistortion keeps filtering but replaces Algorithm 3.1 by the
	// conservative jitter bound: the CDV window's worst-case traffic
	// A(CDV) is added as an extra full-rate burst on top of the
	// undistorted envelope (then capped at link rate). Subadditivity of
	// the concave cumulative makes this a true upper bound of the exact
	// distortion.
	CrudeDistortion
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Exact:
		return "exact"
	case NoFiltering:
		return "no-filtering"
	case CrudeDistortion:
		return "crude-distortion"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ErrConfig reports invalid parameters.
var ErrConfig = errors.New("ablation: invalid configuration")

// distorted returns the worst-case arrival envelope of a connection after
// the accumulated cdv, under the variant's distortion model.
func distorted(v Variant, env bitstream.Stream, cdv float64) (bitstream.Stream, error) {
	switch v {
	case Exact, NoFiltering:
		return env.Delayed(cdv)
	case CrudeDistortion:
		if cdv == 0 {
			return env, nil
		}
		burst := env.CumAt(cdv)
		if burst <= 0 {
			return env, nil
		}
		extra, err := bitstream.New([]bitstream.Segment{{Start: 0, Rate: 1}, {Start: burst, Rate: 0}})
		if err != nil {
			return bitstream.Stream{}, err
		}
		return bitstream.Add(env, extra).Filtered(), nil
	default:
		return bitstream.Stream{}, fmt.Errorf("%w: unknown variant %d", ErrConfig, int(v))
	}
}

// Config parameterizes the symmetric RTnet scenario (Figure 10's setup).
type Config struct {
	// RingNodes defaults to 16, Terminals to 1, QueueCells to 32.
	RingNodes  int
	Terminals  int
	QueueCells float64
}

func (c Config) withDefaults() Config {
	if c.RingNodes == 0 {
		c.RingNodes = 16
	}
	if c.Terminals == 0 {
		c.Terminals = 1
	}
	if c.QueueCells == 0 {
		c.QueueCells = 32
	}
	return c
}

// RingPortBound computes the worst-case delay bound D' at a (symmetric)
// ring output port for total load, under the given variant. It mirrors the
// CAC engine's Section 4.3 assembly, with the variant's distortion and
// filtering rules, for the highest priority (no higher-priority stream).
func RingPortBound(v Variant, cfg Config, load float64) (float64, error) {
	cfg = cfg.withDefaults()
	if !(load > 0) || load > 1 {
		return 0, fmt.Errorf("%w: load %g", ErrConfig, load)
	}
	total := cfg.RingNodes * cfg.Terminals
	spec := traffic.CBR(load / float64(total))
	env, err := spec.Stream()
	if err != nil {
		return 0, err
	}
	// Local terminals: one connection per incoming link, CDV 0. Each
	// single-connection link aggregate filters to itself (rate <= 1), so
	// filtering does not distinguish the variants here.
	streams := make([]bitstream.Stream, 0, cfg.Terminals+1)
	for t := 0; t < cfg.Terminals; t++ {
		streams = append(streams, env)
	}
	// Transit: hop h in 1..RingNodes-2 contributes Terminals connections
	// with CDV = h * QueueCells, all arriving on the shared ring link.
	transit := make([]bitstream.Stream, 0, (cfg.RingNodes-2)*cfg.Terminals)
	for h := 1; h <= cfg.RingNodes-2; h++ {
		d, err := distorted(v, env, float64(h)*cfg.QueueCells)
		if err != nil {
			return 0, err
		}
		for t := 0; t < cfg.Terminals; t++ {
			transit = append(transit, d)
		}
	}
	transitAgg := bitstream.Sum(transit...)
	if v != NoFiltering {
		transitAgg = transitAgg.Filtered()
	}
	streams = append(streams, transitAgg)
	return bitstream.DelayBound(bitstream.Sum(streams...), bitstream.Zero())
}

// MaxLoad binary-searches the largest admissible symmetric load under the
// variant: the largest B whose ring-port bound stays within the FIFO
// budget. Resolution is tol (default 1/128).
func MaxLoad(v Variant, cfg Config, tol float64) (float64, error) {
	cfg = cfg.withDefaults()
	if tol <= 0 {
		tol = 1.0 / 128
	}
	feasible := func(load float64) (bool, error) {
		d, err := RingPortBound(v, cfg, load)
		if err != nil {
			if errors.Is(err, bitstream.ErrUnstable) {
				return false, nil
			}
			return false, err
		}
		return d <= cfg.QueueCells+1e-9, nil
	}
	if ok, err := feasible(1.0); err != nil {
		return 0, err
	} else if ok {
		return 1.0, nil
	}
	lo, hi := 0.0, 1.0
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// Comparison is the result of running every variant on one configuration.
type Comparison struct {
	Config  Config
	MaxLoad map[Variant]float64
}

// Compare runs all three variants.
func Compare(cfg Config, tol float64) (Comparison, error) {
	out := Comparison{Config: cfg.withDefaults(), MaxLoad: make(map[Variant]float64, 3)}
	for _, v := range []Variant{Exact, NoFiltering, CrudeDistortion} {
		b, err := MaxLoad(v, cfg, tol)
		if err != nil {
			return Comparison{}, fmt.Errorf("variant %v: %w", v, err)
		}
		out.MaxLoad[v] = b
	}
	return out, nil
}
