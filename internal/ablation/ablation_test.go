package ablation

import (
	"errors"
	"math"
	"testing"

	"atmcac/internal/bitstream"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
)

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		Exact:           "exact",
		NoFiltering:     "no-filtering",
		CrudeDistortion: "crude-distortion",
		Variant(9):      "Variant(9)",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestRingPortBoundValidation(t *testing.T) {
	if _, err := RingPortBound(Exact, Config{}, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("zero load error = %v", err)
	}
	if _, err := RingPortBound(Exact, Config{}, 1.5); !errors.Is(err, ErrConfig) {
		t.Errorf("overload error = %v", err)
	}
	if _, err := RingPortBound(Variant(9), Config{}, 0.5); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown variant error = %v", err)
	}
}

// TestCrudeDistortionDominatesExact: the crude jitter bound is a true upper
// envelope of the exact Algorithm 3.1 distortion at every time point, so
// the bounds it induces can only be worse.
func TestCrudeDistortionDominatesExact(t *testing.T) {
	specs := []traffic.Spec{
		traffic.CBR(0.05),
		traffic.VBR(0.5, 0.05, 8),
		traffic.VBR(0.9, 0.2, 32),
	}
	cdvs := []float64{16, 32, 96, 448}
	for _, spec := range specs {
		env, err := spec.Stream()
		if err != nil {
			t.Fatal(err)
		}
		for _, cdv := range cdvs {
			exact, err := distorted(Exact, env, cdv)
			if err != nil {
				t.Fatal(err)
			}
			crude, err := distorted(CrudeDistortion, env, cdv)
			if err != nil {
				t.Fatal(err)
			}
			for _, tau := range []float64{0.5, 1, 2, 5, 13, 34, 89, 233, 610, 1597} {
				if crude.CumAt(tau) < exact.CumAt(tau)-1e-6 {
					t.Fatalf("spec %v cdv %g: crude cum %g < exact cum %g at tau=%g",
						spec, cdv, crude.CumAt(tau), exact.CumAt(tau), tau)
				}
			}
		}
	}
}

func TestDistortedZeroCDV(t *testing.T) {
	env, err := traffic.VBR(0.5, 0.05, 8).Stream()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Exact, CrudeDistortion} {
		got, err := distorted(v, env, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(env, 0) {
			t.Errorf("variant %v changed the envelope at CDV=0", v)
		}
	}
}

// TestExactBoundMatchesEngine: the ablation's Exact variant must agree with
// the real CAC engine on the symmetric RTnet bound — it is the same
// mathematics assembled outside the engine.
func TestExactBoundMatchesEngine(t *testing.T) {
	cfg := Config{RingNodes: 8, Terminals: 2}
	load := 0.4
	got, err := RingPortBound(Exact, cfg, load)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rtnet.New(rtnet.Config{RingNodes: 8, TerminalsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	w, err := rt.SymmetricWorkload(load, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.InstallAll(w); err != nil {
		t.Fatal(err)
	}
	bounds, err := rt.RingPortBounds(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-bounds[0]) > 1e-9 {
		t.Fatalf("ablation exact bound %g != engine bound %g", got, bounds[0])
	}
}

// TestRefinementOrdering: at equal load, both ablations can only inflate
// the bound; disabling filtering is catastrophic (the transit aggregate
// arrives unsmoothed).
func TestRefinementOrdering(t *testing.T) {
	cfg := Config{RingNodes: 8, Terminals: 2}
	for _, load := range []float64{0.2, 0.4, 0.6} {
		exact, err := RingPortBound(Exact, cfg, load)
		if err != nil {
			t.Fatal(err)
		}
		crude, err := RingPortBound(CrudeDistortion, cfg, load)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := RingPortBound(NoFiltering, cfg, load)
		if err != nil && !errors.Is(err, bitstream.ErrUnstable) {
			t.Fatal(err)
		}
		if crude < exact-1e-9 {
			t.Errorf("load %g: crude distortion bound %g below exact %g", load, crude, exact)
		}
		if err == nil && raw < exact-1e-9 {
			t.Errorf("load %g: unfiltered bound %g below exact %g", load, raw, exact)
		}
	}
}

// TestCompareOrdering: admissible load under the full scheme dominates both
// ablations, and the gaps are substantial — the quantitative version of
// the paper's claims against [9].
func TestCompareOrdering(t *testing.T) {
	cmp, err := Compare(Config{RingNodes: 8, Terminals: 2}, 1.0/64)
	if err != nil {
		t.Fatal(err)
	}
	exact := cmp.MaxLoad[Exact]
	noFilter := cmp.MaxLoad[NoFiltering]
	crude := cmp.MaxLoad[CrudeDistortion]
	if exact <= 0 {
		t.Fatalf("exact variant admits nothing: %+v", cmp.MaxLoad)
	}
	if noFilter > exact+1.0/32 {
		t.Errorf("no-filtering admits more (%g) than exact (%g)", noFilter, exact)
	}
	if crude > exact+1.0/32 {
		t.Errorf("crude distortion admits more (%g) than exact (%g)", crude, exact)
	}
	// The refinements must be worth something.
	if exact < noFilter+1.0/16 {
		t.Errorf("filtering effect worth only %g load", exact-noFilter)
	}
	if exact < crude+1.0/32 {
		t.Errorf("exact distortion worth only %g load", exact-crude)
	}
	t.Logf("max load: exact=%.3f crude-distortion=%.3f no-filtering=%.3f", exact, crude, noFilter)
}
