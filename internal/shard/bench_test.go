package shard

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// benchShard is startShard for benchmarks: a live wire server owning the
// given switches.
func benchShard(b *testing.B, id string, switches ...string) string {
	b.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for _, sw := range switches {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			b.Fatal(err)
		}
	}
	srv := wire.NewServer(n)
	srv.SetShardID(id)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	b.Cleanup(func() { _ = srv.Close(); <-done })
	return l.Addr().String()
}

// BenchmarkShardedSetup pins the cost of coordination: one full
// admit+release cycle through the coordinator, on a fixed 4-hop route,
// as the route's footprint widens from a single shard (fast path — one
// RPC, no intent log) to two and three shards (two-phase reserve-commit:
// one prepare and one commit per owning shard plus two fsynced intent
// appends). Teardown always broadcasts to every shard, so the cycle is
// uniform across variants; the deltas between them are the 2PC overhead
// the trajectory tracks.
func BenchmarkShardedSetup(b *testing.B) {
	// Twelve switches in three blocks of four: s0=sw0..sw3, s1=sw4..sw7,
	// s2=sw8..sw11.
	blocks := [][]string{
		{"sw0", "sw1", "sw2", "sw3"},
		{"sw4", "sw5", "sw6", "sw7"},
		{"sw8", "sw9", "sw10", "sw11"},
	}
	variants := []struct {
		name   string
		shards int
		route  core.Route
	}{
		{"1shard/local", 1, hops("sw0", "sw1", "sw2", "sw3")},
		{"3shard/local", 3, hops("sw0", "sw1", "sw2", "sw3")},
		{"3shard/cross2", 3, hops("sw2", "sw3", "sw4", "sw5")},
		{"3shard/cross3", 3, hops("sw3", "sw4", "sw8", "sw9")},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			spec := ""
			for i := 0; i < v.shards; i++ {
				id := fmt.Sprintf("s%d", i)
				addr := benchShard(b, id, blocks[i]...)
				if spec != "" {
					spec += ";"
				}
				spec += fmt.Sprintf("%s@%s=%s", id, addr, joinSwitches(blocks[i]))
			}
			m, err := ParseMap(spec)
			if err != nil {
				b.Fatal(err)
			}
			coord, err := NewCoordinator(m, nil, filepath.Join(b.TempDir(), "intent"))
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()
			ctx := context.Background()
			req := core.ConnRequest{ID: "bench", Spec: traffic.CBR(0.001), Priority: 1, Route: v.route}
			// Warm the per-shard client connections off the clock.
			if _, err := coord.Setup(ctx, req); err != nil {
				b.Fatal(err)
			}
			if err := coord.Teardown(ctx, req.ID); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Setup(ctx, req); err != nil {
					b.Fatal(err)
				}
				if err := coord.Teardown(ctx, req.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}

func joinSwitches(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
