package shard

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// benchShard is startShard for benchmarks: a live wire server owning the
// given switches.
func benchShard(b *testing.B, id string, switches ...string) string {
	b.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for _, sw := range switches {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			b.Fatal(err)
		}
	}
	srv := wire.NewServer(n)
	srv.SetShardID(id)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	b.Cleanup(func() { _ = srv.Close(); <-done })
	return l.Addr().String()
}

// BenchmarkShardedSetup pins the cost of coordination: one full
// admit+release cycle through the coordinator, on a fixed 4-hop route,
// as the route's footprint widens from a single shard (fast path — one
// RPC, no intent log) to two and three shards (two-phase reserve-commit:
// one prepare and one commit per owning shard plus two fsynced intent
// appends). Teardown always broadcasts to every shard, so the cycle is
// uniform across variants; the deltas between them are the 2PC overhead
// the trajectory tracks.
func BenchmarkShardedSetup(b *testing.B) {
	// Twelve switches in three blocks of four: s0=sw0..sw3, s1=sw4..sw7,
	// s2=sw8..sw11.
	blocks := [][]string{
		{"sw0", "sw1", "sw2", "sw3"},
		{"sw4", "sw5", "sw6", "sw7"},
		{"sw8", "sw9", "sw10", "sw11"},
	}
	variants := []struct {
		name   string
		shards int
		route  core.Route
	}{
		{"1shard/local", 1, hops("sw0", "sw1", "sw2", "sw3")},
		{"3shard/local", 3, hops("sw0", "sw1", "sw2", "sw3")},
		{"3shard/cross2", 3, hops("sw2", "sw3", "sw4", "sw5")},
		{"3shard/cross3", 3, hops("sw3", "sw4", "sw8", "sw9")},
	}
	// failover pins the retry-latency bound the HA sweep promises: s0 is
	// a replicated pair whose primary is a corpse, and every iteration
	// re-points the pool at it before a cross-shard setup — so the cycle
	// measured is discover-the-death (one refused dial), fail over to the
	// surviving member, and complete two-phase reserve-commit through it.
	b.Run("failover", func(b *testing.B) {
		dead, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		deadAddr := dead.Addr().String()
		_ = dead.Close()
		survivor := benchShard(b, "s0", blocks[0]...)
		other := benchShard(b, "s1", blocks[1]...)
		spec := fmt.Sprintf("s0@%s|%s=%s;s1@%s=%s",
			deadAddr, survivor, joinSwitches(blocks[0]), other, joinSwitches(blocks[1]))
		m, err := ParseMap(spec)
		if err != nil {
			b.Fatal(err)
		}
		coord, err := NewCoordinator(m, nil, filepath.Join(b.TempDir(), "intent"))
		if err != nil {
			b.Fatal(err)
		}
		defer coord.Close()
		ctx := context.Background()
		req := core.ConnRequest{ID: "bench", Spec: traffic.CBR(0.001), Priority: 1, Route: hops("sw2", "sw3", "sw4", "sw5")}
		// Warm the s1 client and perform the first failover off the clock.
		if _, err := coord.Setup(ctx, req); err != nil {
			b.Fatal(err)
		}
		if err := coord.Teardown(ctx, req.ID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			coord.ResetEndpoint("s0", deadAddr)
			if _, err := coord.Setup(ctx, req); err != nil {
				b.Fatal(err)
			}
			if err := coord.Teardown(ctx, req.ID); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
	})
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			spec := ""
			for i := 0; i < v.shards; i++ {
				id := fmt.Sprintf("s%d", i)
				addr := benchShard(b, id, blocks[i]...)
				if spec != "" {
					spec += ";"
				}
				spec += fmt.Sprintf("%s@%s=%s", id, addr, joinSwitches(blocks[i]))
			}
			m, err := ParseMap(spec)
			if err != nil {
				b.Fatal(err)
			}
			coord, err := NewCoordinator(m, nil, filepath.Join(b.TempDir(), "intent"))
			if err != nil {
				b.Fatal(err)
			}
			defer coord.Close()
			ctx := context.Background()
			req := core.ConnRequest{ID: "bench", Spec: traffic.CBR(0.001), Priority: 1, Route: v.route}
			// Warm the per-shard client connections off the clock.
			if _, err := coord.Setup(ctx, req); err != nil {
				b.Fatal(err)
			}
			if err := coord.Teardown(ctx, req.ID); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := coord.Setup(ctx, req); err != nil {
					b.Fatal(err)
				}
				if err := coord.Teardown(ctx, req.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
		})
	}
}

func joinSwitches(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}
