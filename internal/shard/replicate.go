package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/replica"
)

// Coordinator HA: the active coordinator ships every intent-log frame
// to a standby coordinator over the same framed message stream the
// journal replication uses (replica.Msg over journal frames), and the
// standby tails it into its own intent log. Shipping is synchronous
// while a standby is attached: an intent that the standby has not
// acknowledged is an intent the coordinator must not act on, because a
// takeover that misses a commit decision would resolve the transaction
// divergently (presumed abort on the standby, committed on a shard).
// With no standby attached the coordinator proceeds unreplicated —
// availability over replication, exactly like replica.ModeAsync — which
// stays consistent because a lost commit intent can only exist for a
// transaction whose commit never reached phase 2 acknowledgement.
//
// On primary silence the standby promotes: it appends an IntentEpoch
// record bumping the coordinator term, best-effort fences the old
// active over the replication stream, and the caller re-opens the log
// as a full Coordinator and runs Recover. Every shard 2PC operation is
// stamped with the term (wire.Request.CoordEpoch), so the shards'
// ratchets shut the superseded coordinator out even when the fence
// message never arrived.

// ErrSuperseded reports that another coordinator was promoted at a
// higher term while this one ran; the receiver must stop serving.
var ErrSuperseded = errors.New("shard: coordinator superseded by a higher term")

// IntentPrimary serves the coordinator replication stream: it accepts
// one standby coordinator, catches it up from the intent log, ships
// every subsequent append synchronously and feeds the standby's
// failover timer with heartbeats.
type IntentPrimary struct {
	coord  *Coordinator
	tracer obs.Tracer

	// AckTimeout bounds how long an append waits for the standby's
	// acknowledgement before the session is declared dead and the append
	// refused. Defaults to 2s.
	AckTimeout time.Duration
	// HeartbeatEvery is the keepalive interval feeding the standby's
	// failover timer. Defaults to 1s (matching replica.Primary).
	HeartbeatEvery time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	sess    *intentSession
	shipped uint64 // highest intent seq written to the log (see Lag)
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup
}

// intentSession is one attached standby.
type intentSession struct {
	conn  net.Conn
	acked uint64
	dead  bool
}

// NewIntentPrimary wires the coordinator's intent log to a replication
// shipper and returns the stream server. Call Serve with a listener.
func NewIntentPrimary(coord *Coordinator, tracer obs.Tracer) *IntentPrimary {
	p := &IntentPrimary{
		coord: coord, tracer: tracer,
		AckTimeout:     2 * time.Second,
		HeartbeatEvery: time.Second,
	}
	p.cond = sync.NewCond(&p.mu)
	p.shipped = coord.log.LastSeq()
	coord.log.SetShipper(p.ship)
	return p
}

// Attached reports whether a standby coordinator session is live.
// Until one is, intents are acted on unreplicated — the coordinator
// keeps serving, but a takeover would lose decisions made meanwhile.
func (p *IntentPrimary) Attached() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sess != nil && !p.sess.dead
}

// Lag returns how many records the attached standby trails the log by
// (zero when none is attached — nothing is owed to nobody). It reads
// the shipped watermark p tracks itself rather than the log's LastSeq:
// the log's lock is held across ship() — which takes p.mu — so touching
// it here, under p.mu, would invert the lock order and deadlock a
// metrics scrape against an append waiting for its ack.
func (p *IntentPrimary) Lag() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sess == nil || p.sess.dead {
		return 0
	}
	if p.shipped <= p.sess.acked {
		return 0
	}
	return p.shipped - p.sess.acked
}

// RegisterMetrics exposes the coordinator pair's replication lag.
func (p *IntentPrimary) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("atmcac_coord_standby_lag_records", func() float64 { return float64(p.Lag()) })
	reg.Help("atmcac_coord_standby_lag_records", "Intent records shipped to but not yet acknowledged by the standby coordinator.")
}

// sendMsg writes one message with timeout as a write deadline. Every
// primary→standby write is bounded this way: ship() runs under the
// intent log's lock and the heartbeat under p.mu, so a stream stalled
// by TCP backpressure must surface as a dead session within the
// timeout, not wedge the coordinator on a blocked write.
func sendMsg(conn net.Conn, timeout time.Duration, msg replica.Msg) error {
	_ = conn.SetWriteDeadline(time.Now().Add(timeout))
	err := replica.WriteMsg(conn, msg)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

// ship is the IntentLog shipper hook: called under the log's lock after
// each record is locally durable. With a standby attached it writes the
// record and blocks until acknowledged (or AckTimeout); with none it
// returns nil immediately.
func (p *IntentPrimary) ship(seq uint64, payload []byte) error {
	p.mu.Lock()
	if seq > p.shipped {
		p.shipped = seq
	}
	sess := p.sess
	if sess == nil || sess.dead {
		p.mu.Unlock()
		return nil
	}
	err := sendMsg(sess.conn, p.AckTimeout, replica.Msg{
		Type: replica.MsgRecord, Seq: seq, Epoch: p.coord.Epoch(), Payload: payload,
	})
	p.mu.Unlock()
	if err != nil {
		p.detach(sess)
		return fmt.Errorf("ship intent %d: %w", seq, err)
	}
	return p.waitAck(sess, seq)
}

// waitAck blocks until the session acknowledges seq, dies, or the
// timeout lapses.
func (p *IntentPrimary) waitAck(sess *intentSession, seq uint64) error {
	deadline := time.Now().Add(p.AckTimeout)
	timer := time.AfterFunc(p.AckTimeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()
	p.mu.Lock()
	for sess.acked < seq && !sess.dead && !time.Now().After(deadline) {
		p.cond.Wait()
	}
	acked := sess.acked >= seq
	p.mu.Unlock()
	if acked {
		return nil
	}
	p.detach(sess)
	return fmt.Errorf("standby coordinator did not acknowledge intent %d", seq)
}

// detach tears one session down and wakes every ack waiter.
func (p *IntentPrimary) detach(sess *intentSession) {
	p.mu.Lock()
	sess.dead = true
	if p.sess == sess {
		p.sess = nil
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	_ = sess.conn.Close()
}

// Serve accepts standby sessions on l until Close. A new standby
// replaces the old session.
func (p *IntentPrimary) Serve(l net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("shard: intent replication server closed")
	}
	p.ln = l
	p.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			p.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("shard: intent replication accept: %w", err)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// Close stops accepting and drops the attached standby.
func (p *IntentPrimary) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	ln, sess := p.ln, p.sess
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if sess != nil {
		p.detach(sess)
	}
	p.wg.Wait()
}

// handle runs one standby session: handshake, catch-up, then the read
// loop consuming acks while the heartbeat loop keeps the stream warm.
func (p *IntentPrimary) handle(conn net.Conn) {
	hello, err := replica.ReadMsg(conn)
	if err != nil || hello.Type != replica.MsgHello {
		_ = conn.Close()
		return
	}
	if hello.Epoch > p.coord.Epoch() {
		// The peer has seen a higher coordinator term than ours: we were
		// superseded while partitioned. Fence and refuse the session.
		p.coord.Fence()
		_ = replica.WriteMsg(conn, replica.Msg{Type: replica.MsgReject, Code: replica.CodeResync, Epoch: p.coord.Epoch()})
		_ = conn.Close()
		return
	}
	sess := &intentSession{conn: conn, acked: hello.Seq}
	send := func(seq uint64, payload []byte) error {
		return sendMsg(conn, p.AckTimeout, replica.Msg{
			Type: replica.MsgRecord, Seq: seq, Epoch: p.coord.Epoch(), Payload: payload,
		})
	}
	attach := func() {
		p.mu.Lock()
		old := p.sess
		p.sess = sess
		p.mu.Unlock()
		if old != nil {
			p.detach(old)
		}
	}
	// The standby acks every record as it lands, catch-up backlog
	// included, so the read loop must drain them while the backlog
	// streams: with the acks unread, a large backlog fills both TCP
	// buffers and wedges send() — and with it the intent log's lock —
	// for as long as the session lives.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		p.readLoop(sess)
	}()
	if err := p.coord.log.CatchUp(hello.Seq, send, attach); err != nil {
		p.detach(sess)
		<-readDone
		return
	}
	stop := make(chan struct{})
	go p.heartbeatLoop(sess, stop)
	<-readDone
	close(stop)
	p.detach(sess)
}

// readLoop consumes standby acks and fence notifications.
func (p *IntentPrimary) readLoop(sess *intentSession) {
	for {
		msg, err := replica.ReadMsg(sess.conn)
		if err != nil {
			return
		}
		switch msg.Type {
		case replica.MsgAck:
			p.mu.Lock()
			if msg.Seq > sess.acked {
				sess.acked = msg.Seq
			}
			p.cond.Broadcast()
			p.mu.Unlock()
		case replica.MsgFence:
			// The standby promoted: this coordinator is history.
			p.coord.Fence()
			return
		}
	}
}

// heartbeatLoop feeds the standby's failover timer.
func (p *IntentPrimary) heartbeatLoop(sess *intentSession, stop chan struct{}) {
	tick := time.NewTicker(p.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			p.mu.Lock()
			if sess.dead {
				p.mu.Unlock()
				return
			}
			err := sendMsg(sess.conn, p.AckTimeout, replica.Msg{Type: replica.MsgHeartbeat, Epoch: p.coord.Epoch()})
			p.mu.Unlock()
			if err != nil {
				p.detach(sess)
				return
			}
		}
	}
}

// StandbyConfig parameterizes a standby coordinator.
type StandbyConfig struct {
	// From is the active coordinator's intent replication address.
	From string
	// LogPath is the standby's own intent log file.
	LogPath string
	// FS abstracts the filesystem; nil means the OS.
	FS journal.FS
	// FailoverTimeout promotes the standby once the active coordinator
	// has been silent this long. Required (a standby that can never
	// promote is a tape archive, not HA).
	FailoverTimeout time.Duration
	// DialTimeout bounds each connection attempt. Defaults to 2s.
	DialTimeout time.Duration
	// Tracer receives promote events.
	Tracer obs.Tracer
}

// StandbyCoordinator tails the active coordinator's intent log and
// promotes itself when the active goes silent. After Run returns nil
// the takeover is durable: open the log with NewCoordinator (it reads
// the bumped term), Recover, and serve.
type StandbyCoordinator struct {
	cfg   StandbyConfig
	log   *IntentLog
	epoch uint64 // highest coordinator term observed

	mu     sync.Mutex
	conn   net.Conn
	closed bool
}

// NewStandbyCoordinator opens (or creates) the local intent log copy.
func NewStandbyCoordinator(cfg StandbyConfig) (*StandbyCoordinator, error) {
	if cfg.From == "" || cfg.LogPath == "" {
		return nil, errors.New("shard: standby coordinator needs a replication source and a log path")
	}
	if cfg.FailoverTimeout <= 0 {
		return nil, errors.New("shard: standby coordinator needs a failover timeout")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	log, recs, _, err := OpenIntentLog(cfg.FS, cfg.LogPath)
	if err != nil {
		return nil, err
	}
	epoch := MaxIntentEpoch(recs)
	if epoch == 0 {
		epoch = 1
	}
	return &StandbyCoordinator{cfg: cfg, log: log, epoch: epoch}, nil
}

// Close aborts Run from another goroutine.
func (sb *StandbyCoordinator) Close() {
	sb.mu.Lock()
	sb.closed = true
	conn := sb.conn
	sb.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	_ = sb.log.Close()
}

// Run tails the active coordinator until it goes silent for the
// configured failover timeout, then promotes and returns nil. It
// returns ErrSuperseded when the active refuses the session at a
// higher term, ctx.Err when canceled, and other errors on local
// failures (an unappendable log must not promote).
func (sb *StandbyCoordinator) Run(ctx context.Context) error {
	lastContact := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		sb.mu.Lock()
		closed := sb.closed
		sb.mu.Unlock()
		if closed {
			return errors.New("shard: standby coordinator closed")
		}
		err := sb.session(ctx, &lastContact)
		switch {
		case errors.Is(err, ErrSuperseded):
			return err
		case err != nil && !isTransient(err):
			return err
		}
		if time.Since(lastContact) >= sb.cfg.FailoverTimeout {
			return sb.promote()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sb.cfg.FailoverTimeout / 8):
		}
	}
}

// errTransient wraps stream and dial failures Run retries.
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

func isTransient(err error) bool {
	var t errTransient
	return errors.As(err, &t)
}

// session runs one connection to the active coordinator, refreshing
// lastContact on every message.
func (sb *StandbyCoordinator) session(ctx context.Context, lastContact *time.Time) error {
	conn, err := net.DialTimeout("tcp", sb.cfg.From, sb.cfg.DialTimeout)
	if err != nil {
		return errTransient{err}
	}
	sb.mu.Lock()
	if sb.closed {
		sb.mu.Unlock()
		_ = conn.Close()
		return errors.New("shard: standby coordinator closed")
	}
	sb.conn = conn
	sb.mu.Unlock()
	defer func() {
		sb.mu.Lock()
		if sb.conn == conn {
			sb.conn = nil
		}
		sb.mu.Unlock()
		_ = conn.Close()
	}()
	if err := replica.WriteMsg(conn, replica.Msg{
		Type: replica.MsgHello, Seq: sb.log.LastSeq(), Epoch: sb.epoch,
	}); err != nil {
		return errTransient{err}
	}
	*lastContact = time.Now()
	for {
		// Bound each read by the failover timeout: a silent active is a
		// dead active, and the timer must fire even mid-read.
		_ = conn.SetReadDeadline(time.Now().Add(sb.cfg.FailoverTimeout))
		msg, err := replica.ReadMsg(conn)
		if err != nil {
			return errTransient{err}
		}
		*lastContact = time.Now()
		switch msg.Type {
		case replica.MsgRecord:
			if msg.Epoch > sb.epoch {
				sb.epoch = msg.Epoch
			}
			if err := sb.log.AppendShipped(msg.Seq, msg.Payload); err != nil {
				return err // local log failure: fatal, must not promote over a hole
			}
			if err := replica.WriteMsg(conn, replica.Msg{Type: replica.MsgAck, Seq: msg.Seq}); err != nil {
				return errTransient{err}
			}
		case replica.MsgHeartbeat:
			if msg.Epoch > sb.epoch {
				sb.epoch = msg.Epoch
			}
		case replica.MsgReject, replica.MsgFence:
			if msg.Epoch > sb.epoch {
				return fmt.Errorf("%w (term %d)", ErrSuperseded, msg.Epoch)
			}
			return errTransient{fmt.Errorf("active coordinator refused session: %s", msg.Code)}
		}
	}
}

// promote makes the takeover durable: the bumped term is appended to
// the local log before anything else happens, then the old active is
// best-effort fenced over the stream. The caller re-opens the log as a
// Coordinator — NewCoordinator reads the new term — and runs Recover.
func (sb *StandbyCoordinator) promote() error {
	newEpoch := sb.epoch + 1
	if err := sb.log.Append(&IntentRecord{State: IntentEpoch, Epoch: newEpoch}); err != nil {
		return fmt.Errorf("shard: promote standby coordinator: %w", err)
	}
	sb.epoch = newEpoch
	if err := sb.log.Close(); err != nil {
		return fmt.Errorf("shard: close promoted intent log: %w", err)
	}
	// Best-effort fence: the shards' coordinator-term ratchets are the
	// real guard; this just tells a live-but-partitioned old active
	// sooner.
	if conn, err := net.DialTimeout("tcp", sb.cfg.From, sb.cfg.DialTimeout); err == nil {
		_ = replica.WriteMsg(conn, replica.Msg{Type: replica.MsgHello, Seq: 0, Epoch: newEpoch})
		_ = replica.WriteMsg(conn, replica.Msg{Type: replica.MsgFence, Epoch: newEpoch})
		_ = conn.Close()
	}
	if sb.cfg.Tracer != nil {
		sb.cfg.Tracer.Trace(obs.Event{Kind: obs.KindCoordPromote, Outcome: obs.OutcomeOK, Epoch: newEpoch})
	}
	return nil
}

// Epoch returns the standby's view of the coordinator term (after Run
// returns nil, the bumped takeover term).
func (sb *StandbyCoordinator) Epoch() uint64 { return sb.epoch }
