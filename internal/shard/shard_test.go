package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func TestParseMap(t *testing.T) {
	m, err := ParseMap("s0@h0:1=sw0, sw1; s1@h1:2=sw2")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Shards(); len(got) != 2 || got[0].ID != "s0" || got[1].Addr != "h1:2" {
		t.Fatalf("shards = %v", got)
	}
	if info, ok := m.Owner("sw1"); !ok || info.ID != "s0" {
		t.Fatalf("owner(sw1) = %v, %v", info, ok)
	}
	if sws := m.Switches("s0"); len(sws) != 2 || sws[0] != "sw0" {
		t.Fatalf("switches(s0) = %v", sws)
	}
	for _, bad := range []string{
		"",
		"s0=sw0",                // no addr
		"s0@h:1=",               // no switches
		"s0@h:1=sw0;s0@h:2=sw1", // duplicate shard
		"s0@h:1=sw0;s1@h:2=sw0", // duplicate switch
		"s0@h:1 sw0",            // no =
	} {
		if _, err := ParseMap(bad); err == nil {
			t.Errorf("ParseMap(%q) accepted", bad)
		}
	}
}

func hops(switches ...string) core.Route {
	r := make(core.Route, len(switches))
	for i, sw := range switches {
		r[i] = core.Hop{Switch: sw, In: 1, Out: 0}
	}
	return r
}

func TestSegments(t *testing.T) {
	m, err := ParseMap("s0@h0:1=sw0,sw1;s1@h1:2=sw2,sw3")
	if err != nil {
		t.Fatal(err)
	}
	segs, err := m.Segments(hops("sw0", "sw1", "sw2", "sw3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Shard.ID != "s0" || len(segs[0].Route) != 2 ||
		segs[1].Shard.ID != "s1" || len(segs[1].Route) != 2 {
		t.Fatalf("segments = %+v", segs)
	}
	// A route that leaves a shard and comes back gets two segments for it,
	// in path order.
	segs, err = m.Segments(hops("sw0", "sw2", "sw1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || segs[0].Shard.ID != "s0" || segs[1].Shard.ID != "s1" || segs[2].Shard.ID != "s0" {
		t.Fatalf("revisit segments = %+v", segs)
	}
	if _, err := m.Segments(hops("sw0", "sw9")); err == nil {
		t.Fatal("unowned switch accepted")
	}
}

func TestLegsMergeRevisitedShard(t *testing.T) {
	m, err := ParseMap("s0@h0:1=sw0,sw1;s1@h1:2=sw2,sw3")
	if err != nil {
		t.Fatal(err)
	}
	// A chain route: one leg per shard, not interleaved.
	legs, interleaved, err := m.Legs(hops("sw0", "sw1", "sw2", "sw3"))
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) != 2 || interleaved || legs[0].Shard.ID != "s0" || len(legs[0].Route) != 2 {
		t.Fatalf("chain legs = %+v interleaved=%v", legs, interleaved)
	}
	// A wrap revisiting s0: its two runs merge into one leg, hops in
	// path order, and the route is flagged interleaved.
	legs, interleaved, err = m.Legs(hops("sw1", "sw2", "sw3", "sw0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(legs) != 2 || !interleaved {
		t.Fatalf("wrap legs = %+v interleaved=%v", legs, interleaved)
	}
	if legs[0].Shard.ID != "s0" || len(legs[0].Route) != 2 ||
		legs[0].Route[0].Switch != "sw1" || legs[0].Route[1].Switch != "sw0" {
		t.Fatalf("merged s0 leg = %+v", legs[0])
	}
	if legs[1].Shard.ID != "s1" || len(legs[1].Route) != 2 {
		t.Fatalf("s1 leg = %+v", legs[1])
	}
	if _, _, err := m.Legs(hops("sw0", "sw9")); err == nil {
		t.Fatal("unowned switch accepted")
	}
}

func TestIntentLogRoundTripAndTornTail(t *testing.T) {
	fsys := journal.OSFS{}
	path := filepath.Join(t.TempDir(), "intent")
	log, recs, torn, err := OpenIntentLog(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh log: recs=%v torn=%v", recs, torn)
	}
	req := &core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: hops("sw0")}
	for _, rec := range []IntentRecord{
		{State: IntentBegin, Txn: "t1", Request: req, Shards: []ShardMark{{Shard: "s0"}}},
		{State: IntentCommit, Txn: "t1", Shards: []ShardMark{{Shard: "s0", Epoch: 1}}},
		{State: IntentDone, Txn: "t1"},
		{State: IntentBegin, Txn: "t2", Request: req, Shards: []ShardMark{{Shard: "s0"}}},
	} {
		rec := rec
		if err := log.Append(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append garbage that is not a valid frame.
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.WriteFile(path, append(data, 0xde, 0xad, 0xbe), 0o600); err != nil {
		t.Fatal(err)
	}
	log2, recs, torn, err := OpenIntentLog(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if !torn {
		t.Fatal("torn tail not detected")
	}
	if len(recs) != 4 || recs[3].Seq != 4 {
		t.Fatalf("replayed %d records, last %+v", len(recs), recs[len(recs)-1])
	}
	open := foldIntents(recs)
	if len(open) != 1 || open[0].txn != "t2" || open[0].state != IntentBegin {
		t.Fatalf("open txns = %+v", open)
	}
	// The next append continues the sequence past the repaired tail.
	next := IntentRecord{State: IntentAbort, Txn: "t2"}
	if err := log2.Append(&next); err != nil {
		t.Fatal(err)
	}
	if next.Seq != 5 {
		t.Fatalf("next seq = %d, want 5", next.Seq)
	}
}

// startShard serves one CAC instance owning the given switches.
func startShard(t *testing.T, id string, switches ...string) (addr string, srv *wire.Server) {
	t.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for _, sw := range switches {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv = wire.NewServer(n)
	srv.SetShardID(id)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })
	return l.Addr().String(), srv
}

// twoShardFixture builds two live shards, the map over them and a
// coordinator with its intent log in a temp dir.
func twoShardFixture(t *testing.T) (*Coordinator, *Map, string) {
	t.Helper()
	addr0, _ := startShard(t, "s0", "sw0", "sw1")
	addr1, _ := startShard(t, "s1", "sw2", "sw3")
	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s=sw2,sw3", addr0, addr1))
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "intent")
	c, err := NewCoordinator(m, nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c, m, logPath
}

func crossReq(id string) core.ConnRequest {
	return core.ConnRequest{ID: core.ConnID(id), Spec: traffic.CBR(0.1), Priority: 1,
		Route: hops("sw0", "sw1", "sw2", "sw3")}
}

// shardList asks one shard directly for its admitted connections.
func shardList(t *testing.T, c *Coordinator, shardID string) []core.ConnID {
	t.Helper()
	info, ok := c.m.Lookup(shardID)
	if !ok {
		t.Fatalf("no shard %q", shardID)
	}
	p := c.pool(info)
	cl, err := p.Get(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(cl)
	ids, err := cl.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestCoordinatorSingleShardFastPath(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	ctx := context.Background()
	req := core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: hops("sw0", "sw1")}
	adm, err := c.Setup(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c1" || len(adm.PerHopGuaranteed) != 2 {
		t.Fatalf("admission = %+v", adm)
	}
	if ids := shardList(t, c, "s0"); len(ids) != 1 {
		t.Fatalf("s0 list = %v", ids)
	}
	if ids := shardList(t, c, "s1"); len(ids) != 0 {
		t.Fatalf("s1 list = %v", ids)
	}
	if err := c.Teardown(ctx, "c1"); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorCrossShardSetup(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	ctx := context.Background()
	adm, err := c.Setup(ctx, crossReq("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c1" || len(adm.PerHopGuaranteed) != 4 || adm.EndToEndGuaranteed <= 0 {
		t.Fatalf("admission = %+v", adm)
	}
	// The connection exists on both shards, with no lingering holds.
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 1 || ids[0] != "c1" {
			t.Fatalf("%s list = %v", id, ids)
		}
	}
	sts, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if len(st.Prepared) != 0 {
			t.Fatalf("shard %s still holds %v", st.ShardID, st.Prepared)
		}
	}
	// Union list reports it once; teardown removes it everywhere.
	if ids, err := c.List(ctx); err != nil || len(ids) != 1 {
		t.Fatalf("union list = %v, %v", ids, err)
	}
	if err := c.Teardown(ctx, "c1"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 0 {
			t.Fatalf("%s list after teardown = %v", id, ids)
		}
	}
	if len(c.InDoubt()) != 0 {
		t.Fatalf("in doubt: %v", c.InDoubt())
	}
}

// TestCoordinatorRevisitingRouteSetup covers a ring-wrapping route that
// leaves s0 and comes back: the coordinator must reach s0 with a single
// merged prepare (two prepares under one txn would collide on the
// connection ID) and, because part of that leg sits downstream of s1,
// must insist on an end-to-end delay bound.
func TestCoordinatorRevisitingRouteSetup(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	ctx := context.Background()
	wrap := core.ConnRequest{ID: "c-wrap", Spec: traffic.CBR(0.05), Priority: 1,
		Route: hops("sw1", "sw2", "sw3", "sw0")}

	// Without a bound the jitter entering s0's downstream run cannot be
	// budgeted: a typed CAC rejection, before any shard holds anything.
	if _, err := c.Setup(ctx, wrap); !errors.Is(err, ErrRevisitBound) || !errors.Is(err, core.ErrRejected) {
		t.Fatalf("unbounded wrap: err = %v, want ErrRevisitBound", err)
	}
	sts, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if len(st.Prepared) != 0 {
			t.Fatalf("refused wrap left hold on %s: %v", st.ShardID, st.Prepared)
		}
	}

	// With a bound it admits: one connection on each shard, s0's covering
	// both of its runs, and the combined guarantee within the bound.
	wrap.DelayBound = 160
	adm, err := c.Setup(ctx, wrap)
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c-wrap" || len(adm.PerHopGuaranteed) != 4 {
		t.Fatalf("admission = %+v", adm)
	}
	if adm.EndToEndGuaranteed <= 0 || adm.EndToEndGuaranteed > wrap.DelayBound {
		t.Fatalf("guaranteed %v outside (0, %v]", adm.EndToEndGuaranteed, wrap.DelayBound)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 1 || ids[0] != "c-wrap" {
			t.Fatalf("%s list = %v", id, ids)
		}
	}
	sts, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if len(st.Prepared) != 0 {
			t.Fatalf("shard %s still holds %v", st.ShardID, st.Prepared)
		}
	}
	if err := c.Teardown(ctx, "c-wrap"); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 0 {
			t.Fatalf("%s list after teardown = %v", id, ids)
		}
	}
	if len(c.InDoubt()) != 0 {
		t.Fatalf("in doubt: %v", c.InDoubt())
	}
}

func TestCoordinatorDelayBudgetAcrossShards(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	ctx := context.Background()

	// A bound with room for all four hops admits, and the combined
	// guarantee respects it.
	ok := crossReq("c-ok")
	ok.DelayBound = 300
	adm, err := c.Setup(ctx, ok)
	if err != nil {
		t.Fatal(err)
	}
	if adm.EndToEndGuaranteed > ok.DelayBound {
		t.Fatalf("guaranteed %v exceeds bound %v", adm.EndToEndGuaranteed, ok.DelayBound)
	}
	if err := c.Teardown(ctx, "c-ok"); err != nil {
		t.Fatal(err)
	}

	// A bound the first segment nearly exhausts makes the second shard
	// refuse its remaining budget; the coordinator must abort the first
	// shard's hold and report a CAC rejection, leaving no residue.
	tight := crossReq("c-tight")
	tight.DelayBound = adm.EndToEndGuaranteed/2 + 1
	_, err = c.Setup(ctx, tight)
	if err == nil {
		t.Fatal("over-budget cross-shard setup admitted")
	}
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("error %v is not a CAC rejection", err)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 0 {
			t.Fatalf("%s list after rejection = %v", id, ids)
		}
	}
	sts, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if len(st.Prepared) != 0 {
			t.Fatalf("refused setup left hold on %s: %v", st.ShardID, st.Prepared)
		}
	}
}

var errCrash = errors.New("injected coordinator crash")

// crashAt installs a hook that abandons the transaction at the named
// boundary, simulating a coordinator that died mid-protocol.
func crashAt(c *Coordinator, point string) {
	c.SetTestHook(func(p, txn string) error {
		if p == point {
			return errCrash
		}
		return nil
	})
}

func TestCoordinatorRecoverPresumedAbort(t *testing.T) {
	for _, point := range []string{"pre-prepare", "post-prepare", "pre-commit"} {
		t.Run(point, func(t *testing.T) {
			c, m, logPath := twoShardFixture(t)
			ctx := context.Background()
			crashAt(c, point)
			if _, err := c.Setup(ctx, crossReq("c1")); !errors.Is(err, errCrash) {
				t.Fatalf("setup error = %v", err)
			}
			_ = c.Close()

			// The restarted coordinator finds a begin with no decision and
			// presumes abort: every hold is released, nothing is admitted.
			c2, err := NewCoordinator(m, nil, logPath)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			rep, err := c2.Recover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Aborted) != 1 || len(rep.Committed) != 0 || len(rep.InDoubt) != 0 {
				t.Fatalf("recover report = %+v", rep)
			}
			for _, id := range []string{"s0", "s1"} {
				if ids := shardList(t, c2, id); len(ids) != 0 {
					t.Fatalf("%s list after recovery = %v", id, ids)
				}
			}
			sts, err := c2.Status(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range sts {
				if len(st.Prepared) != 0 {
					t.Fatalf("recovery left hold on %s: %v", st.ShardID, st.Prepared)
				}
			}
			// The same connection admits fresh afterwards.
			if _, err := c2.Setup(ctx, crossReq("c1")); err != nil {
				t.Fatalf("setup after recovery: %v", err)
			}
		})
	}
}

func TestCoordinatorRecoverRedrivesCommit(t *testing.T) {
	for _, point := range []string{"mid-commit", "post-commit"} {
		t.Run(point, func(t *testing.T) {
			c, m, logPath := twoShardFixture(t)
			ctx := context.Background()
			crashAt(c, point)
			if _, err := c.Setup(ctx, crossReq("c1")); !errors.Is(err, errCrash) {
				t.Fatalf("setup error = %v", err)
			}
			_ = c.Close()

			// The commit intent is durable: recovery must finish the job —
			// idempotently on the shard that already committed.
			c2, err := NewCoordinator(m, nil, logPath)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			rep, err := c2.Recover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Committed) != 1 || len(rep.Aborted) != 0 || len(rep.InDoubt) != 0 {
				t.Fatalf("recover report = %+v", rep)
			}
			for _, id := range []string{"s0", "s1"} {
				if ids := shardList(t, c2, id); len(ids) != 1 || ids[0] != "c1" {
					t.Fatalf("%s list after recovery = %v", id, ids)
				}
			}
			// A second recovery is a no-op.
			rep2, err := c2.Recover(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep2.Committed)+len(rep2.Aborted)+len(rep2.InDoubt) != 0 {
				t.Fatalf("second recover not idempotent: %+v", rep2)
			}
		})
	}
}

func TestCoordinatorServerFrontEnd(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	front := NewServer(c)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = front.Serve(l) }()
	t.Cleanup(func() { _ = front.Close(); <-done })
	cl, err := wire.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The ordinary wire client admits a cross-shard route through the
	// coordinator without knowing the map.
	adm, err := cl.Setup(context.Background(), crossReq("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if adm.ID != "c1" || len(adm.PerHopGuaranteed) != 4 {
		t.Fatalf("admission = %+v", adm)
	}
	if ids, err := cl.List(context.Background()); err != nil || len(ids) != 1 {
		t.Fatalf("list = %v, %v", ids, err)
	}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.Connections != 1 {
		t.Fatalf("health = %+v", h)
	}
	if err := cl.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
	// A rejection travels back typed.
	tight := crossReq("c2")
	tight.DelayBound = 1
	if _, err := cl.Setup(context.Background(), tight); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("tight-bound setup error = %v", err)
	}
	// Ops the coordinator does not aggregate are refused clearly.
	if _, err := cl.Inspect(context.Background(), ""); err == nil {
		t.Fatal("inspect through coordinator succeeded")
	}
}

// TestCoordinatorRecoverFlipUnwindsAllLegs pins the flip-to-abort path of
// recovery when the refusal lands on a leg that is NOT the last: the
// coordinator crashed mid-commit (first leg committed, second still
// holding), and by recovery time the first leg's connection is gone and
// its ID reused by an unrelated admission. The re-driven commit on the
// first leg is then definitively refused, and the flip must unwind every
// leg — including ones whose sub-request was never re-derived — without
// touching the unrelated connection.
func TestCoordinatorRecoverFlipUnwindsAllLegs(t *testing.T) {
	c, m, logPath := twoShardFixture(t)
	ctx := context.Background()
	crashAt(c, "mid-commit")
	if _, err := c.Setup(ctx, crossReq("c1")); !errors.Is(err, errCrash) {
		t.Fatalf("setup error = %v", err)
	}
	_ = c.Close()

	// The committed first leg disappears and its ID is taken by an
	// unrelated single-switch admission before anyone recovers.
	info, _ := m.Lookup("s0")
	cl, err := wire.Dial(info.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
	rival := core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: hops("sw0")}
	if _, err := cl.Setup(context.Background(), rival); err != nil {
		t.Fatal(err)
	}
	_ = cl.Close()

	c2, err := NewCoordinator(m, nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	rep, err := c2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Aborted) != 1 || len(rep.Committed) != 0 || len(rep.InDoubt) != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	// The rival admission survives on s0; the transaction's own legs are
	// gone everywhere, holds included.
	if ids := shardList(t, c2, "s0"); len(ids) != 1 || ids[0] != "c1" {
		t.Fatalf("s0 list = %v, want the rival only", ids)
	}
	if ids := shardList(t, c2, "s1"); len(ids) != 0 {
		t.Fatalf("s1 list = %v", ids)
	}
	sts, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if len(st.Prepared) != 0 {
			t.Fatalf("flip left hold on %s: %v", st.ShardID, st.Prepared)
		}
	}
}

// listenRetry rebinds addr, tolerating the brief window while the old
// listener's port is released.
func listenRetry(t *testing.T, addr string) net.Listener {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("rebind %s: %v", addr, lastErr)
	return nil
}

// TestCoordinatorInProcessRecoverHonorsFlippedAbort pins the in-memory
// half of the decision state: a commit that flips to abort mid-flight
// but cannot reach every shard leaves the transaction in doubt with the
// durable log saying abort. A same-process Recover must then drive the
// abort — never re-admit a connection whose client was already told the
// setup failed.
func TestCoordinatorInProcessRecoverHonorsFlippedAbort(t *testing.T) {
	addr0, _ := startShard(t, "s0", "sw0", "sw1")

	// s1 is built by hand so the test can kill and restart it.
	n1 := core.NewNetwork(core.HardCDV{})
	for _, sw := range []string{"sw2", "sw3"} {
		if _, err := n1.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv1 := wire.NewServer(n1)
	srv1.SetShardID("s1")
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := l1.Addr().String()
	go func() { _ = srv1.Serve(l1) }()

	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s=sw2,sw3", addr0, addr1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(m, nil, filepath.Join(t.TempDir(), "intent"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	c.PrepareTTL = 20 * time.Millisecond
	c.Retries = 1
	ctx := context.Background()

	// At the decision point: both holds have expired; s0's is reaped and
	// its connection ID taken over, so the commit on s0 is definitively
	// refused — and s1 dies, so the flipped abort cannot reach it.
	rival := core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1, Route: hops("sw0")}
	c.SetTestHook(func(p, txn string) error {
		if p != "pre-commit" {
			return nil
		}
		time.Sleep(40 * time.Millisecond)
		cl, derr := wire.Dial(addr0)
		if derr != nil {
			t.Error(derr)
			return nil
		}
		defer cl.Close()
		if _, rerr := cl.ShardReap(context.Background()); rerr != nil {
			t.Error(rerr)
		}
		if _, serr := cl.Setup(context.Background(), rival); serr != nil {
			t.Error(serr)
		}
		_ = srv1.Close()
		return nil
	})
	if _, err := c.Setup(ctx, crossReq("c1")); err == nil {
		t.Fatal("flipped setup reported success")
	}
	if got := c.InDoubt(); len(got) != 1 {
		t.Fatalf("in doubt = %v, want one txn", got)
	}
	c.SetTestHook(nil)

	// s1 comes back empty (journal replay reaps unresolved prepares) and
	// the rival releases its hold on the connection ID.
	n1b := core.NewNetwork(core.HardCDV{})
	for _, sw := range []string{"sw2", "sw3"} {
		if _, err := n1b.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv1b := wire.NewServer(n1b)
	srv1b.SetShardID("s1")
	l1b := listenRetry(t, addr1)
	done := make(chan struct{})
	go func() { defer close(done); _ = srv1b.Serve(l1b) }()
	t.Cleanup(func() { _ = srv1b.Close(); <-done })
	cl0, err := wire.Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl0.Teardown(context.Background(), "c1"); err != nil {
		t.Fatal(err)
	}
	_ = cl0.Close()

	// Same-process recovery: the durable decision is abort, and the
	// in-memory state must agree — c1 must not reappear anywhere.
	rep, err := c.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Aborted) != 1 || len(rep.Committed) != 0 || len(rep.InDoubt) != 0 {
		t.Fatalf("recover report = %+v", rep)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 0 {
			t.Fatalf("%s list after recovery = %v, want empty", id, ids)
		}
	}
	if got := c.InDoubt(); len(got) != 0 {
		t.Fatalf("still in doubt after recovery: %v", got)
	}
}

// TestIntentLogReserveSeqConcurrentUnique pins transaction-name
// uniqueness: concurrent reservations must never observe the same
// sequence.
func TestIntentLogReserveSeqConcurrentUnique(t *testing.T) {
	log, _, _, err := OpenIntentLog(nil, filepath.Join(t.TempDir(), "intent"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	const n = 64
	seqs := make(chan uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seqs <- log.ReserveSeq()
		}()
	}
	wg.Wait()
	close(seqs)
	seen := make(map[uint64]struct{}, n)
	for s := range seqs {
		if _, dup := seen[s]; dup {
			t.Fatalf("sequence %d reserved twice", s)
		}
		seen[s] = struct{}{}
	}
	// Appends continue past the reserved range.
	rec := IntentRecord{State: IntentBegin, Txn: "t"}
	if err := log.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Seq < n {
		t.Fatalf("append seq %d inside reserved range [0, %d)", rec.Seq, n)
	}
}

// TestCoordinatorReaperResolvesDeadCoordinator covers the orphan path:
// the coordinator dies after prepare, nobody recovers it, and the
// shards' own reapers free the held bandwidth after the TTL.
func TestCoordinatorReaperResolvesDeadCoordinator(t *testing.T) {
	c, m, _ := twoShardFixture(t)
	c.PrepareTTL = 20 * time.Millisecond
	ctx := context.Background()
	crashAt(c, "pre-commit")
	if _, err := c.Setup(ctx, crossReq("c1")); !errors.Is(err, errCrash) {
		t.Fatalf("setup error = %v", err)
	}
	_ = c.Close()

	time.Sleep(30 * time.Millisecond)
	for _, id := range []string{"s0", "s1"} {
		info, _ := m.Lookup(id)
		cl, err := wire.Dial(info.Addr)
		if err != nil {
			t.Fatal(err)
		}
		reaped, err := cl.ShardReap(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(reaped) != 1 {
			t.Fatalf("%s reaped %v, want one txn", id, reaped)
		}
		st, err := cl.ShardStatus(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Prepared) != 0 {
			t.Fatalf("%s still holds %v", id, st.Prepared)
		}
		_ = cl.Close()
	}
}
