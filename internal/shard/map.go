// Package shard partitions the switches of an ATM network across
// multiple cacd instances and drives multi-hop connection setups through
// a crash-safe two-phase reserve-commit protocol.
//
// A Map assigns every switch to exactly one shard (a cacd instance
// reachable at an address). A route whose hops all live on one shard is
// forwarded as an ordinary setup; a route crossing shards is split into
// per-shard legs — one per shard, carrying every hop that shard owns —
// and admitted atomically: phase 1 reserves each leg on its owning
// shard (a journaled, TTL-bounded prepared hold), phase 2 commits — or
// aborts — everywhere. The
// Coordinator's intent log makes the decision durable, so a coordinator
// crash between the phases resolves deterministically on recovery, and
// the shards' orphan reapers bound how long a dead coordinator can
// strand bandwidth.
package shard

import (
	"fmt"
	"sort"
	"strings"

	"atmcac/internal/core"
)

// Info names one shard: its ID in the map, its primary wire address and
// — when the shard is a replicated pair — the standby's wire address.
type Info struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Standby is the warm-standby member of a replicated pair
	// (id@primary|standby=sw,...); empty for an unreplicated shard. The
	// coordinator fails over to it when the primary stops answering.
	Standby string `json:"standby,omitempty"`
}

// Endpoints returns the shard's dialable member addresses: the primary
// first, then the standby when the shard is a pair.
func (i Info) Endpoints() []string {
	if i.Standby == "" {
		return []string{i.Addr}
	}
	return []string{i.Addr, i.Standby}
}

// Map is the switch-ownership table: which shard admits which switches.
type Map struct {
	shards []Info          // map order, deduplicated
	byID   map[string]Info // shard ID -> info
	owner  map[string]Info // switch name -> owning shard
}

// ParseMap parses a shard map spec of the form
//
//	s0@host:port=sw0,sw1;s1@host:port=sw2,sw3
//
// A shard may be a replicated pair: id@primary|standby=sw,... names the
// primary's and the warm standby's wire addresses, and the coordinator
// fails over between them. Every switch must be owned by exactly one
// shard; shard IDs must be unique. This is the -shard-map flag format of
// cacd and cacctl.
func ParseMap(spec string) (*Map, error) {
	m := &Map{byID: make(map[string]Info), owner: make(map[string]Info)}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		head, switches, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("shard: map entry %q: want id@addr=sw,...", entry)
		}
		id, addr, ok := strings.Cut(strings.TrimSpace(head), "@")
		id = strings.TrimSpace(id)
		addr = strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("shard: map entry %q: want id@addr=sw,...", entry)
		}
		addr, standby, paired := strings.Cut(addr, "|")
		addr = strings.TrimSpace(addr)
		standby = strings.TrimSpace(standby)
		if addr == "" || (paired && standby == "") {
			return nil, fmt.Errorf("shard: map entry %q: want id@primary|standby=sw,...", entry)
		}
		if standby == addr {
			return nil, fmt.Errorf("shard: map entry %q: primary and standby share address %q", entry, addr)
		}
		if _, dup := m.byID[id]; dup {
			return nil, fmt.Errorf("shard: duplicate shard id %q", id)
		}
		info := Info{ID: id, Addr: addr, Standby: standby}
		m.byID[id] = info
		m.shards = append(m.shards, info)
		names := strings.Split(switches, ",")
		owned := 0
		for _, sw := range names {
			sw = strings.TrimSpace(sw)
			if sw == "" {
				continue
			}
			if prev, taken := m.owner[sw]; taken {
				return nil, fmt.Errorf("shard: switch %q owned by both %q and %q", sw, prev.ID, id)
			}
			m.owner[sw] = info
			owned++
		}
		if owned == 0 {
			return nil, fmt.Errorf("shard: shard %q owns no switches", id)
		}
	}
	if len(m.shards) == 0 {
		return nil, fmt.Errorf("shard: empty map spec")
	}
	return m, nil
}

// Shards returns every shard in map order.
func (m *Map) Shards() []Info {
	out := make([]Info, len(m.shards))
	copy(out, m.shards)
	return out
}

// Lookup returns the shard with the given ID.
func (m *Map) Lookup(id string) (Info, bool) {
	info, ok := m.byID[id]
	return info, ok
}

// Owner returns the shard owning the named switch.
func (m *Map) Owner(sw string) (Info, bool) {
	info, ok := m.owner[sw]
	return info, ok
}

// Switches returns the switch names owned by the shard, sorted.
func (m *Map) Switches(shardID string) []string {
	var out []string
	for sw, info := range m.owner {
		if info.ID == shardID {
			out = append(out, sw)
		}
	}
	sort.Strings(out)
	return out
}

// Segment is one contiguous run of route hops owned by a single shard.
type Segment struct {
	Shard Info
	Route core.Route
}

// Segments splits route into contiguous per-shard segments, in route
// order. A route revisiting a shard after leaving it yields a second
// segment for that shard — this is the path-order view used for display
// (cacctl shard route). The two-phase protocol itself runs on Legs,
// which merge a shard's segments: a shard holds at most one prepared
// sub-request per transaction. An unowned switch is an error: a partial
// map must not silently drop hops from admission control.
func (m *Map) Segments(route core.Route) ([]Segment, error) {
	var segs []Segment
	for _, hop := range route {
		info, ok := m.Owner(hop.Switch)
		if !ok {
			return nil, fmt.Errorf("shard: switch %q not in the shard map", hop.Switch)
		}
		if n := len(segs); n > 0 && segs[n-1].Shard.ID == info.ID {
			segs[n-1].Route = append(segs[n-1].Route, hop)
			continue
		}
		segs = append(segs, Segment{Shard: info, Route: core.Route{hop}})
	}
	return segs, nil
}

// Legs groups a route's hops by owning shard: one leg per shard, in
// order of first appearance, each carrying every hop that shard owns in
// path order. This is the unit of the two-phase protocol — a shard can
// hold only one prepared sub-request per transaction (the sub-request
// reuses the connection ID), so a route that re-enters a shard it
// already left (a ring wrap) must reach it as a single merged leg.
// interleaved reports whether such a re-entry happened; it forces the
// coordinator onto the conservative whole-bound jitter budget (see
// subRequest), because part of a merged leg then sits downstream of
// legs prepared after it.
func (m *Map) Legs(route core.Route) (legs []Segment, interleaved bool, err error) {
	index := make(map[string]int)
	for _, hop := range route {
		info, ok := m.Owner(hop.Switch)
		if !ok {
			return nil, false, fmt.Errorf("shard: switch %q not in the shard map", hop.Switch)
		}
		i, seen := index[info.ID]
		if !seen {
			index[info.ID] = len(legs)
			legs = append(legs, Segment{Shard: info, Route: core.Route{hop}})
			continue
		}
		if i != len(legs)-1 {
			interleaved = true
		}
		legs[i].Route = append(legs[i].Route, hop)
	}
	return legs, interleaved, nil
}
