package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/wire"
)

// Server fronts a Coordinator with the standard wire protocol, so the
// ordinary client (and cacctl) can set up and tear down cross-shard
// connections without knowing the map. Reads that aggregate cleanly
// (list, health) fan out to the shards; everything else is answered
// with unknown-op — per-shard inspection goes to the shard directly.
type Server struct {
	coord *Coordinator

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a wire front end over coord.
func NewServer(coord *Coordinator) *Server {
	return &Server{coord: coord, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on l until Close. It always returns a
// non-nil error (wire.ErrServerClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return wire.ErrServerClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return wire.ErrServerClosed
			}
			return fmt.Errorf("shard: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return wire.ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Close stops accepting and closes every client connection.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	l := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	// The shared session loop handles framing, hello negotiation and
	// pipelining; the coordinator front end supplies only the dispatch.
	wire.ServeSession(conn, s.handle, wire.SessionOptions{})
}

// errorResponse maps a coordinator error onto the wire taxonomy,
// preserving the shard's typed code when one traveled back.
func errorResponse(err error) wire.Response {
	resp := wire.Response{Error: err.Error(), Rejected: errors.Is(err, core.ErrRejected)}
	var re *wire.RemoteError
	switch {
	case errors.Is(err, ErrInDoubt):
		resp.Code = wire.CodeInDoubt
	case errors.Is(err, ErrCoordFenced):
		resp.Code = wire.CodeFenced
	case errors.As(err, &re):
		resp.Code = re.Code
	default:
		resp.Code = core.ErrorCode(err)
	}
	return resp
}

func (s *Server) handle(req wire.Request) wire.Response {
	ctx := context.Background()
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	switch req.Op {
	case wire.OpSetup:
		if req.Request == nil {
			return wire.Response{Error: "setup requires a request body", Code: wire.CodeProtocol}
		}
		adm, err := s.coord.Setup(ctx, *req.Request)
		if err != nil {
			return errorResponse(err)
		}
		return wire.Response{OK: true, Admission: adm}
	case wire.OpTeardown:
		if req.ID == "" {
			return wire.Response{Error: "teardown requires an id", Code: wire.CodeProtocol}
		}
		if err := s.coord.Teardown(ctx, req.ID); err != nil {
			return errorResponse(err)
		}
		return wire.Response{OK: true}
	case wire.OpList:
		ids, err := s.coord.List(ctx)
		if err != nil {
			return errorResponse(err)
		}
		return wire.Response{OK: true, Connections: ids}
	case wire.OpHealth:
		// The coordinator's health is the fleet's: how many connections
		// the shards carry and how many transactions are unresolved.
		ids, err := s.coord.List(ctx)
		if err != nil {
			return errorResponse(err)
		}
		role := "coordinator"
		if s.coord.Fenced() {
			role = "fenced"
		}
		return wire.Response{OK: true, Health: &wire.HealthReport{
			Connections: len(ids),
			Role:        role,
			Epoch:       s.coord.Epoch(),
			Prepared:    len(s.coord.InDoubt()),
		}}
	case wire.OpShardStatus:
		// Answer with the coordinator's own identity plus a fleet
		// fan-out: one report per shard pair, each carrying the active
		// member's role/epoch/holds and the probed peer. cacctl shard
		// status renders the whole cluster from this one call.
		self := s.coord.SelfStatus()
		fleet, err := s.coord.Status(ctx)
		if err != nil {
			// A dead pair must not blank the coordinator's own report;
			// degrade to identity-only with the failure as a warning.
			return wire.Response{OK: true, Shard: &self, Warning: err.Error()}
		}
		return wire.Response{OK: true, Shard: &self, Shards: fleet}
	default:
		return wire.Response{
			Error: fmt.Sprintf("unknown op %q (coordinator speaks setup, teardown, list, health)", req.Op),
			Code:  wire.CodeUnknownOp,
		}
	}
}
