package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"

	"atmcac/internal/core"
	"atmcac/internal/journal"
)

// The coordinator's intent log is the durable half of the two-phase
// protocol: one CRC-framed append per state change of a transaction,
// fsynced before the coordinator acts on it. The decision records are
// what make the protocol crash-safe — a commit intent with no done
// record is re-driven on recovery, and a begin with no decision is
// presumed aborted, matching the shards' own presumed-abort replay.

// Intent states, in lifecycle order.
const (
	// IntentBegin opens a transaction: the full request and the owning
	// shards are recorded before any prepare is sent.
	IntentBegin = "begin"
	// IntentCommit is the durable decision to admit: every shard
	// prepared, and the per-shard prepare epochs are recorded so a
	// recovering coordinator can fence-check its re-driven commits.
	IntentCommit = "commit"
	// IntentAbort is the durable decision to release: some shard refused,
	// the delay budget ran out, or a commit flipped after a hold expired.
	IntentAbort = "abort"
	// IntentDone closes the transaction: the decision reached every
	// shard, so recovery can skip it.
	IntentDone = "done"
	// IntentEpoch is not a transaction state: it records a coordinator
	// term change. A standby coordinator appends one on promotion, so
	// the epoch is durable before the new coordinator drives anything,
	// and a restarted coordinator resumes at its highest recorded term.
	IntentEpoch = "epoch"
)

// ShardMark names one participating shard and, once prepared, the epoch
// its hold was created under.
type ShardMark struct {
	Shard string `json:"shard"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// IntentRecord is one entry in the coordinator's intent log.
type IntentRecord struct {
	Seq   uint64 `json:"seq"`
	State string `json:"state"`
	Txn   string `json:"txn"`
	// Request is the full multi-shard connection request; set on begin so
	// recovery can re-split the route without any other state.
	Request *core.ConnRequest `json:"request,omitempty"`
	// Shards lists the participating shards (begin) or the prepared
	// epochs (commit).
	Shards []ShardMark `json:"shards,omitempty"`
	// Epoch is the coordinator term declared by an IntentEpoch record.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ErrNotReplicated distinguishes an append the standby coordinator did
// not acknowledge from one that is not durable at all: the record IS in
// the local log (written and fsynced) and may well be in the standby's
// copy too — only the acknowledgement was lost. A caller seeing this
// must treat the recorded decision as potentially visible to a promoted
// standby; in particular a commit intent that failed replication must
// not be flipped to abort, or the two coordinators would resolve the
// transaction divergently. Match with errors.Is.
var ErrNotReplicated = errors.New("not acknowledged by the standby coordinator")

// MaxIntentEpoch returns the highest coordinator term recorded in recs;
// zero when no epoch record exists (a coordinator that never failed
// over runs at the implicit first term).
func MaxIntentEpoch(recs []IntentRecord) uint64 {
	var max uint64
	for i := range recs {
		if recs[i].State == IntentEpoch && recs[i].Epoch > max {
			max = recs[i].Epoch
		}
	}
	return max
}

// maxIntentBytes bounds one intent frame, mirroring the journal's limit.
const maxIntentBytes = 1 << 20

const intentHeaderLen = 8 // 4-byte payload length + 4-byte CRC32

// ScanIntentFrames decodes intent frames until the data ends or a frame
// is invalid. Like the journal scanner it never fails: a bad frame
// terminates the scan with torn set, because the log's tail is exactly
// where a coordinator crash lands.
func ScanIntentFrames(data []byte) (recs []IntentRecord, valid int64, torn bool) {
	for {
		rest := data[valid:]
		if len(rest) == 0 {
			return recs, valid, false
		}
		if len(rest) < intentHeaderLen {
			return recs, valid, true
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n > maxIntentBytes || int64(n) > int64(len(rest)-intentHeaderLen) {
			return recs, valid, true
		}
		payload := rest[intentHeaderLen : intentHeaderLen+int(n)]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:8]) {
			return recs, valid, true
		}
		var rec IntentRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, valid, true
		}
		recs = append(recs, rec)
		valid += int64(intentHeaderLen) + int64(n)
	}
}

// IntentLog is the coordinator's append-only decision log.
type IntentLog struct {
	mu      sync.Mutex
	fsys    journal.FS
	path    string
	f       journal.File
	nextSeq uint64
	// shipper, when set, is called under mu after each record is locally
	// durable, with the exact frame payload bytes and the assigned
	// sequence. A non-nil error refuses the append: the caller must not
	// act on a decision the standby coordinator has not acknowledged.
	shipper func(seq uint64, payload []byte) error
}

// SetShipper installs the replication hook called after every durable
// append (see IntentPrimary). Must be set before the log is appended to
// concurrently.
func (l *IntentLog) SetShipper(ship func(seq uint64, payload []byte) error) {
	l.mu.Lock()
	l.shipper = ship
	l.mu.Unlock()
}

// CatchUp streams every record past afterSeq through send, then runs
// attach — all under the log's lock, so no append can land between the
// last caught-up record and the live shipping the attach enables. This
// is how a standby coordinator joins without a gap: the shipper hook
// and this method serialize on the same mutex.
func (l *IntentLog) CatchUp(afterSeq uint64, send func(seq uint64, payload []byte) error, attach func()) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	data, err := l.fsys.ReadFile(l.path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("shard: read intent log: %w", err)
	}
	recs, _, _ := ScanIntentFrames(data)
	for i := range recs {
		if recs[i].Seq <= afterSeq {
			continue
		}
		payload, merr := json.Marshal(&recs[i])
		if merr != nil {
			return fmt.Errorf("shard: re-encode intent %d for catch-up: %w", recs[i].Seq, merr)
		}
		if serr := send(recs[i].Seq, payload); serr != nil {
			return serr
		}
	}
	attach()
	return nil
}

// OpenIntentLog opens (or creates) the log at path, returning every
// record already in it. A torn tail — the residue of a crash mid-append
// — is truncated away; torn reports that it happened.
func OpenIntentLog(fsys journal.FS, path string) (log *IntentLog, recs []IntentRecord, torn bool, err error) {
	if fsys == nil {
		fsys = journal.OSFS{}
	}
	data, rerr := fsys.ReadFile(path)
	if rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
		return nil, nil, false, fmt.Errorf("shard: read intent log: %w", rerr)
	}
	recs, valid, torn := ScanIntentFrames(data)
	if torn {
		if err := fsys.Truncate(path, valid); err != nil {
			return nil, nil, true, fmt.Errorf("shard: repair torn intent log: %w", err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o600)
	if err != nil {
		return nil, nil, torn, fmt.Errorf("shard: open intent log: %w", err)
	}
	var last uint64
	if len(recs) > 0 {
		last = recs[len(recs)-1].Seq
	}
	return &IntentLog{fsys: fsys, path: path, f: f, nextSeq: last + 1}, recs, torn, nil
}

// Append assigns the next sequence to rec, writes its frame and fsyncs.
// The record is only acted on after Append returns nil — an intent that
// is not durable is an intent that never happened.
func (l *IntentLog) Append(rec *IntentRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.Seq = l.nextSeq
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("shard: encode intent %q: %w", rec.Txn, err)
	}
	if len(payload) > maxIntentBytes {
		return fmt.Errorf("shard: intent %q exceeds %d bytes", rec.Txn, maxIntentBytes)
	}
	// The intent frame layout is the journal's own (length + CRC32), so
	// the same bytes written here are shipped verbatim on the coordinator
	// replication stream and appended byte-identically by the standby.
	if _, err := l.f.Write(journal.EncodeRawFrame(payload)); err != nil {
		return fmt.Errorf("shard: append intent %q: %w", rec.Txn, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("shard: sync intent %q: %w", rec.Txn, err)
	}
	l.nextSeq++
	if l.shipper != nil {
		if err := l.shipper(rec.Seq, payload); err != nil {
			return fmt.Errorf("shard: intent %q durable locally but %w: %v", rec.Txn, ErrNotReplicated, err)
		}
	}
	return nil
}

// AppendShipped appends one replicated frame payload on a standby
// coordinator, preserving the primary's sequence. A payload at or below
// the local watermark is skipped (idempotent redelivery after a
// reconnect). Sequences may jump forward: the primary's ReserveSeq
// consumes sequence numbers for transaction names without writing a
// frame, and the stream is ordered per session, so a forward jump is a
// reserved-but-unwritten hole, not loss.
func (l *IntentLog) AppendShipped(seq uint64, payload []byte) error {
	var rec IntentRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("shard: shipped intent frame undecodable: %w", err)
	}
	if rec.Seq != seq {
		return fmt.Errorf("shard: shipped intent frame seq %d disagrees with envelope %d", rec.Seq, seq)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.nextSeq {
		return nil
	}
	if _, err := l.f.Write(journal.EncodeRawFrame(payload)); err != nil {
		return fmt.Errorf("shard: append shipped intent %d: %w", seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("shard: sync shipped intent %d: %w", seq, err)
	}
	l.nextSeq = seq + 1
	return nil
}

// LastSeq returns the highest sequence durable in the log (zero when
// empty) — the standby's hello watermark.
func (l *IntentLog) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// ReserveSeq claims the next sequence number under the lock and advances
// the counter, so concurrent callers always see distinct values; the
// coordinator derives transaction names from it so they stay unique
// across concurrent setups and restarts. A reserved sequence the crash
// never wrote is safe to re-issue after reopen: the transaction named
// from it sent nothing anywhere before its begin record was durable.
func (l *IntentLog) ReserveSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	l.nextSeq++
	return seq
}

// Close closes the underlying file.
func (l *IntentLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// openTxn is the folded state of one transaction after a log scan.
type openTxn struct {
	txn     string
	state   string // latest decision state: begin, commit or abort
	request *core.ConnRequest
	marks   []ShardMark // from the commit record when present, else begin
}

// foldIntents replays the log into the set of unresolved transactions, in
// first-seen order. A done record closes its transaction.
func foldIntents(recs []IntentRecord) []*openTxn {
	byTxn := make(map[string]*openTxn)
	var order []*openTxn
	for i := range recs {
		rec := &recs[i]
		switch rec.State {
		case IntentBegin:
			if _, dup := byTxn[rec.Txn]; dup {
				continue
			}
			t := &openTxn{txn: rec.Txn, state: IntentBegin, request: rec.Request, marks: rec.Shards}
			byTxn[rec.Txn] = t
			order = append(order, t)
		case IntentCommit, IntentAbort:
			if t, ok := byTxn[rec.Txn]; ok {
				t.state = rec.State
				if len(rec.Shards) > 0 {
					t.marks = rec.Shards
				}
			}
		case IntentDone:
			delete(byTxn, rec.Txn)
		}
	}
	open := order[:0]
	for _, t := range order {
		if _, still := byTxn[t.txn]; still {
			open = append(open, t)
		}
	}
	return open
}
