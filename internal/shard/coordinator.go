package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/overload"
	"atmcac/internal/wire"
)

// ErrInDoubt marks a transaction whose durable decision could not be
// driven to every shard before retries ran out. Nothing is lost: the
// decision sits in the intent log and Recover re-drives it. Match with
// errors.Is; the wire front end maps it to wire.CodeInDoubt.
var ErrInDoubt = errors.New("shard: transaction in doubt")

// ErrDelayBound marks a cross-shard setup refused by the coordinator's
// own end-to-end budget check before any shard saw a prepare: the
// upstream legs' guarantees already consumed the requested bound.
var ErrDelayBound = fmt.Errorf("%w: delay budget exhausted across shards", core.ErrRejected)

// ErrRevisitBound marks a cross-shard setup whose route re-enters a
// shard it already left (a ring wrap) without stating an end-to-end
// delay bound. The revisited shard's later hops sit downstream of legs
// prepared after it, so their incoming jitter cannot be accumulated leg
// by leg; the coordinator instead charges every leg the whole
// end-to-end bound — which the request must therefore state (cacctl
// setup -delay).
var ErrRevisitBound = fmt.Errorf("%w: a route revisiting a shard needs an explicit end-to-end delay bound", core.ErrRejected)

// ErrCoordFenced marks a coordinator that observed a higher coordinator
// term on a shard: another coordinator took over, so this one refuses
// all new work. The wire front end maps it to wire.CodeFenced.
var ErrCoordFenced = errors.New("shard: coordinator fenced by a higher term")

// endpoint is the coordinator's live view of one shard pair: which
// member address it currently drives, and the reconnect backoff that
// keeps a down shard from being hammered by every request.
type endpoint struct {
	active    string
	backoff   overload.Backoff
	notBefore time.Time
}

// errReconnectBackoff marks a dial suppressed by the per-shard backoff
// window; it is a transport-class error (retried, never definitive).
var errReconnectBackoff = errors.New("shard: reconnect backoff window open")

// backoffWindowError carries the window's remaining duration so the
// retry loop can sleep through it instead of burning its attempts
// inside it. Matches errReconnectBackoff via errors.Is.
type backoffWindowError struct {
	shard string
	wait  time.Duration
}

func (e *backoffWindowError) Error() string {
	return fmt.Sprintf("shard %s: %v for %s", e.shard, errReconnectBackoff, e.wait.Round(time.Millisecond))
}

func (e *backoffWindowError) Is(target error) bool { return target == errReconnectBackoff }

// Coordinator drives multi-hop setups across the shards of a Map
// through two-phase reserve-commit. One coordinator instance is safe
// for concurrent use; transactions are independent.
type Coordinator struct {
	m   *Map
	log *IntentLog

	// PrepareTTL bounds each prepared hold; a coordinator that dies
	// leaves holds the shards reap after this long. Defaults to
	// wire.DefaultPrepareTTL.
	PrepareTTL time.Duration
	// OpTimeout bounds each individual shard call. Defaults to 2s.
	OpTimeout time.Duration
	// Retries is how many times a failed shard call is retried (with
	// jittered exponential backoff) before giving up. Defaults to 3.
	Retries int

	// Dial opens a wire client; injectable for tests. nil means wire.Dial.
	Dial func(addr string) (*wire.Client, error)

	tracer obs.Tracer

	// epoch is the coordinator's term, read from the intent log's epoch
	// records at open (1 when none). Every shard operation is stamped
	// with it; shards ratchet the highest term seen and refuse lower
	// ones, which is how a superseded coordinator discovers it must
	// fence itself.
	epoch uint64

	mu     sync.Mutex
	fenced bool
	// pools holds one health-checked connection pool per shard, pinned
	// to the endpoint's active member; a failover swaps the whole pool.
	pools   map[string]*wire.Pool
	ends    map[string]*endpoint // shard ID -> live endpoint state
	lagReg  *obs.Registry        // set by RegisterMetrics; feeds standby-lag gauges
	open    []*openTxn           // unresolved transactions from the log scan
	inDoubt map[string]struct{}  // transactions awaiting Recover

	// hook, when set, runs at named protocol boundaries; returning an
	// error abandons the transaction mid-flight, simulating a
	// coordinator crash for the fault-injection harness.
	hook func(point, txn string) error
}

// NewCoordinator opens the intent log at logPath and returns a
// coordinator over m. Unresolved transactions found in the log are NOT
// driven here — call Recover before serving traffic.
func NewCoordinator(m *Map, fsys journal.FS, logPath string) (*Coordinator, error) {
	log, recs, _, err := OpenIntentLog(fsys, logPath)
	if err != nil {
		return nil, err
	}
	epoch := MaxIntentEpoch(recs)
	if epoch == 0 {
		epoch = 1
	}
	c := &Coordinator{
		m: m, log: log,
		PrepareTTL: wire.DefaultPrepareTTL,
		OpTimeout:  2 * time.Second,
		Retries:    3,
		epoch:      epoch,
		pools:      make(map[string]*wire.Pool),
		ends:       make(map[string]*endpoint),
		inDoubt:    make(map[string]struct{}),
		open:       foldIntents(recs),
	}
	for _, t := range c.open {
		c.inDoubt[t.txn] = struct{}{}
	}
	return c, nil
}

// SetTracer attaches the event sink.
func (c *Coordinator) SetTracer(tr obs.Tracer) { c.tracer = tr }

// Epoch returns the coordinator's term.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// IntentLog exposes the underlying decision log (the replication
// source for a standby coordinator).
func (c *Coordinator) IntentLog() *IntentLog { return c.log }

// Fence makes the coordinator refuse all new work: another coordinator
// was promoted at a higher term. One-way.
func (c *Coordinator) Fence() {
	c.mu.Lock()
	already := c.fenced
	c.fenced = true
	c.mu.Unlock()
	if !already && c.tracer != nil {
		c.tracer.Trace(obs.Event{Kind: obs.KindFence, Epoch: c.epoch})
	}
}

// Fenced reports whether the coordinator has fenced itself.
func (c *Coordinator) Fenced() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fenced
}

// RegisterMetrics exposes the coordinator's live gauges on reg: the
// number of in-doubt transactions outstanding, the coordinator term,
// and (updated by Status) each shard pair's standby replication lag.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	c.mu.Lock()
	c.lagReg = reg
	c.mu.Unlock()
	reg.GaugeFunc("atmcac_shard_indoubt_outstanding", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.inDoubt))
	})
	reg.Help("atmcac_shard_indoubt_outstanding", "In-doubt cross-shard transactions awaiting Recover.")
	reg.GaugeFunc("atmcac_coord_epoch", func() float64 { return float64(c.epoch) })
	reg.Help("atmcac_coord_epoch", "Coordinator replication term.")
	reg.Help("atmcac_shard_standby_lag_records", "Per shard pair: records shipped to but not yet acknowledged by the shard's standby, as of the last status poll.")
}

// SetTestHook installs the crash-boundary hook (fault injection only).
func (c *Coordinator) SetTestHook(h func(point, txn string) error) { c.hook = h }

// Map returns the coordinator's shard map.
func (c *Coordinator) Map() *Map { return c.m }

// InDoubt lists the transactions with a durable intent not yet driven to
// every shard, oldest first.
func (c *Coordinator) InDoubt() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.inDoubt))
	for _, t := range c.open {
		if _, ok := c.inDoubt[t.txn]; ok {
			out = append(out, t.txn)
		}
	}
	return out
}

// Close closes the shard connection pools and the intent log.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	for id, p := range c.pools {
		p.Close()
		delete(c.pools, id)
	}
	c.mu.Unlock()
	return c.log.Close()
}

// endpointLocked returns (creating on first use) the live endpoint state
// for a shard. Caller holds c.mu.
func (c *Coordinator) endpointLocked(info Info) *endpoint {
	ep, ok := c.ends[info.ID]
	if !ok {
		ep = &endpoint{active: info.Addr}
		c.ends[info.ID] = ep
	}
	return ep
}

// dialer returns the injectable dial function.
func (c *Coordinator) dialer() func(string) (*wire.Client, error) {
	if c.Dial != nil {
		return c.Dial
	}
	return wire.Dial
}

// opTimeout returns the per-call timeout, defaulted.
func (c *Coordinator) opTimeout() time.Duration {
	if c.OpTimeout > 0 {
		return c.OpTimeout
	}
	return 2 * time.Second
}

// probeStatus dials addr and fetches its shard status report, abandoning
// the whole attempt — goroutine, dial and all — once the op timeout (or
// ctx) lapses. The injected dialer has no deadline of its own, so a
// blackholed address would otherwise stall the caller for the OS connect
// timeout; here it just reports unreachable.
func (c *Coordinator) probeStatus(ctx context.Context, addr string) (*wire.ShardStatusReport, bool) {
	pctx, cancel := context.WithTimeout(ctx, c.opTimeout())
	defer cancel()
	ch := make(chan *wire.ShardStatusReport, 1)
	go func() {
		var rep *wire.ShardStatusReport
		if cl, err := c.dialer()(addr); err == nil {
			if r, serr := cl.ShardStatus(pctx); serr == nil {
				rep = r
			}
			_ = cl.Close()
		}
		ch <- rep
	}()
	select {
	case rep := <-ch:
		return rep, rep != nil
	case <-pctx.Done():
		return nil, false
	}
}

// newPool builds the health-checked pool for a shard, pinned to addr.
// Its dial wrapper stamps the coordinator term on every new connection
// and drives the endpoint's reconnect backoff: a failed dial opens the
// jittered window (so a down shard is not hammered by every request),
// its gate suppresses dials inside the window (errReconnectBackoff,
// transport-class — reusing a pooled connection is always allowed), and
// a successful dial clears it.
func (c *Coordinator) newPool(info Info, addr string) *wire.Pool {
	return wire.NewPool(wire.PoolConfig{
		Addr: addr,
		DialGate: func() error {
			c.mu.Lock()
			defer c.mu.Unlock()
			ep := c.endpointLocked(info)
			if wait := time.Until(ep.notBefore); wait > 0 {
				return &backoffWindowError{shard: info.ID, wait: wait}
			}
			return nil
		},
		Dial: func(a string) (*wire.Client, error) {
			cl, err := c.dialer()(a)
			if err != nil {
				c.mu.Lock()
				ep := c.endpointLocked(info)
				ep.notBefore = time.Now().Add(ep.backoff.Next(0))
				c.mu.Unlock()
				return nil, fmt.Errorf("shard %s: dial %s: %w", info.ID, a, err)
			}
			cl.SetShardCoordEpoch(c.epoch)
			c.mu.Lock()
			ep := c.endpointLocked(info)
			ep.backoff = overload.Backoff{}
			ep.notBefore = time.Time{}
			c.mu.Unlock()
			return cl, nil
		},
	})
}

// pool returns (creating on first use) the connection pool for a
// shard's active member.
func (c *Coordinator) pool(info Info) *wire.Pool {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pools[info.ID]
	if !ok {
		ep := c.endpointLocked(info)
		p = c.newPool(info, ep.active)
		c.pools[info.ID] = p
	}
	return p
}

// dropPool closes a shard's pool after a transport error so the next
// attempt re-dials (possibly at a failed-over address).
func (c *Coordinator) dropPool(info Info) {
	c.mu.Lock()
	if p, ok := c.pools[info.ID]; ok {
		p.Close()
		delete(c.pools, info.ID)
	}
	c.mu.Unlock()
}

// failover re-points a shard pair at its surviving member after the
// active one stopped answering: it probes the other member, promotes it
// if it is still a standby (the promotion bumps the shard epoch, so the
// existing stale-prepare fencing shuts the old primary's holds out),
// and swaps the cached client. The old primary needs no message from
// here — when it reconnects to the replication stream or a client, the
// higher epoch it observes fences it. Returns true when the pool now
// points at a live promoted member.
//
// A transport error alone does not prove the active member is dead — it
// may merely be slow, or the failed call's per-attempt timeout too
// tight. Promotion fences every prepared hold on the old primary, so
// before promoting anything the current active is probed once more: a
// member that still answers as a live primary is left alone (the caller
// re-dials it instead), and only one that fails the probe is failed
// over.
func (c *Coordinator) failover(info Info) bool {
	if info.Standby == "" {
		return false
	}
	c.mu.Lock()
	ep := c.endpointLocked(info)
	cur := ep.active
	c.mu.Unlock()
	if rep, ok := c.probeStatus(context.Background(), cur); ok && rep.Role == "primary" {
		return false
	}
	cand := info.Standby
	if cur == info.Standby {
		cand = info.Addr
	}
	cl, err := c.dialer()(cand)
	if err != nil {
		return false
	}
	fctx, cancel := context.WithTimeout(context.Background(), c.opTimeout())
	defer cancel()
	rep, err := cl.Replication(fctx)
	if err != nil || rep.Role == "fenced" {
		_ = cl.Close()
		return false
	}
	if rep.Role == "standby" {
		if rep, err = cl.Promote(fctx); err != nil {
			_ = cl.Close()
			return false
		}
	}
	cl.SetShardCoordEpoch(c.epoch)
	// Swap the whole pool: every parked connection points at the old
	// member, and the promotion fenced its holds anyway. The promoted
	// member's probe connection seeds the fresh pool.
	c.mu.Lock()
	old := c.pools[info.ID]
	ep.active = cand
	ep.backoff = overload.Backoff{}
	ep.notBefore = time.Time{}
	np := c.newPool(info, cand)
	c.pools[info.ID] = np
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	np.Put(cl)
	if c.tracer != nil {
		c.tracer.Trace(obs.Event{
			Kind: obs.KindShardFailover, Op: info.ID, Outcome: obs.OutcomeOK, Epoch: rep.Epoch,
		})
	}
	return true
}

// ActiveAddr returns the member address the pool currently drives for a
// shard (the primary until a failover re-points it).
func (c *Coordinator) ActiveAddr(shardID string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ep, ok := c.ends[shardID]; ok {
		return ep.active
	}
	if info, ok := c.m.Lookup(shardID); ok {
		return info.Addr
	}
	return ""
}

// ResetEndpoint points a shard's pool entry back at addr and clears its
// backoff — a test and benchmark hook for exercising the failover path
// repeatedly.
func (c *Coordinator) ResetEndpoint(shardID, addr string) {
	info, ok := c.m.Lookup(shardID)
	if !ok {
		return
	}
	c.dropPool(info)
	c.mu.Lock()
	ep := c.endpointLocked(info)
	ep.active = addr
	ep.backoff = overload.Backoff{}
	ep.notBefore = time.Time{}
	c.mu.Unlock()
}

// call runs one shard operation with per-attempt timeout and bounded
// jittered retry, checking a connection out of the shard's pool for the
// duration. A typed server answer (RemoteError) is definitive and never
// retried — and proves the connection healthy, so it goes back to the
// pool; a transport error discards it instead.
func (c *Coordinator) call(ctx context.Context, info Info, op string, fn func(ctx context.Context, cl *wire.Client) error) error {
	var b overload.Backoff
	for attempt := 0; ; attempt++ {
		p := c.pool(info)
		cl, err := p.Get(ctx)
		if err == nil {
			opCtx, cancel := ctx, context.CancelFunc(nil)
			if c.OpTimeout > 0 {
				opCtx, cancel = context.WithTimeout(ctx, c.OpTimeout)
			}
			err = fn(opCtx, cl)
			if cancel != nil {
				cancel()
			}
			var re *wire.RemoteError
			var oe *wire.OverloadError
			if err == nil || errors.As(err, &re) || errors.As(err, &oe) {
				p.Put(cl) // the server answered; the connection is healthy
			} else {
				p.Discard(cl)
			}
		}
		if err == nil {
			return nil
		}
		var re *wire.RemoteError
		if errors.As(err, &re) {
			if re.Code == wire.CodeStaleCoordinator {
				// The shard has seen a higher coordinator term: another
				// coordinator took over. Stop driving anything.
				c.Fence()
				return fmt.Errorf("%w: shard %s: %s: %v", ErrCoordFenced, info.ID, op, err)
			}
			return err
		}
		var retryAfter time.Duration
		var oe *wire.OverloadError
		var bw *backoffWindowError
		failedOver := false
		if errors.As(err, &oe) {
			retryAfter = oe.RetryAfter
		} else if errors.As(err, &bw) {
			// Sleep through the remaining reconnect window: the attempt
			// budget must buy actual dials, not spins inside the window.
			retryAfter = bw.wait
		} else {
			// Transport error, not a definitive refusal: the active member
			// may be dead. Drop the pool and, for a replicated pair, try
			// the other member — promoting it if it is still a standby —
			// so in-flight transactions finish on the survivor.
			c.dropPool(info)
			if ctx.Err() != nil {
				// The caller canceled or its deadline lapsed; that says
				// nothing about the member's health, and promoting the
				// standby of a live primary would fence every prepared
				// hold on it. Stop without touching the pair.
				return fmt.Errorf("shard %s: %s: %w", info.ID, op, ctx.Err())
			}
			failedOver = c.failover(info)
		}
		if attempt >= c.Retries {
			return fmt.Errorf("shard %s: %s: retries exhausted: %w", info.ID, op, err)
		}
		if failedOver {
			continue // the pool points at a live member; retry immediately
		}
		if serr := overload.Sleep(ctx, b.Next(retryAfter)); serr != nil {
			return fmt.Errorf("shard %s: %s: %w", info.ID, op, serr)
		}
	}
}

// runHook fires the fault-injection boundary, if installed.
func (c *Coordinator) runHook(point, txn string) error {
	if c.hook == nil {
		return nil
	}
	return c.hook(point, txn)
}

// subRequest derives one leg's shard request. On a chain route (every
// shard's hops contiguous in path order) a leg's SourceCDV carries the
// worst-case delay variation accumulated upstream: the sum of the
// guaranteed delays of the legs prepared before it — a conservative
// over-estimate of any accumulation policy. On an interleaved route (a
// shard revisited after the path left it) part of a merged leg sits
// downstream of legs prepared later, whose guarantees are unknown at
// prepare time; there every leg is charged the whole end-to-end bound
// instead — sound because the remaining-budget checks refuse any
// admission whose accumulated guarantees exceed that bound, so no hop's
// true upstream jitter can. Either way DelayBound is the remaining
// end-to-end budget.
func subRequest(req core.ConnRequest, leg Segment, upstream float64, interleaved bool) (core.ConnRequest, error) {
	sub := req
	sub.Route = leg.Route
	sub.SourceCDV = req.SourceCDV + upstream
	if interleaved {
		if req.DelayBound <= 0 {
			return sub, ErrRevisitBound
		}
		sub.SourceCDV = req.SourceCDV + req.DelayBound
	}
	if req.DelayBound > 0 {
		remaining := req.DelayBound - upstream
		if remaining <= 0 {
			return sub, ErrDelayBound
		}
		sub.DelayBound = remaining
	}
	return sub, nil
}

// Setup admits req. A route owned by a single shard is forwarded as an
// ordinary setup; a cross-shard route runs the full two-phase protocol
// over its per-shard legs. An interleaved route (a ring wrap revisiting
// a shard) needs an end-to-end delay bound — refused up front, before
// any begin record or prepare.
func (c *Coordinator) Setup(ctx context.Context, req core.ConnRequest) (*wire.Admission, error) {
	if c.Fenced() {
		return nil, fmt.Errorf("%w: refusing setup %q", ErrCoordFenced, req.ID)
	}
	legs, interleaved, err := c.m.Legs(req.Route)
	if err != nil {
		return nil, err
	}
	if len(legs) == 1 {
		var adm *wire.Admission
		err := c.call(ctx, legs[0].Shard, wire.OpSetup, func(ctx context.Context, cl *wire.Client) error {
			var serr error
			adm, serr = cl.Setup(ctx, req)
			return serr
		})
		return adm, err
	}
	if interleaved && req.DelayBound <= 0 {
		return nil, fmt.Errorf("%w (connection %q)", ErrRevisitBound, req.ID)
	}
	return c.setupCrossShard(ctx, req, legs, interleaved)
}

func (c *Coordinator) traceTxn(kind obs.Kind, txn string, conn core.ConnID, outcome, code string, start time.Time) {
	if c.tracer != nil {
		c.tracer.Trace(obs.Event{
			Kind: kind, Conn: string(conn), Op: txn, Outcome: outcome, Code: code,
			Duration: time.Since(start),
		})
	}
}

func (c *Coordinator) setupCrossShard(ctx context.Context, req core.ConnRequest, legs []Segment, interleaved bool) (*wire.Admission, error) {
	start := time.Now()
	txn := fmt.Sprintf("x%d-%s", c.log.ReserveSeq(), req.ID)
	marks := make([]ShardMark, len(legs))
	for i := range legs {
		marks[i] = ShardMark{Shard: legs[i].Shard.ID}
	}
	if err := c.log.Append(&IntentRecord{State: IntentBegin, Txn: txn, Request: &req, Shards: marks}); err != nil {
		return nil, err
	}
	if err := c.runHook("pre-prepare", txn); err != nil {
		return nil, err
	}

	// Phase 1: prepares. A chain route threads the accumulated
	// guaranteed delay into each downstream leg's SourceCDV and
	// remaining bound, so its prepares are inherently sequential. An
	// interleaved route already charges every leg the whole end-to-end
	// bound (see subRequest) — no leg depends on another's answer, so
	// its prepares fan out concurrently and the end-to-end budget is
	// enforced afterwards by summing the guarantees the shards answered
	// with.
	subs := make([]core.ConnRequest, len(legs))
	reps := make([]*wire.PrepareReport, len(legs))
	adm := &wire.Admission{ID: req.ID}
	if interleaved {
		// Every leg's sub-request derives from upstream 0: the full
		// bound remains at each shard. DelayBound > 0 was checked before
		// the begin record, so subRequest cannot fail here.
		for i, leg := range legs {
			sub, err := subRequest(req, leg, 0, true)
			if err != nil {
				c.abortTxn(ctx, txn, req, legs[:i], subs[:i])
				c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeRejected, core.CodeDelayBound, start)
				return nil, fmt.Errorf("%w (connection %q at shard %s)", err, req.ID, leg.Shard.ID)
			}
			subs[i] = sub
		}
		errs := make([]error, len(legs))
		var wg sync.WaitGroup
		for i := range legs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = c.call(ctx, legs[i].Shard, wire.OpShardPrepare, func(ctx context.Context, cl *wire.Client) error {
					var perr error
					reps[i], perr = cl.ShardPrepare(ctx, txn, subs[i], c.PrepareTTL)
					return perr
				})
			}(i)
		}
		wg.Wait()
		for i, leg := range legs {
			if errs[i] != nil {
				// Some sibling prepares may have landed; shard-abort is
				// idempotent, so abort every leg.
				c.abortTxn(ctx, txn, req, legs, subs)
				c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeRejected, core.ErrorCode(errs[i]), start)
				return nil, fmt.Errorf("shard %s refused prepare for %q: %w", leg.Shard.ID, req.ID, errs[i])
			}
		}
		total := 0.0
		for i := range legs {
			total += reps[i].Admission.EndToEndGuaranteed
		}
		if total > req.DelayBound {
			c.abortTxn(ctx, txn, req, legs, subs)
			c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeRejected, core.CodeDelayBound, start)
			return nil, fmt.Errorf("%w (connection %q: guaranteed %.4g over bound %.4g)",
				ErrDelayBound, req.ID, total, req.DelayBound)
		}
	} else {
		upstream := 0.0
		for i, leg := range legs {
			sub, err := subRequest(req, leg, upstream, false)
			if err != nil {
				c.abortTxn(ctx, txn, req, legs[:i], subs[:i])
				c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeRejected, core.CodeDelayBound, start)
				return nil, fmt.Errorf("%w (connection %q at shard %s)", err, req.ID, leg.Shard.ID)
			}
			subs[i] = sub
			err = c.call(ctx, leg.Shard, wire.OpShardPrepare, func(ctx context.Context, cl *wire.Client) error {
				var perr error
				reps[i], perr = cl.ShardPrepare(ctx, txn, subs[i], c.PrepareTTL)
				return perr
			})
			if err != nil {
				c.abortTxn(ctx, txn, req, legs[:i], subs[:i])
				c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeRejected, core.ErrorCode(err), start)
				return nil, fmt.Errorf("shard %s refused prepare for %q: %w", leg.Shard.ID, req.ID, err)
			}
			upstream += reps[i].Admission.EndToEndGuaranteed
		}
	}
	for i := range legs {
		marks[i].Epoch = reps[i].Epoch
		adm.PerHopGuaranteed = append(adm.PerHopGuaranteed, reps[i].Admission.PerHopGuaranteed...)
		adm.PerHopComputed = append(adm.PerHopComputed, reps[i].Admission.PerHopComputed...)
		adm.EndToEndComputed += reps[i].Admission.EndToEndComputed
		adm.EndToEndGuaranteed += reps[i].Admission.EndToEndGuaranteed
	}
	if err := c.runHook("post-prepare", txn); err != nil {
		return nil, err
	}

	// The decision point: the commit intent (with the prepare epochs) is
	// durable before any shard hears "commit".
	if err := c.runHook("pre-commit", txn); err != nil {
		return nil, err
	}
	if err := c.log.Append(&IntentRecord{State: IntentCommit, Txn: txn, Shards: marks}); err != nil {
		if errors.Is(err, ErrNotReplicated) {
			// The commit record is durable here and possibly in the
			// standby's log too — only the ack was lost. Flipping to abort
			// would diverge: a standby that promotes reads a log ending in
			// this commit and re-drives it, re-admitting a connection whose
			// shards we just aborted. Leave the transaction in doubt
			// instead; whichever coordinator survives resolves it through
			// Recover from its own durable decision.
			c.markInDoubt(txn, IntentCommit, req, marks)
			c.traceTxn(obs.KindInDoubt, txn, req.ID, obs.OutcomeError, wire.CodeInDoubt, start)
			return nil, fmt.Errorf("%w: commit intent for %q durable but unreplicated: %v", ErrInDoubt, txn, err)
		}
		// Not durable anywhere: the commit never happened, presumed abort.
		c.abortTxn(ctx, txn, req, legs, subs)
		return nil, fmt.Errorf("commit intent for %q not durable: %w", txn, err)
	}

	// Phase 2: drive the commit everywhere.
	for i, leg := range legs {
		err := c.call(ctx, leg.Shard, wire.OpShardCommit, func(ctx context.Context, cl *wire.Client) error {
			_, _, cerr := cl.ShardCommit(ctx, txn, subs[i], marks[i].Epoch)
			return cerr
		})
		if err != nil {
			var re *wire.RemoteError
			if errors.As(err, &re) {
				// A definitive refusal (hold expired and capacity gone, or
				// a fenced prepare). The client was never acked, so flip
				// the decision: abort everywhere, unwinding the shards
				// that already committed.
				c.abortTxn(ctx, txn, req, legs, subs)
				c.traceTxn(obs.KindShardAbort, txn, req.ID, obs.OutcomeError, re.Code, start)
				return nil, fmt.Errorf("commit of %q flipped to abort: %w", txn, err)
			}
			// Transport failure with retries exhausted: the commit stands
			// (it is durable) but did not reach every shard — in doubt
			// until Recover re-drives it.
			c.markInDoubt(txn, IntentCommit, req, marks)
			c.traceTxn(obs.KindInDoubt, txn, req.ID, obs.OutcomeError, wire.CodeInDoubt, start)
			return nil, fmt.Errorf("%w: %q commit durable but undelivered to shard %s: %v",
				ErrInDoubt, txn, leg.Shard.ID, err)
		}
		if i == 0 {
			if err := c.runHook("mid-commit", txn); err != nil {
				c.markInDoubt(txn, IntentCommit, req, marks)
				return nil, err
			}
		}
	}
	if err := c.runHook("post-commit", txn); err != nil {
		c.markInDoubt(txn, IntentCommit, req, marks)
		return nil, err
	}
	// done is an optimization: losing it only costs an idempotent
	// re-drive on the next recovery.
	_ = c.log.Append(&IntentRecord{State: IntentDone, Txn: txn})
	c.traceTxn(obs.KindShardCommit, txn, req.ID, obs.OutcomeOK, "", start)
	return adm, nil
}

// abortTxn makes the abort decision durable (best effort — presumed
// abort means a lost abort record recovers identically) and drives it to
// the given shards, unwinding prepares and commits alike. segs may be
// longer than subs (the flip can happen before every leg's sub-request
// was derived); the abort for such a leg only needs the fields the
// shard's equivalence check reads — ID, priority and the leg's route —
// so they are derived from the original request. Shards it cannot reach
// leave the transaction in doubt for Recover; it reports whether every
// shard acknowledged.
func (c *Coordinator) abortTxn(ctx context.Context, txn string, req core.ConnRequest, segs []Segment, subs []core.ConnRequest) bool {
	_ = c.log.Append(&IntentRecord{State: IntentAbort, Txn: txn})
	allOK := true
	for i, seg := range segs {
		sub := req
		sub.Route = seg.Route
		if i < len(subs) {
			sub = subs[i]
		}
		err := c.call(ctx, seg.Shard, wire.OpShardAbort, func(ctx context.Context, cl *wire.Client) error {
			return cl.ShardAbort(ctx, txn, &sub)
		})
		if err != nil {
			allOK = false
		}
	}
	if allOK {
		_ = c.log.Append(&IntentRecord{State: IntentDone, Txn: txn})
	} else {
		var marks []ShardMark
		for _, seg := range segs {
			marks = append(marks, ShardMark{Shard: seg.Shard.ID})
		}
		c.markInDoubt(txn, IntentAbort, req, marks)
	}
	return allOK
}

// markInDoubt records an unresolved transaction for Recover. state is
// the durable decision (IntentCommit or IntentAbort) so a same-process
// Recover drives the same direction a restarted one would read from the
// log — in particular a commit that flipped to abort must not be
// re-driven as a commit.
func (c *Coordinator) markInDoubt(txn, state string, req core.ConnRequest, marks []ShardMark) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inDoubt[txn] = struct{}{}
	for _, t := range c.open {
		if t.txn == txn {
			t.state = state
			return
		}
	}
	// State is re-derived from the log on a restart; this in-memory entry
	// only feeds a same-process Recover call.
	c.open = append(c.open, &openTxn{txn: txn, state: state, request: &req, marks: marks})
}

// RecoverReport summarizes intent-log resolution.
type RecoverReport struct {
	// Committed transactions had a durable commit intent re-driven to
	// every shard.
	Committed []string
	// Aborted transactions were released everywhere: begins with no
	// decision (presumed abort), durable aborts, and commits flipped
	// because a shard's hold expired and its capacity was gone.
	Aborted []string
	// InDoubt transactions still have an unreachable shard; call Recover
	// again once it returns.
	InDoubt []string
}

// Recover resolves every unresolved transaction in the intent log: a
// begin with no decision aborts everywhere (presumed abort), a commit
// with no done is re-driven (idempotently — shards answer "commit
// already applied"), an abort with no done is re-driven. It must run
// before the coordinator serves new setups after a restart.
func (c *Coordinator) Recover(ctx context.Context) (*RecoverReport, error) {
	c.mu.Lock()
	pending := make([]*openTxn, len(c.open))
	copy(pending, c.open)
	c.mu.Unlock()
	rep := &RecoverReport{}
	for _, t := range pending {
		if t.request == nil {
			// A decision record with no surviving begin (should not
			// happen: begin is appended first and the log replays in
			// order). Nothing can be driven without the request.
			rep.InDoubt = append(rep.InDoubt, t.txn)
			continue
		}
		legs, interleaved, err := c.m.Legs(t.request.Route)
		if err != nil {
			return rep, fmt.Errorf("recover %q: %w", t.txn, err)
		}
		// The state can flip under c.mu (a concurrent abort marking the
		// transaction in doubt), so read it under the lock.
		c.mu.Lock()
		state := t.state
		c.mu.Unlock()
		switch state {
		case IntentCommit:
			ok, flipped, err := c.redriveCommit(ctx, t, legs, interleaved)
			switch {
			case err != nil:
				rep.InDoubt = append(rep.InDoubt, t.txn)
				continue
			case flipped:
				rep.Aborted = append(rep.Aborted, t.txn)
			case ok:
				rep.Committed = append(rep.Committed, t.txn)
			}
		default: // begin (presumed abort) or an explicit abort
			if !c.redriveAbort(ctx, t, legs) {
				rep.InDoubt = append(rep.InDoubt, t.txn)
				continue
			}
			rep.Aborted = append(rep.Aborted, t.txn)
		}
		c.resolve(t.txn)
	}
	return rep, nil
}

// resolve drops a transaction from the unresolved set.
func (c *Coordinator) resolve(txn string) {
	c.mu.Lock()
	delete(c.inDoubt, txn)
	for i, t := range c.open {
		if t.txn == txn {
			c.open = append(c.open[:i], c.open[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// epochFor returns the recorded prepare epoch for a shard, zero if none.
func epochFor(marks []ShardMark, shardID string) uint64 {
	for _, m := range marks {
		if m.Shard == shardID {
			return m.Epoch
		}
	}
	return 0
}

// redriveCommit pushes a durable commit decision to every shard,
// re-deriving each leg's delay budget from the admissions the shards
// answer with. A definitive refusal (expired hold, fenced prepare)
// flips the transaction to abort-everywhere — safe because the client
// was never acked. A transport failure leaves it in doubt.
func (c *Coordinator) redriveCommit(ctx context.Context, t *openTxn, legs []Segment, interleaved bool) (ok, flipped bool, err error) {
	req := *t.request
	upstream := make([]float64, len(legs)+1)
	subs := make([]core.ConnRequest, len(legs))
	for i, leg := range legs {
		sub, serr := subRequest(req, leg, upstream[i], interleaved)
		if serr != nil {
			if !c.abortTxn(ctx, t.txn, req, legs, subs[:i]) {
				return false, false, fmt.Errorf("%w: abort of flipped %q undelivered", ErrInDoubt, t.txn)
			}
			return false, true, nil
		}
		subs[i] = sub
		var adm *wire.Admission
		cerr := c.call(ctx, leg.Shard, wire.OpShardCommit, func(ctx context.Context, cl *wire.Client) error {
			var e error
			adm, _, e = cl.ShardCommit(ctx, t.txn, subs[i], epochFor(t.marks, leg.Shard.ID))
			return e
		})
		if cerr != nil {
			var re *wire.RemoteError
			if errors.As(cerr, &re) {
				if !c.abortTxn(ctx, t.txn, req, legs, subs[:i+1]) {
					return false, false, fmt.Errorf("%w: abort of flipped %q undelivered", ErrInDoubt, t.txn)
				}
				return false, true, nil
			}
			return false, false, cerr
		}
		guaranteed := 0.0
		if adm != nil {
			guaranteed = adm.EndToEndGuaranteed
		}
		upstream[i+1] = upstream[i] + guaranteed
	}
	_ = c.log.Append(&IntentRecord{State: IntentDone, Txn: t.txn})
	return true, false, nil
}

// redriveAbort pushes an abort decision to every shard; it reports
// whether all of them acknowledged.
func (c *Coordinator) redriveAbort(ctx context.Context, t *openTxn, segs []Segment) bool {
	req := *t.request
	allOK := true
	for _, seg := range segs {
		sub := req
		sub.Route = seg.Route
		err := c.call(ctx, seg.Shard, wire.OpShardAbort, func(ctx context.Context, cl *wire.Client) error {
			return cl.ShardAbort(ctx, t.txn, &sub)
		})
		if err != nil {
			allOK = false
		}
	}
	if allOK {
		_ = c.log.Append(&IntentRecord{State: IntentAbort, Txn: t.txn})
		_ = c.log.Append(&IntentRecord{State: IntentDone, Txn: t.txn})
	}
	return allOK
}

// Teardown releases a connection on every shard that carries a segment
// of it. Without the route at hand it broadcasts — concurrently, since
// the shards are independent — tolerating shards that never saw the
// connection.
func (c *Coordinator) Teardown(ctx context.Context, id core.ConnID) error {
	if c.Fenced() {
		return fmt.Errorf("%w: refusing teardown %q", ErrCoordFenced, id)
	}
	shards := c.m.Shards()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.call(ctx, shards[i], wire.OpTeardown, func(ctx context.Context, cl *wire.Client) error {
				return cl.Teardown(ctx, id)
			})
		}(i)
	}
	wg.Wait()
	found := false
	for i, info := range shards {
		switch err := errs[i]; {
		case err == nil:
			found = true
		default:
			var re *wire.RemoteError
			if errors.As(err, &re) && re.Code == core.CodeUnknownConn {
				continue
			}
			return fmt.Errorf("teardown %q on shard %s: %w", id, info.ID, err)
		}
	}
	if !found {
		return fmt.Errorf("%w: connection %q on no shard", core.ErrUnknownConn, id)
	}
	return nil
}

// List returns the union of the shards' admitted connections (a
// cross-shard connection appears once).
func (c *Coordinator) List(ctx context.Context) ([]core.ConnID, error) {
	seen := make(map[core.ConnID]struct{})
	var out []core.ConnID
	for _, info := range c.m.Shards() {
		var ids []core.ConnID
		err := c.call(ctx, info, wire.OpList, func(ctx context.Context, cl *wire.Client) error {
			var lerr error
			ids, lerr = cl.List(ctx)
			return lerr
		})
		if err != nil {
			return nil, fmt.Errorf("list on shard %s: %w", info.ID, err)
		}
		for _, id := range ids {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out, nil
}

// Status collects every shard's status report, in map order. For a
// replicated pair the report carries both members: the active member's
// role, epoch and holds, plus the other member's role and epoch probed
// best-effort (an unreachable peer reports role "unreachable" rather
// than failing the whole status). The active member's replication lag —
// records shipped to but not acknowledged by its standby — is included
// and, when RegisterMetrics was called, published as a per-shard gauge.
func (c *Coordinator) Status(ctx context.Context) ([]wire.ShardStatusReport, error) {
	out := make([]wire.ShardStatusReport, 0, len(c.m.shards))
	for _, info := range c.m.Shards() {
		var st *wire.ShardStatusReport
		err := c.call(ctx, info, wire.OpShardStatus, func(ctx context.Context, cl *wire.Client) error {
			var serr error
			st, serr = cl.ShardStatus(ctx)
			return serr
		})
		if err != nil {
			return nil, fmt.Errorf("status on shard %s: %w", info.ID, err)
		}
		if st.ShardID == "" {
			st.ShardID = info.ID
		}
		c.mu.Lock()
		st.Addr = c.endpointLocked(info).active
		reg := c.lagReg
		c.mu.Unlock()
		if info.Standby != "" {
			_ = c.call(ctx, info, wire.OpReplication, func(ctx context.Context, cl *wire.Client) error {
				rep, rerr := cl.Replication(ctx)
				if rerr == nil && rep.Role == "primary" {
					st.StandbyLag = rep.Lag
					if reg != nil {
						reg.Gauge("atmcac_shard_standby_lag_records", obs.L("shard", info.ID)).Set(float64(rep.Lag))
					}
				}
				return rerr
			})
			peer := info.Standby
			if st.Addr == info.Standby {
				peer = info.Addr
			}
			st.PeerAddr = peer
			st.PeerRole = "unreachable"
			if prep, ok := c.probeStatus(ctx, peer); ok {
				st.PeerRole = prep.Role
				st.PeerEpoch = prep.Epoch
			}
		}
		out = append(out, *st)
	}
	return out, nil
}

// SelfStatus reports the coordinator's own identity: its term, fencing
// state and the number of in-doubt transactions outstanding.
func (c *Coordinator) SelfStatus() wire.ShardStatusReport {
	role := "coordinator"
	if c.Fenced() {
		role = "fenced"
	}
	return wire.ShardStatusReport{
		ShardID:    "coordinator",
		Role:       role,
		Epoch:      c.epoch,
		CoordEpoch: c.epoch,
		InDoubt:    len(c.InDoubt()),
	}
}
