package shard

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// encodeIntentFrame mirrors IntentLog.Append's framing for seeds.
func encodeIntentFrame(t testing.TB, rec IntentRecord) []byte {
	t.Helper()
	payload, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, intentHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[intentHeaderLen:], payload)
	return frame
}

// FuzzShardPrepareDecode hammers the intent-frame scanner — the code
// that decides, after a coordinator crash, which prepares are still in
// flight. It must never panic, never read past the data, and always
// satisfy the prefix property: re-scanning the valid prefix yields the
// same records with no torn tail.
func FuzzShardPrepareDecode(f *testing.F) {
	req := &core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1,
		Route: core.Route{{Switch: "sw0", In: 1, Out: 0}}}
	begin := encodeIntentFrame(f, IntentRecord{Seq: 1, State: IntentBegin, Txn: "x1-c1",
		Request: req, Shards: []ShardMark{{Shard: "s0"}, {Shard: "s1"}}})
	commit := encodeIntentFrame(f, IntentRecord{Seq: 2, State: IntentCommit, Txn: "x1-c1",
		Shards: []ShardMark{{Shard: "s0", Epoch: 3}}})
	done := encodeIntentFrame(f, IntentRecord{Seq: 3, State: IntentDone, Txn: "x1-c1"})
	full := append(append(append([]byte{}, begin...), commit...), done...)
	f.Add([]byte{})
	f.Add(full)
	f.Add(full[:len(full)-1])             // torn tail
	f.Add(full[:len(begin)+3])            // torn mid-frame
	f.Add(append(full, 0xff, 0x00, 0x01)) // garbage suffix
	corrupted := append([]byte{}, full...)
	corrupted[len(begin)+9] ^= 0x40 // flip a payload bit: CRC must catch it
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, torn := ScanIntentFrames(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of [0, %d]", valid, len(data))
		}
		if torn == (valid == int64(len(data))) && len(data) > 0 {
			// torn iff the scan stopped short of the end.
			t.Fatalf("torn=%v but valid=%d of %d", torn, valid, len(data))
		}
		again, validAgain, tornAgain := ScanIntentFrames(data[:valid])
		if tornAgain || validAgain != valid || len(again) != len(recs) {
			t.Fatalf("valid prefix not stable: %d/%v vs %d/%v", validAgain, tornAgain, valid, torn)
		}
		a, err1 := json.Marshal(again)
		b, err2 := json.Marshal(recs)
		if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
			t.Fatal("re-scan of the valid prefix decoded different records")
		}
		// Folding whatever decoded must not panic either.
		_ = foldIntents(recs)
	})
}

// TestScanIntentFramesEmptyAndExact anchors the fuzz invariants on known
// inputs (the fuzz target itself only runs its corpus in -run mode).
func TestScanIntentFramesEmptyAndExact(t *testing.T) {
	if recs, valid, torn := ScanIntentFrames(nil); len(recs) != 0 || valid != 0 || torn {
		t.Fatalf("nil scan: %v %d %v", recs, valid, torn)
	}
	frame := encodeIntentFrame(t, IntentRecord{Seq: 1, State: IntentBegin, Txn: "t"})
	recs, valid, torn := ScanIntentFrames(frame)
	if len(recs) != 1 || valid != int64(len(frame)) || torn {
		t.Fatalf("exact scan: %v %d %v", recs, valid, torn)
	}
	if !bytes.Equal(frame[:valid], frame) {
		t.Fatal("valid prefix mismatch")
	}
}
