package shard

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/replica"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func TestParseMapReplicatedPair(t *testing.T) {
	m, err := ParseMap("s0@h0:1|h0:9=sw0,sw1;s1@h1:2=sw2")
	if err != nil {
		t.Fatal(err)
	}
	shards := m.Shards()
	if shards[0].Addr != "h0:1" || shards[0].Standby != "h0:9" {
		t.Fatalf("pair entry = %+v", shards[0])
	}
	if shards[1].Standby != "" {
		t.Fatalf("unpaired entry grew a standby: %+v", shards[1])
	}
	if eps := shards[0].Endpoints(); len(eps) != 2 || eps[0] != "h0:1" || eps[1] != "h0:9" {
		t.Fatalf("endpoints = %v", eps)
	}
	if eps := shards[1].Endpoints(); len(eps) != 1 {
		t.Fatalf("singleton endpoints = %v", eps)
	}
	for _, bad := range []string{
		"s0@h0:1|=sw0",     // empty standby
		"s0@|h0:9=sw0",     // empty primary
		"s0@h0:1|h0:1=sw0", // primary == standby
	} {
		if _, err := ParseMap(bad); err == nil {
			t.Errorf("ParseMap(%q) accepted", bad)
		}
	}
}

// startStandbyShard boots a warm-standby wire server owning the given
// switches: writes refused until promoted, exactly the state a shard
// pair's survivor is in when the coordinator fails over to it.
func startStandbyShard(t *testing.T, id string, switches ...string) (addr string, srv *wire.Server) {
	t.Helper()
	n := core.NewNetwork(core.HardCDV{})
	for _, sw := range switches {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: sw, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	srv = wire.NewServer(n)
	srv.SetShardID(id)
	srv.SetStandby(true)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close(); <-done })
	return l.Addr().String(), srv
}

// pairFixture builds s0 as a singleton and s1 as a replicated pair
// (live primary, warm standby), plus a coordinator over them.
func pairFixture(t *testing.T) (c *Coordinator, s1Primary *wire.Server, s1StandbyAddr string) {
	t.Helper()
	addr0, _ := startShard(t, "s0", "sw0", "sw1")
	addr1, srv1 := startShard(t, "s1", "sw2", "sw3")
	addr1s, _ := startStandbyShard(t, "s1", "sw2", "sw3")
	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s|%s=sw2,sw3", addr0, addr1, addr1s))
	if err != nil {
		t.Fatal(err)
	}
	c, err = NewCoordinator(m, nil, filepath.Join(t.TempDir(), "intent"))
	if err != nil {
		t.Fatal(err)
	}
	c.OpTimeout = 500 * time.Millisecond
	t.Cleanup(func() { _ = c.Close() })
	return c, srv1, addr1s
}

// TestSetupFailsOverToShardStandbyMidCommit is the tentpole's in-flight
// guarantee: the shard primary dies after the commit decision, with the
// first shard already committed, and the setup still completes — the
// coordinator promotes the standby and drives the commit there.
func TestSetupFailsOverToShardStandbyMidCommit(t *testing.T) {
	c, srv1, addr1s := pairFixture(t)
	ctx := context.Background()
	c.SetTestHook(func(point, txn string) error {
		if point == "mid-commit" {
			c.SetTestHook(nil)
			_ = srv1.Close() // the s1 primary dies; its standby survives
		}
		return nil
	})
	adm, err := c.Setup(ctx, crossReq("c1"))
	if err != nil {
		t.Fatalf("setup across a mid-commit primary death: %v", err)
	}
	if adm == nil || adm.ID != "c1" {
		t.Fatalf("admission = %+v", adm)
	}
	if got := c.ActiveAddr("s1"); got != addr1s {
		t.Fatalf("active s1 endpoint = %q, want the standby %q", got, addr1s)
	}
	// The survivor was promoted and carries the connection.
	cl, err := wire.Dial(addr1s)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rep, err := cl.Replication(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "primary" || rep.Epoch == 0 {
		t.Fatalf("survivor replication = %+v, want promoted primary", rep)
	}
	ids, err := cl.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "c1" {
		t.Fatalf("survivor list = %v", ids)
	}
	if len(c.InDoubt()) != 0 {
		t.Fatalf("in doubt after failover: %v", c.InDoubt())
	}
}

// TestRecoverAgainstPromotedStandbyShard pins the satellite scenario: a
// commit goes in doubt because the shard's primary died, the pair's
// standby is promoted (higher epoch) while the coordinator is down, and
// a rebooted coordinator's boot-time Recover must resolve the in-doubt
// transaction against the promoted member — adopting it into the pool
// and re-admitting the leg the dead primary only ever held as a prepare.
func TestRecoverAgainstPromotedStandbyShard(t *testing.T) {
	addr0, _ := startShard(t, "s0", "sw0", "sw1")
	addr1, srv1 := startShard(t, "s1", "sw2", "sw3")
	addr1s, _ := startStandbyShard(t, "s1", "sw2", "sw3")
	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s|%s=sw2,sw3", addr0, addr1, addr1s))
	if err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(t.TempDir(), "intent")
	c, err := NewCoordinator(m, nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	c.OpTimeout = 500 * time.Millisecond
	ctx := context.Background()

	// The coordinator dies at mid-commit: commit intent durable, s0
	// committed, s1 never heard — a textbook in-doubt transaction.
	crashAt(c, "mid-commit")
	if _, err := c.Setup(ctx, crossReq("c1")); err == nil {
		t.Fatal("abandoned setup reported success")
	}
	_ = c.Close()

	// While the coordinator is down, the s1 primary dies too and an
	// operator (or the replication watchdog) promotes the standby.
	_ = srv1.Close()
	pcl, err := wire.Dial(addr1s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pcl.Promote(context.Background())
	_ = pcl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "primary" || rep.Epoch == 0 {
		t.Fatalf("promoted standby = %+v", rep)
	}

	// Boot-time recovery: the fresh coordinator reads the in-doubt
	// commit, fails over s1 to the promoted member and re-drives it.
	c2, err := NewCoordinator(m, nil, logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.OpTimeout = 500 * time.Millisecond
	if got := c2.InDoubt(); len(got) != 1 {
		t.Fatalf("in doubt at boot = %v, want one txn", got)
	}
	report, err := c2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Committed) != 1 || len(report.InDoubt) != 0 || len(report.Aborted) != 0 {
		t.Fatalf("recover report = %+v", report)
	}
	if got := c2.ActiveAddr("s1"); got != addr1s {
		t.Fatalf("active s1 endpoint = %q, want the promoted member %q", got, addr1s)
	}
	for _, check := range []struct{ addr string }{{addr0}, {addr1s}} {
		cl, err := wire.Dial(check.addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, lerr := cl.List(context.Background())
		_ = cl.Close()
		if lerr != nil {
			t.Fatal(lerr)
		}
		if len(ids) != 1 || ids[0] != "c1" {
			t.Fatalf("%s list = %v, want [c1]", check.addr, ids)
		}
	}
}

// TestStaleCoordinatorFencedByShardRatchet pins the split-brain guard:
// once any shard has served a coordinator at term 2, a term-1
// coordinator's next operation is refused with the typed code and the
// old coordinator fences itself permanently.
func TestStaleCoordinatorFencedByShardRatchet(t *testing.T) {
	addr0, _ := startShard(t, "s0", "sw0", "sw1")
	addr1, _ := startShard(t, "s1", "sw2", "sw3")
	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s=sw2,sw3", addr0, addr1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	dir := t.TempDir()
	old, err := NewCoordinator(m, nil, filepath.Join(dir, "intent-old"))
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()

	// The successor's log carries an epoch record — what a promoted
	// standby coordinator appends before taking over.
	succPath := filepath.Join(dir, "intent-new")
	log, _, _, err := OpenIntentLog(nil, succPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(&IntentRecord{State: IntentEpoch, Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	_ = log.Close()
	succ, err := NewCoordinator(m, nil, succPath)
	if err != nil {
		t.Fatal(err)
	}
	defer succ.Close()
	if succ.Epoch() != 2 {
		t.Fatalf("successor term = %d, want 2", succ.Epoch())
	}
	if _, err := succ.Setup(ctx, crossReq("c-new")); err != nil {
		t.Fatal(err)
	}

	// The old coordinator's term-1 prepare hits the ratchet.
	_, err = old.Setup(ctx, crossReq("c-old"))
	if !errors.Is(err, ErrCoordFenced) {
		t.Fatalf("stale coordinator setup error = %v, want ErrCoordFenced", err)
	}
	if !old.Fenced() {
		t.Fatal("stale coordinator did not fence itself")
	}
	// Fencing is one-way: refused before any shard is even contacted.
	if _, err := old.Setup(ctx, crossReq("c-old2")); !errors.Is(err, ErrCoordFenced) {
		t.Fatalf("fenced coordinator setup error = %v", err)
	}
	if err := old.Teardown(ctx, "c-new"); !errors.Is(err, ErrCoordFenced) {
		t.Fatalf("fenced coordinator teardown error = %v", err)
	}
	// The rightful coordinator is untouched by the collision.
	if _, err := succ.Setup(ctx, crossReq2("c-new2")); err != nil {
		t.Fatal(err)
	}
}

// crossReq2 is crossReq on a different ingress port so two admissions
// coexist within the queue budget.
func crossReq2(id string) core.ConnRequest {
	req := crossReq(id)
	for i := range req.Route {
		req.Route[i].In = 2
	}
	return req
}

// TestStandbyCoordinatorTailsPromotesAndResumes drives the coordinator
// pair end to end: a standby tails the intent log over the replication
// stream, the active dies, the standby promotes at a bumped term, and
// the log it promoted from boots a coordinator that recovers and serves.
func TestStandbyCoordinatorTailsPromotesAndResumes(t *testing.T) {
	c, m, _ := twoShardFixture(t)
	prim := NewIntentPrimary(c, nil)
	prim.HeartbeatEvery = 20 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = prim.Serve(ln) }()

	sbPath := filepath.Join(t.TempDir(), "intent-standby")
	sb, err := NewStandbyCoordinator(StandbyConfig{
		From: ln.Addr().String(), LogPath: sbPath, FailoverTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(context.Background()) }()

	// Traffic while the standby tails: every intent ships synchronously.
	ctx := context.Background()
	if _, err := c.Setup(ctx, crossReq("c1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Setup(ctx, crossReq2("c2")); err != nil {
		t.Fatal(err)
	}
	if lag := prim.Lag(); lag != 0 {
		t.Fatalf("standby lag after synchronous ships = %d", lag)
	}

	// The active coordinator dies; the standby must promote.
	prim.Close()
	_ = c.Close()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("standby run = %v, want promotion", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted")
	}
	if sb.Epoch() != 2 {
		t.Fatalf("promoted term = %d, want 2", sb.Epoch())
	}

	// The promoted log boots a working coordinator at the bumped term.
	c2, err := NewCoordinator(m, nil, sbPath)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.OpTimeout = 500 * time.Millisecond
	if c2.Epoch() != 2 {
		t.Fatalf("successor term = %d, want 2", c2.Epoch())
	}
	report, err := c2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Both setups completed before the handover: their done records
	// shipped too, so nothing is open.
	if len(report.Committed)+len(report.Aborted)+len(report.InDoubt) != 0 {
		t.Fatalf("recover report = %+v, want nothing open", report)
	}
	ids, err := c2.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("connections after takeover = %v", ids)
	}
	if err := c2.Teardown(ctx, "c1"); err != nil {
		t.Fatal(err)
	}
}

// TestStandbyCoordinatorMidCommitTakeover kills the active coordinator
// at the worst instant — commit durable and shipped, first shard
// committed — and asserts the promoted standby's recovery completes the
// transaction rather than losing or halving it.
func TestStandbyCoordinatorMidCommitTakeover(t *testing.T) {
	c, m, _ := twoShardFixture(t)
	c.OpTimeout = 500 * time.Millisecond
	prim := NewIntentPrimary(c, nil)
	prim.HeartbeatEvery = 20 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = prim.Serve(ln) }()

	sbPath := filepath.Join(t.TempDir(), "intent-standby")
	sb, err := NewStandbyCoordinator(StandbyConfig{
		From: ln.Addr().String(), LogPath: sbPath, FailoverTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sb.Run(context.Background()) }()
	// Let the tail attach before traffic so the commit intent ships.
	for start := time.Now(); !prim.Attached(); {
		if time.Since(start) > 5*time.Second {
			t.Fatal("standby coordinator never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx := context.Background()
	crashAt(c, "mid-commit")
	if _, err := c.Setup(ctx, crossReq("c1")); err == nil {
		t.Fatal("abandoned setup reported success")
	}
	prim.Close()
	_ = c.Close()
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("standby run = %v, want promotion", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never promoted")
	}

	c2, err := NewCoordinator(m, nil, sbPath)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.OpTimeout = 500 * time.Millisecond
	if got := c2.InDoubt(); len(got) != 1 {
		t.Fatalf("in doubt on the successor = %v, want the interrupted txn", got)
	}
	report, err := c2.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Committed) != 1 || len(report.InDoubt) != 0 {
		t.Fatalf("recover report = %+v, want the commit re-driven", report)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c2, id); len(ids) != 1 || ids[0] != "c1" {
			t.Fatalf("%s list = %v, want [c1]", id, ids)
		}
	}
}

// TestAppendShippedIdempotentAndHoleTolerant pins the standby apply
// contract: redelivered frames are skipped, forward sequence jumps (a
// reserved-but-unwritten hole on the primary) are accepted.
func TestAppendShippedIdempotentAndHoleTolerant(t *testing.T) {
	path := filepath.Join(t.TempDir(), "intent")
	log, _, _, err := OpenIntentLog(nil, path)
	if err != nil {
		t.Fatal(err)
	}
	frame := func(seq uint64) []byte {
		return []byte(fmt.Sprintf(`{"seq":%d,"state":"begin","txn":"x%d-c"}`, seq, seq))
	}
	for _, seq := range []uint64{1, 1, 3, 2, 7} { // dup and stale skipped, hole 4-6 accepted
		if err := log.AppendShipped(seq, frame(seq)); err != nil {
			t.Fatalf("AppendShipped(%d): %v", seq, err)
		}
	}
	if got := log.LastSeq(); got != 7 {
		t.Fatalf("LastSeq = %d, want 7", got)
	}
	if err := log.AppendShipped(5, []byte(`{"seq":9}`)); err == nil {
		t.Fatal("seq/envelope disagreement accepted")
	}
	_ = log.Close()
	log2, recs, torn, err := OpenIntentLog(nil, path)
	if err != nil || torn {
		t.Fatalf("reopen: torn=%v err=%v", torn, err)
	}
	defer log2.Close()
	if len(recs) != 3 || recs[0].Seq != 1 || recs[1].Seq != 3 || recs[2].Seq != 7 {
		t.Fatalf("records = %+v", recs)
	}
}

// muteStandby attaches to the intent replication stream as a standby
// coordinator and acks every record until told to stall — the shape of
// a standby whose process wedged or whose acks are being lost while the
// stream itself stays up.
func muteStandby(t *testing.T, addr string, fromSeq uint64) (stall *atomic.Bool, conn net.Conn) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := replica.WriteMsg(conn, replica.Msg{Type: replica.MsgHello, Seq: fromSeq, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	stall = new(atomic.Bool)
	go func() {
		for {
			msg, err := replica.ReadMsg(conn)
			if err != nil {
				return
			}
			if msg.Type == replica.MsgRecord && !stall.Load() {
				_ = replica.WriteMsg(conn, replica.Msg{Type: replica.MsgAck, Seq: msg.Seq})
			}
		}
	}()
	return stall, conn
}

// TestUnreplicatedCommitIntentGoesInDoubt pins the divergence guard: a
// commit intent that is durable locally but never acknowledged by the
// standby coordinator must leave the transaction IN DOUBT, not flip it
// to abort — the standby may hold the commit record, and a takeover
// would re-drive it while the shards saw aborts.
func TestUnreplicatedCommitIntentGoesInDoubt(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	prim := NewIntentPrimary(c, nil)
	prim.AckTimeout = 200 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = prim.Serve(ln) }()
	defer prim.Close()
	stall, _ := muteStandby(t, ln.Addr().String(), c.IntentLog().LastSeq())
	for start := time.Now(); !prim.Attached(); {
		if time.Since(start) > 5*time.Second {
			t.Fatal("standby never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx := context.Background()
	c.SetTestHook(func(point, txn string) error {
		if point == "pre-commit" {
			c.SetTestHook(nil)
			stall.Store(true) // the commit intent ships but is never acked
		}
		return nil
	})
	_, err = c.Setup(ctx, crossReq("c1"))
	if !errors.Is(err, ErrInDoubt) {
		t.Fatalf("setup with an unreplicated commit intent = %v, want ErrInDoubt", err)
	}
	if got := c.InDoubt(); len(got) != 1 {
		t.Fatalf("in doubt = %v, want the interrupted txn", got)
	}
	// The durable decision is commit: recovery re-drives it everywhere,
	// never an abort.
	report, err := c.Recover(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Committed) != 1 || len(report.Aborted) != 0 || len(report.InDoubt) != 0 {
		t.Fatalf("recover report = %+v, want the commit re-driven", report)
	}
	for _, id := range []string{"s0", "s1"} {
		if ids := shardList(t, c, id); len(ids) != 1 || ids[0] != "c1" {
			t.Fatalf("%s list = %v, want [c1]", id, ids)
		}
	}
}

// TestLagDuringBlockedShipDoesNotDeadlock pins the lock order between
// the intent log and the shipper: Lag (a registered metrics gauge) must
// not reach for the log's lock while an append is parked in waitAck, or
// the scrape and the append deadlock each other permanently.
func TestLagDuringBlockedShipDoesNotDeadlock(t *testing.T) {
	c, _, _ := twoShardFixture(t)
	prim := NewIntentPrimary(c, nil)
	prim.AckTimeout = 300 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = prim.Serve(ln) }()
	defer prim.Close()
	stall, _ := muteStandby(t, ln.Addr().String(), c.IntentLog().LastSeq())
	stall.Store(true) // never ack anything
	for start := time.Now(); !prim.Attached(); {
		if time.Since(start) > 5*time.Second {
			t.Fatal("standby never attached")
		}
		time.Sleep(5 * time.Millisecond)
	}

	stop := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = prim.Lag()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// The begin intent ships, is never acked, and must fail within the
	// ack timeout — while the Lag poller hammers the shipper's lock.
	_, err = c.Setup(context.Background(), crossReq("c1"))
	close(stop)
	<-pollDone
	if !errors.Is(err, ErrNotReplicated) {
		t.Fatalf("setup against a mute standby = %v, want ErrNotReplicated", err)
	}
	// The mute session is detached; the coordinator proceeds unreplicated.
	if _, err := c.Setup(context.Background(), crossReq2("c2")); err != nil {
		t.Fatalf("setup after detaching the mute standby: %v", err)
	}
}

// TestFailoverLeavesLivePrimaryAlone pins the promotion guard: a
// transport blip must not fence a still-alive primary. failover probes
// the active member first and refuses to promote while it answers as a
// live primary.
func TestFailoverLeavesLivePrimaryAlone(t *testing.T) {
	c, _, addr1s := pairFixture(t)
	info, ok := c.m.Lookup("s1")
	if !ok {
		t.Fatal("no shard s1")
	}
	if c.failover(info) {
		t.Fatal("failover promoted the standby of a live primary")
	}
	cl, err := wire.Dial(addr1s)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rep, err := cl.Replication(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "standby" {
		t.Fatalf("standby role = %q after refused failover, want standby", rep.Role)
	}
	if got := c.ActiveAddr("s1"); got != info.Addr {
		t.Fatalf("active s1 endpoint = %q, want the primary %q", got, info.Addr)
	}
}

// TestCanceledContextDoesNotFailOver pins the other half of the guard:
// a canceled caller says nothing about the member's health, so the
// retry loop must stop without promoting the pair's standby.
func TestCanceledContextDoesNotFailOver(t *testing.T) {
	c, _, addr1s := pairFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := core.ConnRequest{ID: "c1", Spec: traffic.CBR(0.1), Priority: 1,
		Route: hops("sw2", "sw3")}
	if _, err := c.Setup(ctx, req); err == nil {
		t.Fatal("setup with a canceled context succeeded")
	}
	cl, err := wire.Dial(addr1s)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rep, err := cl.Replication(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Role != "standby" {
		t.Fatalf("standby role = %q after a canceled call, want standby", rep.Role)
	}
	info, _ := c.m.Lookup("s1")
	if got := c.ActiveAddr("s1"); got != info.Addr {
		t.Fatalf("active s1 endpoint = %q, want the primary %q", got, info.Addr)
	}
}

// TestStatusPeerProbeBounded pins the status fan-out against a
// blackholed peer: a standby address that accepts connections but never
// answers must come back as "unreachable" within the op timeout, not
// stall the whole shard-status response.
func TestStatusPeerProbeBounded(t *testing.T) {
	addr0, _ := startShard(t, "s0", "sw0", "sw1")
	addr1, _ := startShard(t, "s1", "sw2", "sw3")
	mute, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = mute.Close() })
	go func() {
		var held []net.Conn
		defer func() {
			for _, c := range held {
				_ = c.Close()
			}
		}()
		for {
			conn, err := mute.Accept()
			if err != nil {
				return
			}
			held = append(held, conn) // accept and never answer
		}
	}()
	m, err := ParseMap(fmt.Sprintf("s0@%s=sw0,sw1;s1@%s|%s=sw2,sw3", addr0, addr1, mute.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(m, nil, filepath.Join(t.TempDir(), "intent"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.OpTimeout = 300 * time.Millisecond
	start := time.Now()
	sts, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("status fan-out took %v against a mute peer", elapsed)
	}
	var s1 *wire.ShardStatusReport
	for i := range sts {
		if sts[i].ShardID == "s1" {
			s1 = &sts[i]
		}
	}
	if s1 == nil {
		t.Fatalf("no s1 in status reports %+v", sts)
	}
	if s1.PeerRole != "unreachable" {
		t.Fatalf("mute peer role = %q, want unreachable", s1.PeerRole)
	}
}
