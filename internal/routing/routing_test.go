package routing

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/topology"
	"atmcac/internal/traffic"
)

// campus builds a two-level tree: hosts h0..h3 on edge switches e0, e1,
// both uplinked to a root switch r.
//
//	h0, h1 -> e0 \
//	              r
//	h2, h3 -> e1 /
func campus(t *testing.T) *topology.Graph {
	t.Helper()
	g := topology.New()
	for _, sw := range []topology.NodeID{"e0", "e1", "r"} {
		if err := g.AddNode(sw, topology.KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		h := topology.NodeID(fmt.Sprintf("h%d", i))
		if err := g.AddNode(h, topology.KindHost); err != nil {
			t.Fatal(err)
		}
		edge := topology.NodeID("e0")
		if i >= 2 {
			edge = "e1"
		}
		port := 10 + i%2
		if err := g.AddLink(topology.Link{From: h, FromPort: 0, To: edge, ToPort: port}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddLink(topology.Link{From: edge, FromPort: port, To: h, ToPort: 0}); err != nil {
			t.Fatal(err)
		}
	}
	for i, edge := range []topology.NodeID{"e0", "e1"} {
		if err := g.AddLink(topology.Link{From: edge, FromPort: 0, To: "r", ToPort: i}); err != nil {
			t.Fatal(err)
		}
		if err := g.AddLink(topology.Link{From: "r", FromPort: i, To: edge, ToPort: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestRouteAcrossTheTree(t *testing.T) {
	g := campus(t)
	route, err := Route(g, "h0", "h3")
	if err != nil {
		t.Fatal(err)
	}
	want := core.Route{
		{Switch: "e0", In: 10, Out: 0},
		{Switch: "r", In: 0, Out: 1},
		{Switch: "e1", In: 0, Out: 11},
	}
	if len(route) != len(want) {
		t.Fatalf("route = %+v, want %+v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("hop %d = %+v, want %+v", i, route[i], want[i])
		}
	}
}

func TestRouteSameEdgeSwitch(t *testing.T) {
	g := campus(t)
	route, err := Route(g, "h0", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 1 || route[0].Switch != "e0" || route[0].Out != 11 {
		t.Fatalf("route = %+v", route)
	}
}

func TestFromTraversalsErrors(t *testing.T) {
	g := campus(t)
	if _, err := FromTraversals(g, nil); !errors.Is(err, ErrPath) {
		t.Errorf("empty path error = %v", err)
	}
	// Switch-to-switch paths are rejected (no terminating host).
	path, err := g.Path("e0", "r")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTraversals(g, path); !errors.Is(err, ErrPath) {
		t.Errorf("switch-terminated path error = %v", err)
	}
	if _, err := FromTraversals(g, []topology.Traversal{
		{Node: "zz", InPort: -1, OutPort: 0}, {Node: "h0", InPort: 0, OutPort: -1},
	}); !errors.Is(err, ErrPath) {
		t.Errorf("unknown node error = %v", err)
	}
	// Host-to-host direct paths have no switch.
	g2 := topology.New()
	if err := g2.AddNode("a", topology.KindHost); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddNode("b", topology.KindHost); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddLink(topology.Link{From: "a", FromPort: 0, To: "b", ToPort: 0}); err != nil {
		t.Fatal(err)
	}
	path, err = g2.Path("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromTraversals(g2, path); !errors.Is(err, ErrPath) {
		t.Errorf("switchless path error = %v", err)
	}
}

func TestBuildNetworkAndAdmitAcrossTree(t *testing.T) {
	g := campus(t)
	n, err := BuildNetwork(g, map[core.Priority]float64{1: 32}, core.HardCDV{})
	if err != nil {
		t.Fatal(err)
	}
	// Every switch of the graph is registered; hosts are not.
	names := n.SwitchNames()
	if len(names) != 3 {
		t.Fatalf("switches = %v", names)
	}
	// Admit cross-tree connections between every host pair until rejection;
	// the root uplink is the shared bottleneck.
	admitted := 0
	for i := 0; i < 64; i++ {
		from := topology.NodeID(fmt.Sprintf("h%d", i%2))
		to := topology.NodeID(fmt.Sprintf("h%d", 2+i%2))
		route, err := Route(g, from, to)
		if err != nil {
			t.Fatal(err)
		}
		_, err = n.Setup(context.Background(), core.ConnRequest{
			ID:   core.ConnID(fmt.Sprintf("c%d", i)),
			Spec: traffic.VBR(0.4, 0.01, 8), Priority: 1, Route: route,
		})
		if errors.Is(err, core.ErrRejected) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		admitted++
	}
	if admitted == 0 || admitted == 64 {
		t.Fatalf("admitted %d; bottleneck not exercised", admitted)
	}
	violations, err := n.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("admitted set fails audit: %v", violations)
	}
}

func TestBuildNetworkBadQueues(t *testing.T) {
	g := campus(t)
	if _, err := BuildNetwork(g, nil, nil); err == nil {
		t.Fatal("empty queue config accepted")
	}
}
