// Package routing adapts topology paths into CAC routes: it turns the
// port-level traversals of a topology.Graph path into the ordered queueing
// points the admission engine books. This is what makes the CAC usable on
// arbitrary topologies — RTnet's ring is just one instance.
package routing

import (
	"errors"
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/topology"
)

// ErrPath reports a traversal sequence that cannot become a CAC route.
var ErrPath = errors.New("routing: invalid path")

// FromTraversals converts the port-level traversals of a path into a CAC
// route. Only switch nodes queue cells; host endpoints are skipped. Each
// switch hop enters via the traversal's input port and queues at its output
// port; the final switch's output port is the egress toward the destination
// host (or -1 if the path ends at a switch, which is rejected — a real-time
// connection terminates at hosts).
func FromTraversals(g *topology.Graph, path []topology.Traversal) (core.Route, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("%w: %d traversals", ErrPath, len(path))
	}
	route := make(core.Route, 0, len(path))
	for i, tr := range path {
		node, ok := g.Node(tr.Node)
		if !ok {
			return nil, fmt.Errorf("%w: unknown node %q", ErrPath, tr.Node)
		}
		switch node.Kind {
		case topology.KindHost:
			if i != 0 && i != len(path)-1 {
				return nil, fmt.Errorf("%w: host %q in the middle of a path", ErrPath, tr.Node)
			}
		case topology.KindSwitch:
			if tr.OutPort < 0 {
				return nil, fmt.Errorf("%w: path terminates at switch %q (connections end at hosts)",
					ErrPath, tr.Node)
			}
			in := tr.InPort
			if in < 0 {
				return nil, fmt.Errorf("%w: path originates at switch %q (connections start at hosts)",
					ErrPath, tr.Node)
			}
			route = append(route, core.Hop{
				Switch: string(tr.Node),
				In:     core.PortID(in),
				Out:    core.PortID(tr.OutPort),
			})
		default:
			return nil, fmt.Errorf("%w: node %q has kind %v", ErrPath, tr.Node, node.Kind)
		}
	}
	if len(route) == 0 {
		return nil, fmt.Errorf("%w: no switches on the path", ErrPath)
	}
	return route, nil
}

// Route computes the minimum-hop CAC route between two hosts of the graph.
func Route(g *topology.Graph, from, to topology.NodeID) (core.Route, error) {
	path, err := g.Path(from, to)
	if err != nil {
		return nil, err
	}
	return FromTraversals(g, path)
}

// BuildNetwork registers every switch of the graph on a fresh CAC network,
// all with the same queue configuration.
func BuildNetwork(g *topology.Graph, queues map[core.Priority]float64, policy core.CDVPolicy) (*core.Network, error) {
	n := core.NewNetwork(policy)
	for _, node := range g.Nodes() {
		if node.Kind != topology.KindSwitch {
			continue
		}
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name:       string(node.ID),
			QueueCells: queues,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}
