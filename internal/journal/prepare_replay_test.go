package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

func prepReq(id string) *core.ConnRequest {
	return &core.ConnRequest{
		ID: core.ConnID(id), Spec: traffic.CBR(0.01), Priority: 1,
		Route: core.Route{{Switch: "sw0", In: 1, Out: 0}},
	}
}

// TestPrepareReplayTable drives Replay through every prepare/commit/abort
// crash boundary. The invariant under test is presumed abort: a prepare
// record with no decision after it must replay to an expired (reaped)
// reservation — never an admitted connection — while a commit admits even
// when compaction folded its prepare below the watermark.
func TestPrepareReplayTable(t *testing.T) {
	cases := []struct {
		name    string
		lastSeq uint64
		recs    []Record
		wantIDs []core.ConnID
		wantRps []string
	}{
		{
			name: "crash between prepare-append and commit-append",
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
			},
			wantIDs: nil,
			wantRps: []string{"t1"},
		},
		{
			name: "crash immediately after commit-append",
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
				{Seq: 2, Op: OpShardCommit, Txn: "t1", Request: prepReq("c1")},
			},
			wantIDs: []core.ConnID{"c1"},
			wantRps: nil,
		},
		{
			name: "crash immediately after abort-append",
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
				{Seq: 2, Op: OpShardAbort, Txn: "t1", ID: "c1"},
			},
			wantIDs: nil,
			wantRps: nil,
		},
		{
			name:    "commit alone (compaction folded the prepare below the watermark)",
			lastSeq: 1,
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
				{Seq: 2, Op: OpShardCommit, Txn: "t1", Request: prepReq("c1")},
			},
			wantIDs: []core.ConnID{"c1"},
			wantRps: nil,
		},
		{
			name: "commit later unwound by abort",
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
				{Seq: 2, Op: OpShardCommit, Txn: "t1", Request: prepReq("c1")},
				{Seq: 3, Op: OpShardAbort, Txn: "t1", ID: "c1"},
			},
			wantIDs: nil,
			wantRps: nil,
		},
		{
			name: "interleaved transactions: only the decided one admits",
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
				{Seq: 2, Op: OpShardPrepare, Txn: "t2", Request: prepReq("c2"), TTLMillis: 50},
				{Seq: 3, Op: OpShardCommit, Txn: "t1", Request: prepReq("c1")},
			},
			wantIDs: []core.ConnID{"c1"},
			wantRps: []string{"t2"},
		},
		{
			name: "prepare below the watermark stays inert",
			// The watermark covers the prepare: compaction never folds an
			// undecided hold into the snapshot, so replay must not invent
			// either a connection or a reap for it.
			lastSeq: 1,
			recs: []Record{
				{Seq: 1, Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50},
			},
			wantIDs: nil,
			wantRps: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := Replay(State{}, tc.lastSeq, tc.recs)
			gotIDs := make([]core.ConnID, 0, len(st.Requests))
			for _, r := range st.Requests {
				gotIDs = append(gotIDs, r.ID)
			}
			if fmt.Sprint(gotIDs) != fmt.Sprint(append([]core.ConnID{}, tc.wantIDs...)) {
				t.Errorf("admitted = %v, want %v", gotIDs, tc.wantIDs)
			}
			if fmt.Sprint(st.ReapedPrepares) != fmt.Sprint(tc.wantRps) {
				t.Errorf("reaped prepares = %v, want %v", st.ReapedPrepares, tc.wantRps)
			}
		})
	}
}

// TestPrepareReplayThroughCrashedLog writes the prepare through a real
// journal file, then crashes before the commit lands in two ways — the
// commit frame never written, and the commit frame torn mid-write — and
// asserts both recoveries replay to a reaped hold, never an admission.
func TestPrepareReplayThroughCrashedLog(t *testing.T) {
	for _, tear := range []bool{false, true} {
		name := "commit-never-written"
		if tear {
			name = "commit-frame-torn"
		}
		t.Run(name, func(t *testing.T) {
			fsys := OSFS{}
			path := filepath.Join(t.TempDir(), "wal")
			log, _, _, err := Open(fsys, path)
			if err != nil {
				t.Fatal(err)
			}
			prep := Record{Op: OpShardPrepare, Txn: "t1", Request: prepReq("c1"), TTLMillis: 50}
			if err := log.Append(&prep, true); err != nil {
				t.Fatal(err)
			}
			if tear {
				// A torn commit frame: the full frame minus its last byte.
				frame, err := EncodeFrame(Record{Seq: prep.Seq + 1, Op: OpShardCommit, Txn: "t1", Request: prepReq("c1")})
				if err != nil {
					t.Fatal(err)
				}
				f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write(frame[:len(frame)-1]); err != nil {
					t.Fatal(err)
				}
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if err := log.Close(); err != nil {
				t.Fatal(err)
			}

			_, scan, tornPath, err := Open(fsys, path)
			if err != nil {
				t.Fatal(err)
			}
			if tear && tornPath == "" {
				t.Fatal("torn commit frame not detected")
			}
			st := Replay(State{}, 0, scan.Records)
			if len(st.Requests) != 0 {
				t.Fatalf("crash before commit replayed to admitted connections %v", st.Requests)
			}
			if len(st.ReapedPrepares) != 1 || st.ReapedPrepares[0] != "t1" {
				t.Fatalf("reaped prepares = %v, want [t1]", st.ReapedPrepares)
			}
		})
	}
}
