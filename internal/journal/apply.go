package journal

import (
	"errors"
	"fmt"

	"atmcac/internal/core"
)

// ErrApply reports a record that cannot be folded into a live network —
// an unknown op, or an install the network refused. The caller (a warm
// standby) treats it as a divergence signal and requests a full resync
// rather than continuing with a half-applied stream.
var ErrApply = errors.New("journal: record does not apply")

// ApplyToNetwork folds one journaled record into a live network,
// idempotently: re-applying a record whose effect is already present is a
// no-op, so at-least-once delivery on the replication stream is safe.
// This is the warm-standby counterpart of Replay — Replay folds records
// into a passive State for recovery, ApplyToNetwork folds them into the
// standby's live network so takeover needs no replay pause. Setups use
// Install (no CAC): the record exists because the primary's CAC already
// admitted it, and re-checking on the standby could only diverge.
func ApplyToNetwork(net *core.Network, rec Record) error {
	switch rec.Op {
	case OpSetup:
		if rec.Request == nil {
			return nil
		}
		if _, ok := net.AdmittedRequest(rec.Request.ID); ok {
			return nil
		}
		if err := net.Install(*rec.Request); err != nil {
			return fmt.Errorf("%w: setup %q (seq %d): %v", ErrApply, rec.Request.ID, rec.Seq, err)
		}
	case OpTeardown:
		if err := net.Teardown(rec.ID); err != nil && !errors.Is(err, core.ErrUnknownConn) {
			return fmt.Errorf("%w: teardown %q (seq %d): %v", ErrApply, rec.ID, rec.Seq, err)
		}
	case OpFailLink:
		// FailLink's own eviction scan removes the traversing connections
		// (a no-op if the link is already down); the recorded evictions
		// are then swept explicitly in case the local admitted set lagged.
		if _, err := net.FailLink(rec.From, rec.To); err != nil {
			return fmt.Errorf("%w: fail-link %s->%s (seq %d): %v", ErrApply, rec.From, rec.To, rec.Seq, err)
		}
		for _, id := range rec.Evicted {
			if err := net.Teardown(id); err != nil && !errors.Is(err, core.ErrUnknownConn) {
				return fmt.Errorf("%w: evict %q (seq %d): %v", ErrApply, id, rec.Seq, err)
			}
		}
		for _, req := range rec.Readmitted {
			if _, ok := net.AdmittedRequest(req.ID); ok {
				continue
			}
			if err := net.Install(req); err != nil {
				return fmt.Errorf("%w: readmit %q (seq %d): %v", ErrApply, req.ID, rec.Seq, err)
			}
		}
	case OpRestoreLink:
		if !net.LinkDown(rec.From, rec.To) {
			return nil
		}
		if err := net.RestoreLink(rec.From, rec.To); err != nil {
			return fmt.Errorf("%w: restore-link %s->%s (seq %d): %v", ErrApply, rec.From, rec.To, rec.Seq, err)
		}
	case OpShardPrepare:
		// A standby does not mirror in-flight holds: if the transaction
		// commits, the commit record installs the connection; if it
		// aborts or the shard reaps it, there is nothing to undo here.
		return nil
	case OpShardCommit:
		if rec.Request == nil {
			return nil
		}
		if _, ok := net.AdmittedRequest(rec.Request.ID); ok {
			return nil
		}
		if err := net.Install(*rec.Request); err != nil {
			return fmt.Errorf("%w: shard-commit %q (seq %d): %v", ErrApply, rec.Request.ID, rec.Seq, err)
		}
	case OpShardAbort:
		if rec.ID == "" {
			return nil
		}
		if err := net.Teardown(rec.ID); err != nil && !errors.Is(err, core.ErrUnknownConn) {
			return fmt.Errorf("%w: shard-abort %q (seq %d): %v", ErrApply, rec.ID, rec.Seq, err)
		}
	default:
		return fmt.Errorf("%w: unknown op %q (seq %d)", ErrApply, rec.Op, rec.Seq)
	}
	return nil
}
