// Package journal is the write-ahead admission log of the central CAC
// server: one length-prefixed, CRC32-framed record per admission-state
// mutation (setup, teardown, fail-link, restore-link), appended — and in
// the strictest mode fsynced — before the operation is acknowledged.
//
// The paper's delay guarantees (Algorithm 4.1) hold only while the
// switch's recorded admission state Sia/Sif/Soa/Sof matches the set of
// connections actually admitted; for RTnet's permanent real-time
// connections a CAC server crash must neither lose an acknowledged
// admission nor resurrect a torn-down one. The journal turns the per-op
// persistence cost from an O(n) full snapshot into an O(1) append, and
// recovery is: load snapshot, replay the journal records past the
// snapshot's sequence watermark, then re-admit the resulting set through
// the full CAC check.
//
// Frame format, designed so a torn tail is detectable and cheap to repair:
//
//	[4 bytes big-endian payload length][4 bytes big-endian IEEE CRC32 of
//	payload][payload: one JSON Record]
//
// Each frame is written with a single Write call. Scanning stops at the
// first frame that is short, oversized, fails its checksum, or does not
// decode: everything before it is valid, everything from it on is a torn
// tail (the typical residue of a crash mid-append or a power loss that
// persisted half a sector). Open repairs a torn tail by copying the
// damaged file to a fresh ".torn" evidence path and truncating the
// journal at the last valid frame.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"atmcac/internal/core"
)

// Op enumerates the journaled admission-state mutations.
type Op string

const (
	// OpSetup records an admitted connection.
	OpSetup Op = "setup"
	// OpTeardown records a released connection.
	OpTeardown Op = "teardown"
	// OpFailLink records a link failure with the evicted connections and
	// the re-admissions (with their new wrapped routes) it triggered.
	OpFailLink Op = "fail-link"
	// OpRestoreLink records a healed link.
	OpRestoreLink Op = "restore-link"
	// OpShardPrepare records phase 1 of a cross-shard admission: the
	// shard holds the route hops for a coordinator transaction, with a
	// TTL after which an unresolved hold may be reaped. A prepare alone
	// NEVER replays to an admitted connection — only a later
	// OpShardCommit admits.
	OpShardPrepare Op = "shard-prepare"
	// OpShardCommit records phase 2: the prepared hold became an
	// admitted connection. The record carries the full request so it is
	// self-contained — compaction may have folded the prepare away.
	OpShardCommit Op = "shard-commit"
	// OpShardAbort records the release of a prepared hold (coordinator
	// abort or TTL reap) or the removal of a connection admitted by a
	// commit the coordinator later unwound.
	OpShardAbort Op = "shard-abort"
)

// MaxRecordBytes caps one record payload; a frame announcing more is torn
// or hostile, never allocated.
const MaxRecordBytes = 1 << 20

// frameHeaderLen is the length prefix plus the CRC32.
const frameHeaderLen = 8

// ErrBroken reports an append log handle that can no longer be trusted —
// a failed append whose tail could not be healed, or a failed fsync
// (which on Linux may drop the dirty pages while clearing the kernel
// error state, so nothing written since the last successful sync is
// guaranteed durable through this handle). A broken log refuses further
// appends and resets until it is reopened, which rescans the on-disk
// state.
var ErrBroken = errors.New("journal: log broken (reopen to rescan the on-disk state)")

// Record is one journaled mutation. Seq is assigned by Append and is
// strictly monotonic across compactions: a snapshot stores the last
// sequence folded into it, and replay skips records at or below that
// watermark, which makes a crash between snapshot rename and journal
// truncation harmless.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  Op     `json:"op"`
	// Epoch is the primary term that produced the record. A promoted
	// standby bumps its epoch, and replication peers reject streams from a
	// lower epoch — the fencing that keeps a partitioned ex-primary from
	// mutating shared state. Zero (records from before replication, or a
	// never-replicated deployment) is a valid first epoch.
	Epoch uint64 `json:"epoch,omitempty"`
	// Request carries the admitted connection for OpSetup.
	Request *core.ConnRequest `json:"request,omitempty"`
	// ID names the released connection for OpTeardown.
	ID core.ConnID `json:"id,omitempty"`
	// From and To name the link for OpFailLink / OpRestoreLink.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Evicted lists the connections the link failure tore down.
	Evicted []core.ConnID `json:"evicted,omitempty"`
	// Readmitted lists the evicted connections re-admitted in degraded
	// mode, carrying their new (wrapped) routes.
	Readmitted []core.ConnRequest `json:"readmitted,omitempty"`
	// Txn names the coordinator transaction for the shard 2PC ops.
	Txn string `json:"txn,omitempty"`
	// TTLMillis is the prepare hold's time-to-live for OpShardPrepare;
	// a hold unresolved past its TTL is fair game for the orphan reaper.
	TTLMillis int64 `json:"ttlMs,omitempty"`
}

// EncodeFrame renders one record as a complete frame.
func EncodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: encode record seq %d: %w", rec.Seq, err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("journal: record seq %d exceeds %d bytes", rec.Seq, MaxRecordBytes)
	}
	return EncodeRawFrame(payload), nil
}

// EncodeRawFrame wraps an already-encoded payload in a frame. The caller
// is responsible for the payload fitting MaxRecordBytes; the standby uses
// this to persist shipped payloads byte-identically to the primary's file.
func EncodeRawFrame(payload []byte) []byte {
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	return frame
}

// ScanResult is the outcome of decoding a journal image.
type ScanResult struct {
	// Records holds every valid record, in file order.
	Records []Record
	// Valid is the byte offset just past the last valid frame.
	Valid int64
	// Torn reports trailing bytes after Valid that do not form a valid
	// frame — the residue of a crash mid-append.
	Torn bool
}

// Entry is one valid journal frame surfaced at every level of detail at
// once: the assigned sequence, the exact frame bytes as they sit in the
// file, the JSON payload inside the frame, and the decoded record. It is
// the shared currency of local recovery, offline inspection, and
// replication shipping — one decode path, so a record a recovering
// primary would replay is byte-for-byte the record a standby receives.
type Entry struct {
	// Seq is Rec.Seq, hoisted for watermark filtering without touching
	// the decoded record.
	Seq uint64
	// Frame is the complete on-disk frame: length prefix, CRC32, payload.
	Frame []byte
	// Payload is the JSON record inside Frame (aliases Frame's storage).
	Payload []byte
	// Rec is the decoded record.
	Rec Record
}

// EntryScan is the outcome of decoding a journal image into entries.
type EntryScan struct {
	// Entries holds every valid frame, in file order.
	Entries []Entry
	// Valid is the byte offset just past the last valid frame.
	Valid int64
	// Torn reports trailing bytes after Valid that do not form a valid
	// frame — the residue of a crash mid-append.
	Torn bool
}

// ScanEntries decodes frames until the data ends or a frame is invalid.
// It never fails: a bad frame terminates the scan with Torn set, because
// a write-ahead log's tail is exactly where a crash lands. Entry frames
// alias data; callers that outlive data must copy.
func ScanEntries(data []byte) EntryScan {
	res := EntryScan{}
	for {
		rest := data[res.Valid:]
		if len(rest) == 0 {
			return res
		}
		if len(rest) < frameHeaderLen {
			res.Torn = true
			return res
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n > MaxRecordBytes || int64(n) > int64(len(rest)-frameHeaderLen) {
			res.Torn = true
			return res
		}
		frame := rest[:frameHeaderLen+int(n)]
		payload := frame[frameHeaderLen:]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(rest[4:8]) {
			res.Torn = true
			return res
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			res.Torn = true
			return res
		}
		res.Entries = append(res.Entries, Entry{Seq: rec.Seq, Frame: frame, Payload: payload, Rec: rec})
		res.Valid += int64(frameHeaderLen) + int64(n)
	}
}

// ScanBytes decodes frames into records only; it is ScanEntries with the
// frame bytes dropped, kept for callers that replay and never ship.
func ScanBytes(data []byte) ScanResult {
	es := ScanEntries(data)
	res := ScanResult{Valid: es.Valid, Torn: es.Torn}
	if len(es.Entries) > 0 {
		res.Records = make([]Record, len(es.Entries))
		for i, e := range es.Entries {
			res.Records[i] = e.Rec
		}
	}
	return res
}

// EntriesSince reads the journal at path and returns the valid entries
// with sequence numbers past the afterSeq watermark — the catch-up feed
// for a standby whose journal ends at afterSeq. Frames are copies safe to
// retain. A torn tail is not an error: the torn frames were never
// acknowledged and must not ship.
func EntriesSince(fsys FS, path string, afterSeq uint64) ([]Entry, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: read %s: %w", path, err)
	}
	var out []Entry
	for _, e := range ScanEntries(data).Entries {
		if e.Seq <= afterSeq {
			continue
		}
		frame := append([]byte(nil), e.Frame...)
		e.Frame = frame
		e.Payload = frame[frameHeaderLen:]
		out = append(out, e)
	}
	return out, nil
}

// ScanFile reads and decodes the journal at path without modifying it —
// the read-only half of recovery, also used by offline inspection
// (cacctl state verify). A missing file is an empty journal.
func ScanFile(fsys FS, path string) (ScanResult, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ScanResult{}, nil
	}
	if err != nil {
		return ScanResult{}, fmt.Errorf("journal: read %s: %w", path, err)
	}
	return ScanBytes(data), nil
}

// AppendObserver receives the outcome of each Append: the time the whole
// append took, the portion spent in fsync (zero outside sync mode), the
// frame size in bytes, and the error (nil on success). The journal stays
// free of any metrics dependency; the server's observability layer
// installs an observer here and turns the callbacks into trace events.
type AppendObserver func(total, syncDur time.Duration, bytes int, err error)

// Log is an append-only journal file. Appends are not internally
// synchronized: the server serializes them under its persistence mutex,
// which also keeps the sequence numbers in file order.
type Log struct {
	fsys    FS
	path    string
	f       File
	size    int64
	count   int
	next    uint64
	broken  bool
	observe AppendObserver
	// Unsynced tail: frames appended with sync=false since the last
	// successful fsync. Sync() — the group-commit hook — fsyncs them in
	// one call and, on failure, truncates exactly this tail so records
	// that were never acknowledged durable cannot replay.
	dirty      int64
	dirtyCount int
}

// SetAppendObserver installs the per-append callback. It must be set
// before appends start (the server wires it before Serve); nil disables
// observation.
func (l *Log) SetAppendObserver(fn AppendObserver) { l.observe = fn }

// Open scans the journal at path, repairs a torn tail (the damaged file
// is first copied to a fresh EvidencePath(path+".torn") so the bytes stay
// inspectable, then the journal is truncated at the last valid frame),
// and opens it for appending. It returns the valid records for replay and
// the evidence path when a tear was repaired.
func Open(fsys FS, path string) (*Log, ScanResult, string, error) {
	res, err := ScanFile(fsys, path)
	if err != nil {
		return nil, res, "", err
	}
	tornPath := ""
	if res.Torn {
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, res, "", fmt.Errorf("journal: reread torn %s: %w", path, err)
		}
		tornPath = EvidencePath(fsys, path+".torn")
		if err := fsys.WriteFile(tornPath, data, 0o600); err != nil {
			return nil, res, "", fmt.Errorf("journal: preserve torn tail: %w", err)
		}
		if err := fsys.Truncate(path, res.Valid); err != nil {
			return nil, res, tornPath, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o600)
	if err != nil {
		return nil, res, tornPath, fmt.Errorf("journal: open %s: %w", path, err)
	}
	next := uint64(1)
	for _, rec := range res.Records {
		if rec.Seq >= next {
			next = rec.Seq + 1
		}
	}
	return &Log{
		fsys: fsys, path: path, f: f,
		size: res.Valid, count: len(res.Records), next: next,
	}, res, tornPath, nil
}

// SetNextSeq raises the next sequence number, so recovery can place it
// past a snapshot watermark that outruns the scanned records.
func (l *Log) SetNextSeq(seq uint64) {
	if seq > l.next {
		l.next = seq
	}
}

// ForceNextSeq adopts seq as the next sequence even when lower than the
// current one. Only a full replication resync may do this: the node is
// discarding its entire journal (Reset) and taking over the primary's
// numbering, so its own — possibly higher, never-acked — history no
// longer exists to collide with. Anywhere else, lowering the counter
// would re-issue sequences and break replay idempotency; use SetNextSeq.
func (l *Log) ForceNextSeq(seq uint64) { l.next = seq }

// LastSeq returns the highest sequence number assigned so far.
func (l *Log) LastSeq() uint64 { return l.next - 1 }

// Size returns the journal's current byte length.
func (l *Log) Size() int64 { return l.size }

// Count returns the number of records appended since the last Reset.
func (l *Log) Count() int { return l.count }

// Path returns the backing file path.
func (l *Log) Path() string { return l.path }

// Append assigns the next sequence number to rec and writes its frame in
// one call; with sync it is fsynced before returning, so a true return in
// that mode means the record survives a power loss. A failed write
// attempts to truncate the file back to the last known-good length — a
// partial frame must not poison every later append — and if even that
// fails the log marks itself broken (boot-time torn repair is then the
// recovery path). A failed fsync always breaks the log: the kernel may
// have dropped the dirty pages while clearing its error state, so a later
// successful fsync through the same handle would not prove the record
// reached disk.
func (l *Log) Append(rec *Record, sync bool) error {
	_, err := l.AppendPayload(rec, sync)
	return err
}

// AppendPayload is Append, additionally returning the encoded JSON
// payload on success so a replication shipper can forward exactly the
// bytes that were persisted — re-encoding could diverge.
func (l *Log) AppendPayload(rec *Record, sync bool) (payload []byte, err error) {
	var start time.Time
	var syncDur time.Duration
	frameLen := 0
	if l.observe != nil {
		start = time.Now()
		defer func() { l.observe(time.Since(start), syncDur, frameLen, err) }()
	}
	if l.broken {
		return nil, ErrBroken
	}
	rec.Seq = l.next
	frame, err := EncodeFrame(*rec)
	if err != nil {
		return nil, err
	}
	frameLen = len(frame)
	// The sequence is burned even when the append fails: the frame may
	// have reached the file despite the error, and a compaction watermark
	// taken from LastSeq must cover every frame that could be on disk,
	// or replay could resurrect a rolled-back (never acked) mutation.
	// Sequences only need to be monotonic, not dense.
	l.next++
	if err := l.writeFrame(rec.Seq, frame, sync, &syncDur); err != nil {
		return nil, err
	}
	return frame[frameHeaderLen:], nil
}

// AppendAll appends every record in one write call without syncing —
// the batch counterpart of a sync=false Append, for callers that follow
// up with Sync (group commit). Encoding all frames into one buffer
// makes a batch of N records cost one syscall instead of N. The write
// is all-or-nothing for accounting purposes: on error the file is
// truncated back to the last known-good length and no record counts as
// appended, which is the contract a batch fan-out needs — either every
// record is in the unsynced tail or none is. Sequences for the whole
// batch are burned even on failure, same rationale as AppendPayload.
func (l *Log) AppendAll(recs []*Record) (payloads [][]byte, err error) {
	if len(recs) == 0 {
		return nil, nil
	}
	var start time.Time
	if l.observe != nil {
		start = time.Now()
	}
	if l.broken {
		return nil, ErrBroken
	}
	payloads = make([][]byte, len(recs))
	frameLens := make([]int, len(recs))
	var buf []byte
	for i, rec := range recs {
		rec.Seq = l.next
		l.next++ // burned even on failure, as in AppendPayload
		frame, ferr := EncodeFrame(*rec)
		if ferr != nil {
			if l.observe != nil {
				l.observe(time.Since(start), 0, 0, ferr)
			}
			return nil, ferr
		}
		frameLens[i] = len(frame)
		payloads[i] = frame[frameHeaderLen:]
		buf = append(buf, frame...)
	}
	if _, werr := l.f.Write(buf); werr != nil {
		l.heal()
		err = fmt.Errorf("journal: batch append: %w", werr)
		if l.observe != nil {
			l.observe(time.Since(start), 0, len(buf), err)
		}
		return nil, err
	}
	l.size += int64(len(buf))
	l.count += len(recs)
	l.dirty += int64(len(buf))
	l.dirtyCount += len(recs)
	if l.observe != nil {
		// One observation per record so append counts stay the number
		// of records persisted, with the batch's cost split evenly.
		per := time.Since(start) / time.Duration(len(recs))
		for _, n := range frameLens {
			l.observe(per, 0, n, nil)
		}
	}
	return payloads, nil
}

// AppendEntry persists an already-encoded payload under the sequence its
// primary assigned, advancing the local counter past it. This is the
// standby's append: the shipped payload is framed and written unmodified,
// so the standby's journal is byte-identical to the primary's for every
// shipped record, and a later recovery or promotion replays the same
// bytes either side would. Sequence gaps are expected — the primary burns
// sequences on failed appends.
func (l *Log) AppendEntry(seq uint64, payload []byte, sync bool) (err error) {
	var start time.Time
	var syncDur time.Duration
	frameLen := 0
	if l.observe != nil {
		start = time.Now()
		defer func() { l.observe(time.Since(start), syncDur, frameLen, err) }()
	}
	if l.broken {
		return ErrBroken
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("journal: entry seq %d exceeds %d bytes", seq, MaxRecordBytes)
	}
	frame := EncodeRawFrame(payload)
	frameLen = len(frame)
	// Burn the sequence before writing, same rationale as AppendPayload.
	if seq >= l.next {
		l.next = seq + 1
	}
	return l.writeFrame(seq, frame, sync, &syncDur)
}

// writeFrame writes one complete frame, optionally fsyncing, with the
// shared heal/broken discipline of every append path.
func (l *Log) writeFrame(seq uint64, frame []byte, sync bool, syncDur *time.Duration) error {
	if _, err := l.f.Write(frame); err != nil {
		l.heal()
		return fmt.Errorf("journal: append seq %d: %w", seq, err)
	}
	if sync {
		var syncStart time.Time
		if l.observe != nil {
			syncStart = time.Now()
		}
		serr := l.f.Sync()
		if l.observe != nil {
			*syncDur = time.Since(syncStart)
		}
		if serr != nil {
			l.heal()
			l.broken = true
			return fmt.Errorf("journal: sync seq %d: %w", seq, serr)
		}
		// A successful fsync covers every byte written so far, including
		// any unsynced tail left by earlier sync=false appends.
		l.dirty, l.dirtyCount = 0, 0
	}
	l.size += int64(len(frame))
	l.count++
	if !sync {
		l.dirty += int64(len(frame))
		l.dirtyCount++
	}
	return nil
}

// heal truncates a possibly-partial tail after a failed append.
func (l *Log) heal() {
	if err := l.f.Truncate(l.size); err != nil {
		l.broken = true
	}
}

// Unsynced reports the number of frames appended with sync=false since
// the last successful fsync — the records one Sync call would cover.
func (l *Log) Unsynced() int { return l.dirtyCount }

// Sync is the group-commit hook: it fsyncs every frame appended with
// sync=false since the last durable point, so a caller can append a
// batch of records (or accumulate records from concurrent operations)
// and pay for a single fsync covering all of them. It is a no-op when
// the tail is already clean.
//
// On failure the unsynced tail is truncated away and the log marks
// itself broken: none of those records were ever acknowledged durable,
// and leaving them in the file would let a later replay resurrect
// operations their callers rolled back. Callers must treat a Sync error
// as failing every record in the group. Sync is only meaningful in
// fsync-per-ack (journal-sync) flows; write-behind modes never call it,
// since their acknowledged records legitimately live in the OS cache.
func (l *Log) Sync() error {
	if l.broken {
		// Another append path broke the log (e.g. its own fsync failed)
		// while this tail was pending: those records are equally
		// unacknowledged, so drop them too before reporting.
		l.dropDirty()
		return ErrBroken
	}
	if l.dirtyCount == 0 {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.dropDirty()
		l.broken = true
		return fmt.Errorf("journal: group sync: %w", err)
	}
	l.dirty, l.dirtyCount = 0, 0
	return nil
}

// dropDirty truncates the unsynced tail away. If even the truncate
// fails, the on-disk tail may survive a reboot — but the handle is (or
// is about to be) broken either way, the next Open rescans the file from
// scratch, and sizes stay as-is so heal() can never truncate into
// acknowledged frames.
func (l *Log) dropDirty() {
	if l.dirtyCount == 0 {
		return
	}
	if err := l.f.Truncate(l.size - l.dirty); err == nil {
		l.size -= l.dirty
		l.count -= l.dirtyCount
	}
	l.dirty, l.dirtyCount = 0, 0
}

// Reset empties the journal after its records were folded into a
// snapshot. Sequence numbers keep counting: the snapshot's watermark is
// what makes stale records inert, not the truncation.
func (l *Log) Reset() error {
	if l.broken {
		return ErrBroken
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: reset: %w", err)
	}
	// The file is empty now: record that before attempting the sync. If
	// size/count were updated only after a successful sync, a failed sync
	// would leave them claiming the pre-reset length, and a later Append
	// failure would heal() by truncating to that stale offset — leaving a
	// torn partial frame mid-file that silently ends replay there.
	l.size = 0
	l.count = 0
	l.dirty = 0
	l.dirtyCount = 0
	if err := l.f.Sync(); err != nil {
		l.broken = true
		return fmt.Errorf("journal: reset sync: %w", err)
	}
	return nil
}

// MarkBroken forces the broken state: every later Append and Reset
// returns ErrBroken until the log is reopened. It exists for fault
// injection — exercising callers' refuse-and-roll-back paths without a
// real disk failure.
func (l *Log) MarkBroken() { l.broken = true }

// Close releases the append handle.
func (l *Log) Close() error { return l.f.Close() }

// State is a replayed admission state: the connection set in admission
// order and the links recorded as failed. ReapedPrepares lists shard
// transactions whose prepare record was replayed without a matching
// commit or abort — the crash landed between prepare-append and the
// coordinator's decision, so recovery treats the hold as expired
// (reaped); it never becomes an admitted connection.
type State struct {
	Requests       []core.ConnRequest
	FailedLinks    []core.Link
	ReapedPrepares []string
}

// Replay folds records past the lastSeq watermark into the base state.
// Application is idempotent per connection ID and per link, so records
// whose effect is already present in base (a crash landed between
// snapshot rename and journal truncation, or a compaction raced an
// append) re-apply harmlessly.
//
// Shard 2PC records obey presumed abort: OpShardPrepare alone is inert
// (the transaction is reported in ReapedPrepares), only OpShardCommit
// admits (its embedded request makes it self-contained across
// compaction), and OpShardAbort removes both the hold and any
// connection a commit for the same ID produced.
func Replay(base State, lastSeq uint64, recs []Record) State {
	index := make(map[core.ConnID]int, len(base.Requests))
	reqs := append([]core.ConnRequest(nil), base.Requests...)
	for i, req := range reqs {
		index[req.ID] = i
	}
	links := make(map[core.Link]struct{}, len(base.FailedLinks))
	order := append([]core.Link(nil), base.FailedLinks...)
	upsert := func(req core.ConnRequest) {
		if i, ok := index[req.ID]; ok {
			reqs[i] = req
			return
		}
		index[req.ID] = len(reqs)
		reqs = append(reqs, req)
	}
	remove := func(id core.ConnID) {
		i, ok := index[id]
		if !ok {
			return
		}
		reqs = append(reqs[:i], reqs[i+1:]...)
		delete(index, id)
		for j := i; j < len(reqs); j++ {
			index[reqs[j].ID] = j
		}
	}
	for _, l := range order {
		links[l] = struct{}{}
	}
	prepared := make(map[string]struct{})
	var preparedOrder []string
	resolve := func(txn string) {
		if _, ok := prepared[txn]; !ok {
			return
		}
		delete(prepared, txn)
		for i, have := range preparedOrder {
			if have == txn {
				preparedOrder = append(preparedOrder[:i], preparedOrder[i+1:]...)
				break
			}
		}
	}
	for _, rec := range recs {
		if rec.Seq <= lastSeq {
			continue
		}
		switch rec.Op {
		case OpSetup:
			if rec.Request != nil {
				upsert(*rec.Request)
			}
		case OpTeardown:
			remove(rec.ID)
		case OpFailLink:
			for _, id := range rec.Evicted {
				remove(id)
			}
			for _, req := range rec.Readmitted {
				upsert(req)
			}
			l := core.Link{From: rec.From, To: rec.To}
			if _, ok := links[l]; !ok {
				links[l] = struct{}{}
				order = append(order, l)
			}
		case OpRestoreLink:
			l := core.Link{From: rec.From, To: rec.To}
			if _, ok := links[l]; ok {
				delete(links, l)
				for i, have := range order {
					if have == l {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		case OpShardPrepare:
			// A prepared hold is capacity in flight, not admitted state:
			// replay only tracks the transaction so recovery can report
			// the hold as reaped if no decision follows.
			if rec.Txn != "" {
				if _, ok := prepared[rec.Txn]; !ok {
					prepared[rec.Txn] = struct{}{}
					preparedOrder = append(preparedOrder, rec.Txn)
				}
			}
		case OpShardCommit:
			resolve(rec.Txn)
			if rec.Request != nil {
				upsert(*rec.Request)
			}
		case OpShardAbort:
			resolve(rec.Txn)
			if rec.ID != "" {
				remove(rec.ID)
			}
		}
	}
	return State{Requests: reqs, FailedLinks: order, ReapedPrepares: preparedOrder}
}
