package journal

import (
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
)

// FS is the filesystem surface the persistence layer writes through. The
// production implementation is OSFS; the crash-point harness in
// internal/faultinject substitutes an instrumented implementation that can
// kill the process at any write/sync/rename boundary, so every durability
// claim is tested against an injected crash, not assumed.
type FS interface {
	// OpenFile opens name with the given flags, like os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadFile reads the whole file; a missing file returns an error
	// matching os.ErrNotExist.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name in one call (no durability implied).
	WriteFile(name string, data []byte, perm os.FileMode) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// Stat returns file metadata.
	Stat(name string) (fs.FileInfo, error)
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory containing name, making a preceding
	// rename or create in it durable.
	SyncDir(name string) error
}

// File is one writable file handle.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes the file's data to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
	Close() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Stat implements FS.
func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS: without the directory fsync, a power loss after
// a rename can roll the directory entry back to the old file — or to
// nothing — despite the atomic-write claim.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Dir(name))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// EvidencePath returns base if nothing occupies it, otherwise base.1,
// base.2, ... for the first free monotonic suffix — so quarantining a
// second corrupt file never overwrites the evidence of the first.
func EvidencePath(fsys FS, base string) string {
	if _, err := fsys.Stat(base); err != nil {
		return base
	}
	for i := 1; ; i++ {
		candidate := base + "." + strconv.Itoa(i)
		if _, err := fsys.Stat(candidate); err != nil {
			return candidate
		}
	}
}
