package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
)

// TestStreamFrameRoundTrip pins the shared frame format across the two
// transports: frames written with WriteFrame read back verbatim with
// ReadFrame, and the stream ends with a clean io.EOF exactly at a frame
// boundary.
func TestStreamFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte(`{"seq":1}`), {}, bytes.Repeat([]byte{0xA5}, 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d round-tripped %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

// TestStreamFrameErrors pins the typed failure surface: a truncated
// stream is io.ErrUnexpectedEOF, a corrupt or oversized frame wraps
// ErrFrame, and an oversized payload is refused at write time.
func TestStreamFrameErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()

	if _, err := ReadFrame(bytes.NewReader(frame[:3])); err != io.ErrUnexpectedEOF {
		t.Errorf("torn header = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2])); err != io.ErrUnexpectedEOF {
		t.Errorf("torn payload = %v, want io.ErrUnexpectedEOF", err)
	}
	flipped := bytes.Clone(frame)
	flipped[len(flipped)-1] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(flipped)); !errors.Is(err, ErrFrame) {
		t.Errorf("flipped payload byte = %v, want ErrFrame", err)
	}
	huge := bytes.Clone(frame)
	binary.BigEndian.PutUint32(huge[0:4], MaxRecordBytes+1)
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized length prefix = %v, want ErrFrame", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxRecordBytes+1)); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized write = %v, want ErrFrame", err)
	}
}

// TestEntriesSinceShipsByteIdentically pins the replication shipping
// contract: EntriesSince returns exactly the records past the watermark,
// and appending their raw payloads with AppendEntry on a second log
// reproduces the primary's journal byte for byte.
func TestEntriesSinceShipsByteIdentically(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.journal")
	log, _, _, err := Open(OSFS{}, src)
	if err != nil {
		t.Fatal(err)
	}
	req := testRequest("s1")
	recs := []Record{
		{Op: OpSetup, Request: &req},
		{Op: OpFailLink, From: "ring00", To: "ring01"},
		{Op: OpTeardown, ID: "s1"},
	}
	for i := range recs {
		if err := log.Append(&recs[i], true); err != nil {
			t.Fatal(err)
		}
	}
	log.Close()

	entries, err := EntriesSince(OSFS{}, src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 2 || entries[1].Seq != 3 {
		t.Fatalf("EntriesSince(1) = %d entries %+v, want seqs 2,3", len(entries), entries)
	}

	dst := filepath.Join(dir, "dst.journal")
	mirror, _, _, err := Open(OSFS{}, dst)
	if err != nil {
		t.Fatal(err)
	}
	all, err := EntriesSince(OSFS{}, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range all {
		if err := mirror.AppendEntry(e.Seq, e.Payload, true); err != nil {
			t.Fatal(err)
		}
	}
	if got := mirror.LastSeq(); got != 3 {
		t.Fatalf("mirror watermark %d, want 3", got)
	}
	mirror.Close()
	srcBytes, err := OSFS{}.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dstBytes, err := OSFS{}.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(srcBytes, dstBytes) {
		t.Fatalf("shipped journal diverges: %d bytes vs %d bytes", len(dstBytes), len(srcBytes))
	}

	// A missing source is an empty backlog, not an error.
	none, err := EntriesSince(OSFS{}, filepath.Join(dir, "absent.journal"), 0)
	if err != nil || none != nil {
		t.Fatalf("EntriesSince on missing file = %v, %v", none, err)
	}
}

// TestForceNextSeqAdoptsLowerNumbering pins the full-resync contract:
// SetNextSeq never lowers the counter (orphaned local records must not
// be renumbered over), while ForceNextSeq — used only after a Reset
// during a full state install — adopts the primary's numbering outright.
func TestForceNextSeqAdoptsLowerNumbering(t *testing.T) {
	log, _, _, err := Open(OSFS{}, filepath.Join(t.TempDir(), "j.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("orphan")
	for i := 0; i < 5; i++ {
		rec := Record{Op: OpSetup, Request: &req}
		if err := log.Append(&rec, false); err != nil {
			t.Fatal(err)
		}
	}
	log.SetNextSeq(3)
	if got := log.LastSeq(); got != 5 {
		t.Fatalf("SetNextSeq lowered the counter: LastSeq %d, want 5", got)
	}
	if err := log.Reset(); err != nil {
		t.Fatal(err)
	}
	log.ForceNextSeq(3)
	if got := log.LastSeq(); got != 2 {
		t.Fatalf("ForceNextSeq(3): LastSeq %d, want 2", got)
	}
	rec := Record{Op: OpTeardown, ID: "orphan"}
	if err := log.Append(&rec, false); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 3 {
		t.Fatalf("append after ForceNextSeq got seq %d, want 3", rec.Seq)
	}
}

// TestApplyToNetworkIdempotent pins the standby-replay contract: every
// op kind applies cleanly to a warm network, re-applying the same record
// is a no-op, and an unknown op is a typed ErrApply.
func TestApplyToNetworkIdempotent(t *testing.T) {
	n := core.NewNetwork(core.HardCDV{})
	for _, name := range []string{"ring00", "ring01"} {
		if _, err := n.AddSwitch(core.SwitchConfig{
			Name: name, QueueCells: map[core.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	req := testRequest("a1")
	steps := []Record{
		{Seq: 1, Op: OpSetup, Request: &req},
		{Seq: 2, Op: OpFailLink, From: "ring00", To: "ring01", Evicted: []core.ConnID{"a1"}},
		{Seq: 3, Op: OpRestoreLink, From: "ring00", To: "ring01"},
	}
	for _, rec := range steps {
		for pass := 0; pass < 2; pass++ {
			if err := ApplyToNetwork(n, rec); err != nil {
				t.Fatalf("apply seq %d pass %d: %v", rec.Seq, pass, err)
			}
		}
	}
	if got := len(n.Connections()); got != 0 {
		t.Fatalf("after evicting fail-link: %d connections, want 0", got)
	}
	if got := len(n.FailedLinks()); got != 0 {
		t.Fatalf("after restore: %d failed links, want 0", got)
	}
	if err := ApplyToNetwork(n, Record{Seq: 9, Op: "mystery"}); !errors.Is(err, ErrApply) {
		t.Fatalf("unknown op = %v, want ErrApply", err)
	}
}
