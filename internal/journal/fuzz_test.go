package journal

import (
	"bytes"
	"testing"

	"atmcac/internal/core"
)

// FuzzJournalReplay feeds arbitrary bytes through the full recovery read
// path: scanning must never panic, the valid prefix must re-encode to the
// same scan result, and replaying the decoded records over an empty base
// must never panic and never produce duplicate connection IDs.
func FuzzJournalReplay(f *testing.F) {
	req := core.ConnRequest{ID: "a", Priority: 1}
	var seed []byte
	for _, rec := range []Record{
		{Seq: 1, Op: OpSetup, Request: &req},
		{Seq: 2, Op: OpFailLink, From: "x", To: "y", Evicted: []core.ConnID{"a"}},
		{Seq: 3, Op: OpRestoreLink, From: "x", To: "y"},
		{Seq: 4, Op: OpTeardown, ID: "a"},
	} {
		frame, err := EncodeFrame(rec)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, frame...)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5]) // torn tail
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 0xde, 0xad, 0xbe, 0xef, 'j', 'u', 'n', 'k'}) // bad CRC
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                                 // absurd length
	f.Fuzz(func(t *testing.T, data []byte) {
		res := ScanBytes(data)
		if res.Valid < 0 || res.Valid > int64(len(data)) {
			t.Fatalf("Valid = %d out of range [0,%d]", res.Valid, len(data))
		}
		if !res.Torn && res.Valid != int64(len(data)) {
			t.Fatalf("not torn but Valid %d != len %d", res.Valid, len(data))
		}
		// The valid prefix must be exactly the re-encoding of its records.
		var reenc []byte
		for _, rec := range res.Records {
			frame, err := EncodeFrame(rec)
			if err != nil {
				t.Fatalf("re-encode decoded record: %v", err)
			}
			reenc = append(reenc, frame...)
		}
		if !bytes.Equal(reenc, data[:res.Valid]) {
			// JSON field order is deterministic for a struct, so a decoded
			// record must re-encode byte-identically unless the input used
			// an alternative encoding of the same record — rescan instead.
			again := ScanBytes(reenc)
			if again.Torn || len(again.Records) != len(res.Records) {
				t.Fatalf("re-encoded prefix does not rescan: torn=%v records=%d want %d",
					again.Torn, len(again.Records), len(res.Records))
			}
		}
		st := Replay(State{}, 0, res.Records)
		seen := make(map[core.ConnID]bool, len(st.Requests))
		for _, r := range st.Requests {
			if seen[r.ID] {
				t.Fatalf("replay produced duplicate connection %q", r.ID)
			}
			seen[r.ID] = true
		}
		links := make(map[core.Link]bool, len(st.FailedLinks))
		for _, l := range st.FailedLinks {
			if links[l] {
				t.Fatalf("replay produced duplicate failed link %v", l)
			}
			links[l] = true
		}
	})
}
