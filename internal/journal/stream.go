package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrFrame reports a malformed frame read from a byte stream: an
// oversized length prefix or a checksum mismatch. Unlike a file scan —
// where a bad frame is a torn tail and simply ends replay — a bad frame
// on a live replication stream is a protocol violation, so stream readers
// surface it as a typed error instead of silently stopping.
var ErrFrame = errors.New("journal: malformed frame")

// WriteFrame writes payload as one frame. Used by the replication stream
// so the wire format is the journal's own frame format: the same CRC that
// detects a torn tail on disk detects corruption in transit.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("%w: payload %d bytes exceeds %d", ErrFrame, len(payload), MaxRecordBytes)
	}
	_, err := w.Write(EncodeRawFrame(payload))
	return err
}

// ReadFrame reads one frame from r and returns its verified payload.
// io.EOF is returned only at a clean frame boundary; an EOF mid-frame
// becomes io.ErrUnexpectedEOF (a truncated stream), and a length or
// checksum violation wraps ErrFrame. The payload is freshly allocated.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxRecordBytes {
		return nil, fmt.Errorf("%w: length %d exceeds %d", ErrFrame, n, MaxRecordBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrame)
	}
	return payload, nil
}
