// Journal-level crash coverage: every append runs through the
// faultinject CrashFS, the process "dies" at each boundary in turn, and
// the file a restart reads must always be a valid prefix of the records
// whose appends were acknowledged. This is the storage half of the
// contract; internal/faultinject's TestCrash* drive the same boundaries
// through a live wire server.
package journal_test

import (
	"os"
	"path/filepath"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/faultinject"
	"atmcac/internal/journal"
)

// appendThrough appends records until the filesystem dies, returning how
// many appends were acknowledged.
func appendThrough(t *testing.T, fsys journal.FS, path string, n int, sync bool) int {
	t.Helper()
	log, _, _, err := journal.Open(fsys, path)
	if err != nil {
		return 0 // the crash landed inside Open itself
	}
	defer log.Close()
	acked := 0
	for i := 0; i < n; i++ {
		rec := journal.Record{Op: journal.OpTeardown, ID: core.ConnID(rune('a' + i))}
		if err := log.Append(&rec, sync); err != nil {
			break
		}
		acked++
	}
	return acked
}

// runJournalCrash sweeps every boundary of an n-append run under the
// given sync mode and loss model, asserting the valid-prefix property:
// scanning after the crash yields some prefix of the appended records,
// at least `floor` of the acked ones, and never an unacked one beyond
// the acked count.
func runJournalCrash(t *testing.T, sync bool, model faultinject.LossModel) {
	const appends = 6
	dry := faultinject.NewCrashFS(-1, model)
	dir := t.TempDir()
	if got := appendThrough(t, dry, filepath.Join(dir, "dry"), appends, sync); got != appends {
		t.Fatalf("dry run acked %d of %d", got, appends)
	}
	boundaries := dry.Boundaries()
	sawTorn := false
	for k := 0; k < boundaries; k++ {
		path := filepath.Join(t.TempDir(), "j")
		cfs := faultinject.NewCrashFS(k, model)
		acked := appendThrough(t, cfs, path, appends, sync)
		if !cfs.Crashed() {
			t.Fatalf("boundary %d not reached", k)
		}
		res, err := journal.ScanFile(journal.OSFS{}, path)
		if err != nil {
			t.Fatalf("boundary %d: scan: %v", k, err)
		}
		if res.Torn {
			sawTorn = true
		}
		got := len(res.Records)
		if got > acked+1 {
			// At most the in-flight record (acked later refused) may
			// survive beyond the acked set — and only in KeepAll, where a
			// completed write persists even though its sync failed.
			t.Errorf("boundary %d: %d records survived, only %d acked", k, got, acked)
		}
		if sync && model == faultinject.DropUnsynced && got != acked {
			t.Errorf("boundary %d: synced journal has %d records, %d were acked", k, got, acked)
		}
		for i, rec := range res.Records {
			if want := uint64(i + 1); rec.Seq != want {
				t.Errorf("boundary %d: record %d has seq %d, want %d", k, i, rec.Seq, want)
			}
		}
	}
	if model == faultinject.TearUnsynced && !sawTorn {
		t.Error("tearing loss model never left a torn tail")
	}
}

func TestCrashJournalAppendSynced(t *testing.T) {
	runJournalCrash(t, true, faultinject.DropUnsynced)
}

func TestCrashJournalAppendTorn(t *testing.T) {
	runJournalCrash(t, true, faultinject.TearUnsynced)
}

func TestCrashJournalAppendProcessKill(t *testing.T) {
	runJournalCrash(t, false, faultinject.KeepAll)
}

// TestCrashTornRepairBoundaries kills the torn-tail repair itself (the
// evidence write and the truncate) and checks a later clean open still
// recovers every valid record.
func TestCrashTornRepairBoundaries(t *testing.T) {
	mkTorn := func(t *testing.T) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "j")
		log, _, _, err := journal.Open(journal.OSFS{}, path)
		if err != nil {
			t.Fatal(err)
		}
		rec := journal.Record{Op: journal.OpTeardown, ID: "a"}
		if err := log.Append(&rec, true); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		f, err := journal.OSFS{}.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("residue")); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Repair executes two boundaries: the evidence WriteFile, then the
	// truncate. Kill each.
	for k := 0; k < 2; k++ {
		path := mkTorn(t)
		cfs := faultinject.NewCrashFS(k, faultinject.KeepAll)
		if _, _, _, err := journal.Open(cfs, path); err == nil {
			t.Fatalf("boundary %d: open through dying repair succeeded", k)
		}
		log, res, tornPath, err := journal.Open(journal.OSFS{}, path)
		if err != nil {
			t.Fatalf("boundary %d: clean reopen: %v", k, err)
		}
		if len(res.Records) != 1 || res.Records[0].ID != "a" {
			t.Fatalf("boundary %d: reopen records = %+v", k, res.Records)
		}
		// Whether the interrupted attempt already truncated decides if
		// this open still saw the tear; either way the log is clean now.
		_ = tornPath
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
