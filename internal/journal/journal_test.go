package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

func testRequest(id string) core.ConnRequest {
	return core.ConnRequest{
		ID:       core.ConnID(id),
		Spec:     traffic.CBR(0.05),
		Priority: 1,
		Route: core.Route{
			{Switch: "ring00", In: 1, Out: 0},
			{Switch: "ring01", In: 0, Out: 0},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	req := testRequest("a")
	recs := []Record{
		{Seq: 1, Op: OpSetup, Request: &req},
		{Seq: 2, Op: OpTeardown, ID: "a"},
		{Seq: 3, Op: OpFailLink, From: "ring00", To: "ring01",
			Evicted: []core.ConnID{"a", "b"}, Readmitted: []core.ConnRequest{req}},
		{Seq: 4, Op: OpRestoreLink, From: "ring00", To: "ring01"},
	}
	var image []byte
	for _, rec := range recs {
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatal(err)
		}
		image = append(image, frame...)
	}
	res := ScanBytes(image)
	if res.Torn {
		t.Fatal("clean image scanned as torn")
	}
	if res.Valid != int64(len(image)) {
		t.Fatalf("Valid = %d, want %d", res.Valid, len(image))
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(res.Records), len(recs))
	}
	for i, rec := range res.Records {
		if rec.Seq != recs[i].Seq || rec.Op != recs[i].Op {
			t.Errorf("record %d = %+v, want %+v", i, rec, recs[i])
		}
	}
	if res.Records[2].Readmitted[0].ID != "a" || len(res.Records[2].Evicted) != 2 {
		t.Errorf("fail-link payload mangled: %+v", res.Records[2])
	}
}

func TestScanBytesStopsAtDamage(t *testing.T) {
	req := testRequest("a")
	good, err := EncodeFrame(Record{Seq: 1, Op: OpSetup, Request: &req})
	if err != nil {
		t.Fatal(err)
	}
	second, err := EncodeFrame(Record{Seq: 2, Op: OpTeardown, ID: "a"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated header", append(append([]byte(nil), good...), second[:4]...)},
		{"truncated payload", append(append([]byte(nil), good...), second[:len(second)-3]...)},
		{"flipped payload byte", func() []byte {
			d := append(append([]byte(nil), good...), second...)
			d[len(good)+9] ^= 0xff
			return d
		}()},
		{"oversized length", func() []byte {
			d := append([]byte(nil), good...)
			return append(d, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := ScanBytes(tc.data)
			if !res.Torn {
				t.Fatal("damage not reported as torn")
			}
			if res.Valid != int64(len(good)) {
				t.Fatalf("Valid = %d, want %d", res.Valid, len(good))
			}
			if len(res.Records) != 1 || res.Records[0].Seq != 1 {
				t.Fatalf("records = %+v, want only seq 1", res.Records)
			}
		})
	}
}

func TestOpenRepairsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j")
	req := testRequest("a")
	frame, err := EncodeFrame(Record{Seq: 1, Op: OpSetup, Request: &req})
	if err != nil {
		t.Fatal(err)
	}
	image := append(append([]byte(nil), frame...), []byte("torn-residue")...)
	if err := os.WriteFile(path, image, 0o600); err != nil {
		t.Fatal(err)
	}
	log, res, tornPath, err := Open(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if tornPath != path+".torn" {
		t.Fatalf("tornPath = %q, want %q", tornPath, path+".torn")
	}
	evidence, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(evidence) != string(image) {
		t.Error("torn evidence does not preserve the damaged image")
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(repaired)) != res.Valid || res.Valid != int64(len(frame)) {
		t.Fatalf("repaired length %d, scan valid %d, want %d", len(repaired), res.Valid, len(frame))
	}
	// A second tear must get a fresh evidence path, not overwrite the first.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, image, 0o600); err != nil {
		t.Fatal(err)
	}
	log2, _, tornPath2, err := Open(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if tornPath2 != path+".torn.1" {
		t.Fatalf("second tornPath = %q, want %q", tornPath2, path+".torn.1")
	}
}

func TestAppendSequencesAndReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	log, _, _, err := Open(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("a")
	for i := 0; i < 3; i++ {
		if err := log.Append(&Record{Op: OpSetup, Request: &req}, true); err != nil {
			t.Fatal(err)
		}
	}
	if log.Count() != 3 || log.LastSeq() != 3 {
		t.Fatalf("count=%d lastSeq=%d, want 3 and 3", log.Count(), log.LastSeq())
	}
	if err := log.Reset(); err != nil {
		t.Fatal(err)
	}
	if log.Count() != 0 || log.Size() != 0 {
		t.Fatalf("after reset: count=%d size=%d", log.Count(), log.Size())
	}
	// Sequence numbers keep counting across the reset — the snapshot
	// watermark depends on it.
	rec := Record{Op: OpTeardown, ID: "a"}
	if err := log.Append(&rec, false); err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 4 {
		t.Fatalf("post-reset seq = %d, want 4", rec.Seq)
	}
	// Reopen resumes past the highest on-disk sequence.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	log2, res, _, err := Open(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(res.Records) != 1 || res.Records[0].Seq != 4 {
		t.Fatalf("reopened records = %+v", res.Records)
	}
	next := Record{Op: OpTeardown, ID: "b"}
	if err := log2.Append(&next, false); err != nil {
		t.Fatal(err)
	}
	if next.Seq != 5 {
		t.Fatalf("reopened next seq = %d, want 5", next.Seq)
	}
}

// failFile fails writes/syncs/truncates on demand to drive Append's
// self-heal path.
type failFile struct {
	File
	failWrite, failTruncate, failSync bool
}

type errString string

func (e errString) Error() string { return string(e) }

func (f *failFile) Write(p []byte) (int, error) {
	if f.failWrite {
		// Model a partial write: half the frame lands, then the disk dies.
		n, _ := f.File.Write(p[:len(p)/2])
		return n, errString("disk died")
	}
	return f.File.Write(p)
}

func (f *failFile) Truncate(size int64) error {
	if f.failTruncate {
		return errString("disk died")
	}
	return f.File.Truncate(size)
}

func (f *failFile) Sync() error {
	if f.failSync {
		return errString("disk died")
	}
	return f.File.Sync()
}

type failFS struct {
	FS
	file *failFile
}

func (f *failFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f.file = &failFile{File: inner}
	return f.file, nil
}

func TestAppendHealsPartialWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	fsys := &failFS{FS: OSFS{}}
	log, _, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("a")
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err != nil {
		t.Fatal(err)
	}
	good := log.Size()
	fsys.file.failWrite = true
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err == nil {
		t.Fatal("append with dying disk succeeded")
	}
	fsys.file.failWrite = false
	// The partial frame was truncated away; the log keeps accepting.
	if log.Size() != good {
		t.Fatalf("size after heal = %d, want %d", log.Size(), good)
	}
	rec := Record{Op: OpTeardown, ID: "a"}
	if err := log.Append(&rec, false); err != nil {
		t.Fatal(err)
	}
	res, err := ScanFile(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Records) != 2 {
		t.Fatalf("scan after heal: torn=%v records=%d, want clean 2", res.Torn, len(res.Records))
	}
}

func TestAppendMarksBrokenWhenHealFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	fsys := &failFS{FS: OSFS{}}
	log, _, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("a")
	fsys.file.failWrite = true
	fsys.file.failTruncate = true
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err == nil {
		t.Fatal("append with dying disk succeeded")
	}
	fsys.file.failWrite = false
	fsys.file.failTruncate = false
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("append on broken log = %v, want ErrBroken", err)
	}
	if err := log.Reset(); err == nil {
		t.Fatal("reset on broken log succeeded")
	}
}

// A failed fsync breaks the log for good: on Linux the failure can drop
// the dirty pages while clearing the kernel error state, so a later
// successful fsync on the same fd proves nothing about earlier content.
// The log must refuse further appends until reopened.
func TestAppendSyncFailureBreaksLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	fsys := &failFS{FS: OSFS{}}
	log, _, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("a")
	fsys.file.failSync = true
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, true); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	fsys.file.failSync = false
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, true); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("append after fsync failure = %v, want ErrBroken", err)
	}
	// The unsynced frame was healed away, so a rescan after reopen sees a
	// clean, empty log rather than a record the caller was told failed.
	res, err := ScanFile(OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn || len(res.Records) != 0 {
		t.Fatalf("scan after fsync failure: torn=%v records=%d, want clean 0", res.Torn, len(res.Records))
	}
}

// Reset must account for a successful Truncate(0) even when the fsync
// behind it fails: with stale size/count a later heal() would truncate to
// the old (too large) offset and leave a torn frame mid-file, silently
// ending replay early. The partial reset also breaks the log — the
// truncate's durability is unknown.
func TestResetSyncFailureKeepsSizeAccurate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	fsys := &failFS{FS: OSFS{}}
	log, _, _, err := Open(fsys, path)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	req := testRequest("a")
	for i := 0; i < 3; i++ {
		if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err != nil {
			t.Fatal(err)
		}
	}
	fsys.file.failSync = true
	if err := log.Reset(); err == nil {
		t.Fatal("reset with failing fsync succeeded")
	}
	fsys.file.failSync = false
	if log.Size() != 0 || log.Count() != 0 {
		t.Fatalf("size/count after partial reset = %d/%d, want 0/0", log.Size(), log.Count())
	}
	if err := log.Append(&Record{Op: OpSetup, Request: &req}, false); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("append after partial reset = %v, want ErrBroken", err)
	}
}

func TestReplayWatermarkAndIdempotence(t *testing.T) {
	a, b, c := testRequest("a"), testRequest("b"), testRequest("c")
	base := State{Requests: []core.ConnRequest{a}}
	recs := []Record{
		{Seq: 1, Op: OpSetup, Request: &a}, // at watermark: skipped
		{Seq: 2, Op: OpSetup, Request: &b},
		{Seq: 3, Op: OpSetup, Request: &c},
		{Seq: 4, Op: OpFailLink, From: "ring00", To: "ring01",
			Evicted: []core.ConnID{"b"}, Readmitted: []core.ConnRequest{c}},
		{Seq: 5, Op: OpTeardown, ID: "missing"}, // removing the unknown is a no-op
	}
	got := Replay(base, 1, recs)
	ids := make([]string, 0, len(got.Requests))
	for _, req := range got.Requests {
		ids = append(ids, string(req.ID))
	}
	if strings.Join(ids, ",") != "a,c" {
		t.Fatalf("replayed ids = %v, want [a c]", ids)
	}
	if len(got.FailedLinks) != 1 || got.FailedLinks[0].From != "ring00" {
		t.Fatalf("failed links = %+v", got.FailedLinks)
	}
	// Replaying the same records again over the result changes nothing —
	// the property that makes a crash between snapshot rename and journal
	// truncation harmless.
	again := Replay(got, 1, recs)
	if len(again.Requests) != len(got.Requests) || len(again.FailedLinks) != len(got.FailedLinks) {
		t.Fatalf("replay not idempotent: %+v then %+v", got, again)
	}
	// Restore clears the link again.
	restored := Replay(got, 1, []Record{{Seq: 6, Op: OpRestoreLink, From: "ring00", To: "ring01"}})
	if len(restored.FailedLinks) != 0 {
		t.Fatalf("restore left failed links: %+v", restored.FailedLinks)
	}
}

func TestEvidencePathCounts(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "f.corrupt")
	if got := EvidencePath(OSFS{}, base); got != base {
		t.Fatalf("fresh evidence path = %q, want %q", got, base)
	}
	if err := os.WriteFile(base, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if got := EvidencePath(OSFS{}, base); got != base+".1" {
		t.Fatalf("second evidence path = %q, want %q", got, base+".1")
	}
	if err := os.WriteFile(base+".1", nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if got := EvidencePath(OSFS{}, base); got != base+".2" {
		t.Fatalf("third evidence path = %q, want %q", got, base+".2")
	}
}
