package sim

import (
	"errors"
	"fmt"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

func TestAddSwitchValidation(t *testing.T) {
	n := New()
	if _, err := n.AddSwitch("", map[Priority]int{1: 8}); !errors.Is(err, ErrConfig) {
		t.Errorf("empty name error = %v", err)
	}
	if _, err := n.AddSwitch("a", nil); !errors.Is(err, ErrConfig) {
		t.Errorf("no queues error = %v", err)
	}
	if _, err := n.AddSwitch("a", map[Priority]int{0: 8}); !errors.Is(err, ErrConfig) {
		t.Errorf("bad priority error = %v", err)
	}
	if _, err := n.AddSwitch("a", map[Priority]int{1: 0}); !errors.Is(err, ErrConfig) {
		t.Errorf("zero capacity error = %v", err)
	}
	if _, err := n.AddSwitch("a", map[Priority]int{1: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddSwitch("a", map[Priority]int{1: 8}); !errors.Is(err, ErrConfig) {
		t.Errorf("duplicate name error = %v", err)
	}
}

func TestSetRouteValidation(t *testing.T) {
	n := New()
	sw, err := n.AddSwitch("a", map[Priority]int{1: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetRoute(7, 0, 2); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown priority error = %v", err)
	}
	if err := sw.SetRoute(7, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetRoute(7, 1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("duplicate VC error = %v", err)
	}
}

func TestLinkValidation(t *testing.T) {
	n := New()
	a, _ := n.AddSwitch("a", map[Priority]int{1: 8})
	b, _ := n.AddSwitch("b", map[Priority]int{1: 8})
	if err := n.Link(nil, 0, b, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("nil switch error = %v", err)
	}
	if err := n.Link(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Link(a, 0, b, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("double link error = %v", err)
	}
}

func TestAddSourceValidation(t *testing.T) {
	n := New()
	if err := n.AddSource(SourceConfig{VC: 1, Spec: traffic.CBR(0.5)}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil dest error = %v", err)
	}
	sw, _ := n.AddSwitch("a", map[Priority]int{1: 8})
	if err := n.AddSource(SourceConfig{VC: 1, Spec: traffic.VBR(0, 0, 0), Dest: sw}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRunUnroutedVC(t *testing.T) {
	n := New()
	sw, _ := n.AddSwitch("a", map[Priority]int{1: 8})
	if err := n.AddSource(SourceConfig{VC: 1, Spec: traffic.CBR(0.5), Dest: sw}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(10); !errors.Is(err, ErrRouting) {
		t.Fatalf("Run error = %v, want ErrRouting", err)
	}
}

// oneSwitch builds a switch with k greedy CBR sources on one output port
// delivering straight to sinks.
func oneSwitch(t *testing.T, k int, pcr float64, queueCap int, mode SourceMode) *Network {
	t.Helper()
	n := New()
	sw, err := n.AddSwitch("sw", map[Priority]int{1: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	for vc := 0; vc < k; vc++ {
		if err := sw.SetRoute(vc, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(SourceConfig{
			VC: vc, Spec: traffic.CBR(pcr), Dest: sw, InPort: vc, Mode: mode, Seed: int64(vc),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func TestSingleSourceNoQueueing(t *testing.T) {
	n := oneSwitch(t, 1, 0.25, 64, Greedy)
	stats, err := n.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	vs := stats.PerVC[0]
	if vs.Cells == 0 {
		t.Fatal("no cells delivered")
	}
	if vs.MaxDelay != 0 {
		t.Errorf("single conforming source max delay = %d, want 0", vs.MaxDelay)
	}
	// Throughput approximates PCR.
	want := 0.25 * 1000
	if float64(vs.Cells) < want-2 || float64(vs.Cells) > want+2 {
		t.Errorf("delivered %d cells, want about %g", vs.Cells, want)
	}
}

// TestSimultaneousBurstDelay: k sources emitting their first cell in slot 0
// share one output port; the last cell of the batch waits k-1 slots, exactly
// the analytic bound for distinct-link CBR multiplexing.
func TestSimultaneousBurstDelay(t *testing.T) {
	const k = 8
	n := oneSwitch(t, k, 0.05, 64, Greedy)
	stats, err := n.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	worst := uint64(0)
	for vc := 0; vc < k; vc++ {
		if d := stats.PerVC[vc].MaxDelay; d > worst {
			worst = d
		}
	}
	if worst != k-1 {
		t.Errorf("worst measured delay = %d, want %d", worst, k-1)
	}
	q := stats.Queues[QueueKey("sw", 0, 1)]
	if q.MaxOccupancy != k-1 {
		t.Errorf("max occupancy = %d, want %d (one cell in the transmitter)", q.MaxOccupancy, k-1)
	}
	if q.Drops != 0 {
		t.Errorf("drops = %d, want 0", q.Drops)
	}
}

// TestMeasuredDelayWithinAnalyticBound drives the same scenario through the
// CAC engine and the simulator: for every conforming schedule the measured
// delay must stay within the computed bound.
func TestMeasuredDelayWithinAnalyticBound(t *testing.T) {
	const k = 12
	spec := traffic.VBR(0.5, 0.02, 6)
	// Analytic bound: k connections on distinct input links, one port.
	cac, err := core.NewSwitch(core.SwitchConfig{Name: "sw", QueueCells: map[core.Priority]float64{1: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if _, err := cac.Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("c%d", i)), Spec: spec,
			In: core.PortID(i), Out: 0, Priority: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	bound, err := cac.ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	backlog, err := cac.MaxBacklog(0, 1)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []SourceMode{Greedy, Random} {
		n := New()
		sw, err := n.AddSwitch("sw", map[Priority]int{1: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < k; vc++ {
			if err := sw.SetRoute(vc, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(SourceConfig{
				VC: vc, Spec: spec, Dest: sw, InPort: vc, Mode: mode, Seed: int64(vc * 31),
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(20000)
		if err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < k; vc++ {
			if d := float64(stats.PerVC[vc].MaxDelay); d > bound+1e-9 {
				t.Errorf("mode %d: VC %d measured delay %g exceeds analytic bound %g", mode, vc, d, bound)
			}
		}
		q := stats.Queues[QueueKey("sw", 0, 1)]
		if float64(q.MaxOccupancy) > backlog+1+1e-9 {
			t.Errorf("mode %d: occupancy %d exceeds analytic backlog %g (+1 in-service cell)",
				mode, q.MaxOccupancy, backlog)
		}
	}
}

// TestGreedyBurstApproachesBound: with every source greedy from slot 0, the
// measured worst delay should come close to the analytic worst case (the
// envelope's adversarial pattern), demonstrating the bound is not wildly
// loose for CBR multiplexing.
func TestGreedyBurstApproachesBound(t *testing.T) {
	const k = 16
	n := oneSwitch(t, k, 0.02, 64, Greedy)
	stats, err := n.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	worst := uint64(0)
	for vc := 0; vc < k; vc++ {
		if d := stats.PerVC[vc].MaxDelay; d > worst {
			worst = d
		}
	}
	// Analytic bound for k simultaneous unit-rate cells is k-1.
	if worst < k-1-1 {
		t.Errorf("greedy worst delay %d far below analytic bound %d", worst, k-1)
	}
}

// TestPriorityService: high-priority cells preempt service of low-priority
// queues; the low-priority connection sees strictly larger delays.
func TestPriorityService(t *testing.T) {
	n := New()
	sw, err := n.AddSwitch("sw", map[Priority]int{1: 64, 2: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Two heavy high-priority bursts plus one low-priority connection.
	for vc := 0; vc < 2; vc++ {
		if err := sw.SetRoute(vc, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(SourceConfig{
			VC: vc, Spec: traffic.VBR(0.5, 0.05, 16), Dest: sw, InPort: vc,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.SetRoute(9, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(SourceConfig{
		VC: 9, Spec: traffic.VBR(0.5, 0.05, 16), Dest: sw, InPort: 9,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	low := stats.PerVC[9].MaxDelay
	high := stats.PerVC[0].MaxDelay
	if h := stats.PerVC[1].MaxDelay; h > high {
		high = h
	}
	if low <= high {
		t.Errorf("low-priority max delay %d not above high-priority %d", low, high)
	}
}

// TestQueueDropsWhenFull: a 4-cell queue fed by 8 simultaneous bursts must
// drop cells, and delivered cells never saw more than capacity-1 queueing.
func TestQueueDropsWhenFull(t *testing.T) {
	n := oneSwitch(t, 8, 0.02, 4, Greedy)
	stats, err := n.Run(2000)
	if err != nil {
		t.Fatal(err)
	}
	q := stats.Queues[QueueKey("sw", 0, 1)]
	if q.Drops == 0 {
		t.Error("no drops despite overload burst")
	}
	if q.MaxOccupancy > 4 {
		t.Errorf("occupancy %d exceeds capacity 4", q.MaxOccupancy)
	}
	for vc := 0; vc < 8; vc++ {
		if d := stats.PerVC[vc].MaxDelay; d > 4 {
			t.Errorf("VC %d delay %d exceeds what a 4-cell queue can impose", vc, d)
		}
	}
}

// TestTandemAccumulatesDelay: two switches in tandem; the competing cross
// traffic at each hop makes total delay exceed any single hop's.
func TestTandemAccumulatesDelay(t *testing.T) {
	n := New()
	a, err := n.AddSwitch("a", map[Priority]int{1: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddSwitch("b", map[Priority]int{1: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Link(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	// VC 1 traverses a then b; cross traffic VC 2 shares a's port 0 link
	// and exits at b via port 1; VC 3 enters at b directly.
	if err := a.SetRoute(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetRoute(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRoute(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetRoute(2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.SetRoute(3, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Bursty cross traffic is registered first so its cells enqueue ahead
	// of the probe VC within a slot.
	for _, s := range []SourceConfig{
		{VC: 2, Spec: traffic.VBR(1, 0.1, 10), Dest: a, InPort: 2},
		{VC: 3, Spec: traffic.VBR(1, 0.1, 10), Dest: b, InPort: 2},
		{VC: 1, Spec: traffic.CBR(0.2), Dest: a, InPort: 1},
	} {
		if err := n.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PerVC[1].Cells == 0 {
		t.Fatal("tandem VC delivered nothing")
	}
	if stats.PerVC[1].MaxDelay < 1 {
		t.Errorf("tandem VC max delay = %d, want >= 1 (queued at both hops)", stats.PerVC[1].MaxDelay)
	}
	// Per-hop max delays exist at both switches.
	if stats.Queues[QueueKey("a", 0, 1)].MaxDelay == 0 && stats.Queues[QueueKey("b", 0, 1)].MaxDelay == 0 {
		t.Error("no queueing observed at either hop")
	}
}

func TestSourceMaxCells(t *testing.T) {
	n := New()
	sw, _ := n.AddSwitch("sw", map[Priority]int{1: 8})
	if err := sw.SetRoute(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(SourceConfig{
		VC: 1, Spec: traffic.CBR(0.5), Dest: sw, MaxCells: 7,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.PerVC[1].Cells; got != 7 {
		t.Errorf("delivered %d cells, want 7", got)
	}
}

func TestSourceStartOffset(t *testing.T) {
	n := New()
	sw, _ := n.AddSwitch("sw", map[Priority]int{1: 8})
	if err := sw.SetRoute(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(SourceConfig{
		VC: 1, Spec: traffic.CBR(1), Dest: sw, Start: 500, MaxCells: 10,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(505)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.PerVC[1].Cells; got != 5 {
		t.Errorf("delivered %d cells by slot 505 with start 500, want 5", got)
	}
}

func TestVCStatsMeanDelay(t *testing.T) {
	s := VCStats{Cells: 4, TotalDelay: 10}
	if got := s.MeanDelay(); got != 2.5 {
		t.Errorf("MeanDelay = %g, want 2.5", got)
	}
	if got := (VCStats{}).MeanDelay(); got != 0 {
		t.Errorf("empty MeanDelay = %g, want 0", got)
	}
}

// TestSelfCheckPassesForConformingSources: every built-in source mode
// (greedy, random, jittered) generates within its contract.
func TestSelfCheckPassesForConformingSources(t *testing.T) {
	n := New()
	sw, err := n.AddSwitch("sw", map[Priority]int{1: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []SourceConfig{
		{VC: 0, Spec: traffic.VBR(0.5, 0.05, 8), Mode: Greedy},
		{VC: 1, Spec: traffic.VBR(0.5, 0.05, 8), Mode: Random, Seed: 3},
		{VC: 2, Spec: traffic.CBR(0.2), Mode: Greedy, JitterWindow: 16},
	}
	for _, cfg := range cfgs {
		cfg.Dest = sw
		cfg.SelfCheck = true
		if err := sw.SetRoute(cfg.VC, 100+cfg.VC, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(cfg); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	for vc := 0; vc < 3; vc++ {
		if stats.PerVC[vc].Cells == 0 {
			t.Errorf("VC %d delivered nothing", vc)
		}
	}
}

func TestSelfCheckInvalidSpec(t *testing.T) {
	n := New()
	sw, _ := n.AddSwitch("sw", map[Priority]int{1: 8})
	if err := n.AddSource(SourceConfig{
		VC: 1, Spec: traffic.VBR(0, 0, 0), Dest: sw, SelfCheck: true,
	}); err == nil {
		t.Fatal("invalid spec accepted with self-check")
	}
}

// TestFilteringEffectPhysically reproduces the paper's filtering effect in
// the cell domain: the same connections reaching a bottleneck through one
// shared upstream link arrive pre-serialized (rate <= 1), so the bottleneck
// itself sees far less queueing than when they arrive on distinct links and
// burst simultaneously. This is the physical counterpart of the analytic
// TestFilteringEffectOfSharedLink in internal/core.
func TestFilteringEffectPhysically(t *testing.T) {
	const k = 10
	run := func(shared bool) uint64 {
		n := New()
		bottleneck, err := n.AddSwitch("bottleneck", map[Priority]int{1: 64})
		if err != nil {
			t.Fatal(err)
		}
		dest := bottleneck
		if shared {
			mux, err := n.AddSwitch("mux", map[Priority]int{1: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := n.Link(mux, 0, bottleneck, 0); err != nil {
				t.Fatal(err)
			}
			for vc := 0; vc < k; vc++ {
				if err := mux.SetRoute(vc, 0, 1); err != nil {
					t.Fatal(err)
				}
			}
			dest = mux
		}
		for vc := 0; vc < k; vc++ {
			if err := bottleneck.SetRoute(vc, 100, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(SourceConfig{
				VC: vc, Spec: traffic.CBR(0.05), Dest: dest, InPort: vc,
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(5000)
		if err != nil {
			t.Fatal(err)
		}
		q := stats.Queues[QueueKey("bottleneck", 100, 1)]
		return q.MaxDelay
	}
	distinct, sharedLink := run(false), run(true)
	if sharedLink != 0 {
		t.Errorf("pre-filtered arrivals queued %d slots at the bottleneck, want 0", sharedLink)
	}
	if distinct < k-2 {
		t.Errorf("distinct-link arrivals queued only %d slots, want about %d", distinct, k-1)
	}
}

func TestSetPathValidation(t *testing.T) {
	n := New()
	sw, err := n.AddSwitch("a", map[Priority]int{1: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetPath(1, nil); !errors.Is(err, ErrConfig) {
		t.Errorf("empty path error = %v", err)
	}
	if err := n.SetPath(1, []PathHop{{Switch: nil, Out: 0, Prio: 1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("nil switch error = %v", err)
	}
	if err := n.SetPath(1, []PathHop{{Switch: sw, Out: 0, Prio: 9}}); !errors.Is(err, ErrConfig) {
		t.Errorf("unknown priority error = %v", err)
	}
	if err := n.SetPath(1, []PathHop{{Switch: sw, Out: 0, Prio: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.SetPath(1, []PathHop{{Switch: sw, Out: 0, Prio: 1}}); !errors.Is(err, ErrConfig) {
		t.Errorf("duplicate path error = %v", err)
	}
}

func TestSetPathMismatchedSwitch(t *testing.T) {
	n := New()
	a, _ := n.AddSwitch("a", map[Priority]int{1: 8})
	b, _ := n.AddSwitch("b", map[Priority]int{1: 8})
	// The path claims the cell starts at b, but the source feeds a.
	if err := n.SetPath(1, []PathHop{{Switch: b, Out: 0, Prio: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(SourceConfig{VC: 1, Spec: traffic.CBR(0.5), Dest: a}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(10); !errors.Is(err, ErrRouting) {
		t.Fatalf("Run error = %v, want ErrRouting", err)
	}
}

// TestSetPathRevisitsSwitch: a source-routed VC legitimately visits the same
// switch twice via different ports — the wrapped-ring pattern.
func TestSetPathRevisitsSwitch(t *testing.T) {
	n := New()
	a, err := n.AddSwitch("a", map[Priority]int{1: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddSwitch("b", map[Priority]int{1: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Link(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Link(b, 0, a, 1); err != nil {
		t.Fatal(err)
	}
	// a -> b -> a -> sink.
	if err := n.SetPath(1, []PathHop{
		{Switch: a, Out: 0, Prio: 1},
		{Switch: b, Out: 0, Prio: 1},
		{Switch: a, Out: 100, Prio: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddSource(SourceConfig{VC: 1, Spec: traffic.CBR(0.25), Dest: a, MaxCells: 10}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.PerVC[1].Cells; got != 10 {
		t.Fatalf("delivered %d cells over the revisiting path, want 10", got)
	}
}
