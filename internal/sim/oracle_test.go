package sim

import (
	"context"
	"fmt"
	"math"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// These tests pin the simulator as a delay-bound oracle on cases small
// enough to compute by hand from the paper's bit-stream algebra, so the
// hypothesis harness can trust "measured <= computed bound" as evidence:
// the analytic side must equal the closed form, and the greedy simulation
// must realize the worst case exactly where the bound is tight.

// TestOracleSinglePortContention: n CBR(1/n) sources share one output
// port. The closed form is immediate: in the worst case all n cells of a
// frame arrive in the same slot, the last departs n-1 slots later, so
// D'(port) = n-1 cell times — and greedy sources, which all emit at slot
// 0, realize exactly that.
func TestOracleSinglePortContention(t *testing.T) {
	for _, n := range []int{2, 3} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			// Analytic side: admit the set, read the port bound.
			coreNet := core.NewNetwork(core.HardCDV{})
			coreSw, err := coreNet.AddSwitch(core.SwitchConfig{
				Name:       "a",
				QueueCells: map[core.Priority]float64{1: 8},
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := coreNet.Setup(context.Background(), core.ConnRequest{
					ID:       core.ConnID(fmt.Sprintf("cbr-%d", i)),
					Spec:     traffic.CBR(1 / float64(n)),
					Priority: 1,
					Route:    core.Route{{Switch: "a", In: core.PortID(i + 1), Out: 0}},
				}); err != nil {
					t.Fatal(err)
				}
			}
			bound, err := coreSw.ComputedBound(0, 1)
			if err != nil {
				t.Fatal(err)
			}
			if want := float64(n - 1); bound != want {
				t.Fatalf("analytic port bound = %g, want closed form n-1 = %g", bound, want)
			}

			// Simulation side: the same set, greedy conforming sources.
			simNet := New()
			a, err := simNet.AddSwitch("a", map[Priority]int{1: 8})
			if err != nil {
				t.Fatal(err)
			}
			sink, err := simNet.AddSwitch("sink", map[Priority]int{1: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := simNet.Link(a, 0, sink, 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if err := a.SetRoute(i, 0, 1); err != nil {
					t.Fatal(err)
				}
				if err := sink.SetRoute(i, 10+i, 1); err != nil {
					t.Fatal(err)
				}
				err := simNet.AddSource(SourceConfig{
					VC: i, Spec: traffic.CBR(1 / float64(n)),
					Dest: a, InPort: i + 1, Mode: Greedy, SelfCheck: true,
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			stats, err := simNet.Run(4000)
			if err != nil {
				t.Fatal(err)
			}
			qs := stats.Queues[QueueKey("a", 0, 1)]
			if float64(qs.MaxDelay) > bound {
				t.Errorf("measured max delay %d exceeds analytic bound %g", qs.MaxDelay, bound)
			}
			if qs.MaxDelay != uint64(n-1) {
				t.Errorf("measured max delay = %d, want %d (greedy sources realize the worst case)",
					qs.MaxDelay, n-1)
			}
			// All n cells land in one slot, one departs immediately, so the
			// queue peaks at n-1 — matching the bound's "n-1 slots of wait".
			if qs.MaxOccupancy != n-1 {
				t.Errorf("max occupancy = %d, want %d", qs.MaxOccupancy, n-1)
			}
			if qs.Drops != 0 {
				t.Errorf("%d drops in an admitted workload", qs.Drops)
			}
			for vc := 0; vc < n; vc++ {
				if stats.PerVC[vc].Cells == 0 {
					t.Errorf("vc %d delivered no cells", vc)
				}
			}
		})
	}
}

// TestOracleThreeNodeChainCrossTraffic: vc1 (CBR 1/4) crosses a -> b -> c
// and meets vc2 (CBR 1/4) at b's ring port. Hop a is uncontended, so its
// computed bound is 0. At hop b the transit stream carries the CDV
// accumulated at hop a — the full 8-cell guaranteed bound — so the
// bit-stream algebra clumps the first ceil(CDV/T)+1 = 3 cells of vc1 into
// one burst against vc2's frame and prices the port at 5/3 cell times.
// The greedy replay must stay within both per-hop bounds with no drops.
func TestOracleThreeNodeChainCrossTraffic(t *testing.T) {
	coreNet := core.NewNetwork(core.HardCDV{})
	coreSws := map[string]*core.Switch{}
	for _, name := range []string{"a", "b", "c"} {
		sw, err := coreNet.AddSwitch(core.SwitchConfig{
			Name:       name,
			QueueCells: map[core.Priority]float64{1: 8},
		})
		if err != nil {
			t.Fatal(err)
		}
		coreSws[name] = sw
	}
	if _, err := coreNet.Setup(context.Background(), core.ConnRequest{
		ID: "vc1", Spec: traffic.CBR(0.25), Priority: 1,
		Route: core.Route{
			{Switch: "a", In: 1, Out: 0},
			{Switch: "b", In: 0, Out: 0},
			{Switch: "c", In: 0, Out: 5},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := coreNet.Setup(context.Background(), core.ConnRequest{
		ID: "vc2", Spec: traffic.CBR(0.25), Priority: 1,
		Route: core.Route{
			{Switch: "b", In: 1, Out: 0},
			{Switch: "c", In: 0, Out: 6},
		},
	}); err != nil {
		t.Fatal(err)
	}
	boundA, err := coreSws["a"].ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if boundA != 0 {
		t.Errorf("uncontended hop a bound = %g, want 0", boundA)
	}
	boundB, err := coreSws["b"].ComputedBound(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boundB-5.0/3) > 1e-9 {
		t.Errorf("contended hop b bound = %g, want closed form 5/3", boundB)
	}

	simNet := New()
	sims := map[string]*Switch{}
	for _, name := range []string{"a", "b", "c"} {
		sw, err := simNet.AddSwitch(name, map[Priority]int{1: 8})
		if err != nil {
			t.Fatal(err)
		}
		sims[name] = sw
	}
	if err := simNet.Link(sims["a"], 0, sims["b"], 0); err != nil {
		t.Fatal(err)
	}
	if err := simNet.Link(sims["b"], 0, sims["c"], 0); err != nil {
		t.Fatal(err)
	}
	for sw, routes := range map[string]map[int]int{
		"a": {1: 0},
		"b": {1: 0, 2: 0},
		"c": {1: 5, 2: 6},
	} {
		for vc, out := range routes {
			if err := sims[sw].SetRoute(vc, out, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for vc, entry := range map[int]*Switch{1: sims["a"], 2: sims["b"]} {
		err := simNet.AddSource(SourceConfig{
			VC: vc, Spec: traffic.CBR(0.25),
			Dest: entry, InPort: 1, Mode: Greedy, SelfCheck: true,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	stats, err := simNet.Run(4000)
	if err != nil {
		t.Fatal(err)
	}
	qa := stats.Queues[QueueKey("a", 0, 1)]
	qb := stats.Queues[QueueKey("b", 0, 1)]
	if qa.MaxDelay != 0 {
		t.Errorf("hop a measured delay %d, want 0 (uncontended)", qa.MaxDelay)
	}
	if float64(qb.MaxDelay) > boundB {
		t.Errorf("hop b measured delay %d exceeds analytic bound %g", qb.MaxDelay, boundB)
	}
	if qa.Drops+qb.Drops != 0 {
		t.Errorf("drops in an admitted workload: a=%d b=%d", qa.Drops, qb.Drops)
	}
	if stats.PerVC[1].Cells == 0 || stats.PerVC[2].Cells == 0 {
		t.Error("a VC delivered no cells")
	}
}
