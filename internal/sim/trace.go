package sim

import (
	"fmt"
	"io"
	"sort"
)

// Histogram is a compact distribution of end-to-end queueing delays,
// counting cells per exact delay value (delays are small integers in a
// correctly admitted network, so exact counting is cheap).
type Histogram struct {
	counts map[uint64]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[uint64]int)}
}

// Observe records one delay sample.
func (h *Histogram) Observe(delay uint64) {
	h.counts[delay]++
	h.total++
}

// Total returns the number of samples.
func (h *Histogram) Total() int { return h.total }

// Merge adds every sample of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for d, c := range other.counts {
		h.counts[d] += c
		h.total += c
	}
}

// Quantile returns the smallest delay d such that at least q (0 < q <= 1)
// of the samples are <= d. It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	keys := make([]uint64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	need := int(q * float64(h.total))
	if need < 1 {
		need = 1
	}
	seen := 0
	for _, k := range keys {
		seen += h.counts[k]
		if seen >= need {
			return k
		}
	}
	return keys[len(keys)-1]
}

// WriteTSV renders "delay<TAB>count" rows in ascending delay order.
func (h *Histogram) WriteTSV(w io.Writer) error {
	keys := make([]uint64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%d\t%d\n", k, h.counts[k]); err != nil {
			return err
		}
	}
	return nil
}

// TraceEventKind enumerates cell lifecycle events.
type TraceEventKind int

// Trace event kinds.
const (
	// TraceEmit is a source emitting a cell into the network.
	TraceEmit TraceEventKind = iota + 1
	// TraceDrop is a cell discarded at a full queue.
	TraceDrop
	// TraceForward is a cell transmitted toward a downstream switch.
	TraceForward
	// TraceDeliver is a cell reaching its sink.
	TraceDeliver
)

// String implements fmt.Stringer.
func (k TraceEventKind) String() string {
	switch k {
	case TraceEmit:
		return "emit"
	case TraceDrop:
		return "drop"
	case TraceForward:
		return "forward"
	case TraceDeliver:
		return "deliver"
	default:
		return fmt.Sprintf("TraceEventKind(%d)", int(k))
	}
}

// TraceEvent is one cell lifecycle event.
type TraceEvent struct {
	Slot   uint64
	Kind   TraceEventKind
	VC     int
	Seq    int
	Switch string // empty for emissions
	Port   int    // output port for forward/deliver/drop
	// Delay is the cumulative queueing delay at this point (slots).
	Delay uint64
}

// Tracer receives cell lifecycle events. Implementations must be fast;
// they run inline with the simulation.
type Tracer interface {
	Trace(TraceEvent)
}

// CSVTracer writes events as comma-separated rows with a header.
type CSVTracer struct {
	w      io.Writer
	err    error
	wrote  bool
	Events int
}

// NewCSVTracer returns a tracer writing to w.
func NewCSVTracer(w io.Writer) *CSVTracer {
	return &CSVTracer{w: w}
}

// Trace implements Tracer.
func (t *CSVTracer) Trace(ev TraceEvent) {
	if t.err != nil {
		return
	}
	if !t.wrote {
		if _, err := fmt.Fprintln(t.w, "slot,event,vc,seq,switch,port,delay"); err != nil {
			t.err = err
			return
		}
		t.wrote = true
	}
	_, t.err = fmt.Fprintf(t.w, "%d,%s,%d,%d,%s,%d,%d\n",
		ev.Slot, ev.Kind, ev.VC, ev.Seq, ev.Switch, ev.Port, ev.Delay)
	t.Events++
}

// Err returns the first write error, if any.
func (t *CSVTracer) Err() error { return t.err }

// SetTracer installs a tracer; pass nil to disable. It must be called
// before Run.
func (n *Network) SetTracer(tr Tracer) { n.tracer = tr }
