// Package sim is a cell-level discrete-time simulator of an ATM network
// with static-priority FIFO output-queued switches — the switch model the
// paper's CAC assumes. Time advances in integer cell slots (one cell
// transmission time at full link bandwidth). It is used to validate the
// analytic worst-case bounds empirically: for any conforming source
// schedule, measured queueing delays must stay within the CAC's bounds, and
// queue occupancies within the FIFO budgets.
//
// Model per slot:
//
//  1. Sources emit conforming cells (paced by traffic.Pacer) into switch
//     input ports; cells transmitted by upstream ports in the previous slot
//     arrive as well.
//  2. Each switch moves arrived cells to the output-port priority queue
//     selected by its VC table (cut-through at queueing granularity: only
//     queueing delay is modelled, matching the paper's QoS metric).
//  3. Each output port transmits the head cell of its highest non-empty
//     priority queue; the cell reaches the downstream hop at the start of
//     the next slot, or its sink if the port is unattached.
//
// Queues have finite capacities; cells arriving at a full queue are dropped
// and counted, which is how the peak-allocation baseline's failure mode is
// demonstrated.
//
// Facilities beyond the basic model: adversarial jitter stages on sources
// (the clumping Algorithm 3.1 bounds), per-link propagation delay,
// source-routed VCs that may traverse a switch more than once (wrapped
// rings), runtime GCRA self-checks on sources, per-VC delay histograms with
// quantiles, and a per-cell CSV event trace.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"atmcac/internal/traffic"
)

var (
	// ErrConfig reports an invalid simulation configuration.
	ErrConfig = errors.New("sim: invalid configuration")
	// ErrRouting reports a cell for which a switch has no VC table entry.
	ErrRouting = errors.New("sim: no route for VC")
)

// Priority is a static transmission priority; 1 is highest (matching the
// CAC engine's convention).
type Priority int

// cell is one ATM cell in flight.
type cell struct {
	vc         int
	seq        int
	emitted    uint64 // slot the source emitted it
	queueDelay uint64 // accumulated queueing slots across hops
	pathIdx    int    // next hop index for source-routed VCs
}

// queue is one priority FIFO of an output port.
type queue struct {
	prio  Priority
	cap   int
	cells []cellEntry
	stats QueueStats
}

type cellEntry struct {
	c       cell
	arrived uint64
}

// QueueStats aggregates per-queue observations.
type QueueStats struct {
	// MaxOccupancy is the largest number of queued cells observed.
	MaxOccupancy int
	// Drops counts cells discarded because the queue was full.
	Drops int
	// MaxDelay is the largest single-hop queueing delay (slots) of a cell
	// departing this queue.
	MaxDelay uint64
}

// port is one output port of a switch.
type port struct {
	id     int
	queues []*queue // sorted by priority, highest first
	// downstream attachment; nil means cells are delivered to their sink.
	peer *inputRef
}

type inputRef struct {
	sw     *Switch
	inPort int
	// delay is the link propagation delay in slots (beyond the one-slot
	// transmission time).
	delay uint64
}

// route is a VC table entry.
type route struct {
	out  int
	prio Priority
}

// Switch is an output-queued static-priority FIFO switch.
type Switch struct {
	name    string
	queues  map[Priority]int // capacity per priority
	ports   map[int]*port
	vcTable map[int]route
	arrived []cell // cells delivered to this switch in the current slot
}

// Name returns the switch name.
func (sw *Switch) Name() string { return sw.name }

// SetRoute installs a VC table entry: cells of the VC leave via output port
// out at the given priority.
func (sw *Switch) SetRoute(vc, out int, prio Priority) error {
	if _, ok := sw.queues[prio]; !ok {
		return fmt.Errorf("%w: switch %q has no priority %d", ErrConfig, sw.name, prio)
	}
	if _, ok := sw.vcTable[vc]; ok {
		return fmt.Errorf("%w: switch %q already routes VC %d", ErrConfig, sw.name, vc)
	}
	sw.vcTable[vc] = route{out: out, prio: prio}
	sw.ensurePort(out)
	return nil
}

func (sw *Switch) ensurePort(id int) *port {
	if p, ok := sw.ports[id]; ok {
		return p
	}
	prios := make([]Priority, 0, len(sw.queues))
	for prio := range sw.queues {
		prios = append(prios, prio)
	}
	sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
	p := &port{id: id}
	for _, prio := range prios {
		p.queues = append(p.queues, &queue{prio: prio, cap: sw.queues[prio]})
	}
	sw.ports[id] = p
	return p
}

// SourceMode selects the emission pattern of a source.
type SourceMode int

// Source emission modes.
const (
	// Greedy emits every cell at the earliest conforming instant: the
	// worst-case pattern of the paper's Figure 1.
	Greedy SourceMode = iota + 1
	// Random inserts random idle gaps while staying conforming.
	Random
)

// SourceConfig describes a traffic source.
type SourceConfig struct {
	// VC is the connection identifier carried by the cells.
	VC int
	// Spec is the traffic descriptor the source conforms to.
	Spec traffic.Spec
	// Dest and InPort attach the source to a switch input.
	Dest   *Switch
	InPort int
	// Start delays the first emission (slots).
	Start uint64
	// Mode defaults to Greedy.
	Mode SourceMode
	// Seed drives the Random mode.
	Seed int64
	// MaxCells stops the source after that many cells; 0 means unlimited.
	MaxCells int
	// JitterWindow, when non-zero, inserts an adversarial jitter stage of
	// that many slots between the conforming source and the network: every
	// cell generated during a window [mW, (m+1)W) is held until the window
	// ends and the batch is released back to back — the worst-case
	// clumping that Algorithm 3.1 models with CDV = W. The underlying
	// generation schedule still conforms to Spec.
	JitterWindow uint64
	// SelfCheck verifies every generation instant against a GCRA
	// conformance checker at run time; a violation aborts the simulation.
	// It guards scenario code against accidentally non-conforming sources,
	// which would invalidate any bound comparison.
	SelfCheck bool
}

type source struct {
	cfg      SourceConfig
	pacer    *traffic.Pacer
	checker  *traffic.Checker
	rng      *rand.Rand
	next     uint64  // slot of the next emission
	genAt    float64 // conforming generation instant of the pending cell
	lastEmit uint64  // last emission slot (serializes jitter batches)
	seq      int
	started  bool
	done     bool
}

// VCStats aggregates per-connection observations at the sink.
type VCStats struct {
	// Cells is the number of cells delivered.
	Cells int
	// MaxDelay is the largest end-to-end queueing delay (slots).
	MaxDelay uint64
	// TotalDelay sums queueing delays for mean computation.
	TotalDelay uint64
}

// MeanDelay returns the average end-to-end queueing delay in slots.
func (s VCStats) MeanDelay() float64 {
	if s.Cells == 0 {
		return 0
	}
	return float64(s.TotalDelay) / float64(s.Cells)
}

// Stats is the result of a simulation run.
type Stats struct {
	// Slots is the number of simulated slots.
	Slots uint64
	// PerVC indexes delivery statistics by VC.
	PerVC map[int]VCStats
	// Queues indexes queue statistics by "switch:port:priority".
	Queues map[string]QueueStats
	// Histograms indexes end-to-end delay distributions by VC; nil unless
	// EnableHistograms was called before Run.
	Histograms map[int]*Histogram
}

// QueueKey builds the Stats.Queues key for a queue.
func QueueKey(switchName string, outPort int, prio Priority) string {
	return fmt.Sprintf("%s:%d:%d", switchName, outPort, prio)
}

// arrivalEvent is a cell in flight on a link with propagation delay.
type arrivalEvent struct {
	sw *Switch
	c  cell
}

// PathHop is one queueing point of a source-routed VC: at Switch, the cell
// queues for output port Out at priority Prio.
type PathHop struct {
	Switch *Switch
	Out    int
	Prio   Priority
}

// Network is a simulated ATM network. Build it with AddSwitch, Link,
// SetRoute (or SetPath) and AddSource, then call Run.
type Network struct {
	switches   []*Switch
	byName     map[string]*Switch
	sources    []*source
	paths      map[int][]PathHop         // source-routed VCs
	inFlight   map[uint64][]arrivalEvent // cells on delayed links, by arrival slot
	stats      Stats
	tracer     Tracer
	histograms map[int]*Histogram
	now        uint64
}

// New returns an empty simulated network.
func New() *Network {
	return &Network{
		byName:   make(map[string]*Switch),
		paths:    make(map[int][]PathHop),
		inFlight: make(map[uint64][]arrivalEvent),
		stats: Stats{
			PerVC:  make(map[int]VCStats),
			Queues: make(map[string]QueueStats),
		},
	}
}

// AddSwitch creates a switch whose output ports each have one FIFO of the
// given capacity (cells) per priority.
func (n *Network) AddSwitch(name string, queueCap map[Priority]int) (*Switch, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: empty switch name", ErrConfig)
	}
	if _, ok := n.byName[name]; ok {
		return nil, fmt.Errorf("%w: duplicate switch %q", ErrConfig, name)
	}
	if len(queueCap) == 0 {
		return nil, fmt.Errorf("%w: switch %q has no queues", ErrConfig, name)
	}
	caps := make(map[Priority]int, len(queueCap))
	for prio, c := range queueCap {
		if prio < 1 || c < 1 {
			return nil, fmt.Errorf("%w: switch %q priority %d capacity %d", ErrConfig, name, prio, c)
		}
		caps[prio] = c
	}
	sw := &Switch{
		name:    name,
		queues:  caps,
		ports:   make(map[int]*port),
		vcTable: make(map[int]route),
	}
	n.switches = append(n.switches, sw)
	n.byName[name] = sw
	return sw, nil
}

// Link attaches output port outPort of from to input port inPort of to
// with zero propagation delay.
func (n *Network) Link(from *Switch, outPort int, to *Switch, inPort int) error {
	return n.LinkDelayed(from, outPort, to, inPort, 0)
}

// LinkDelayed attaches a link with the given propagation delay in slots
// (beyond the one-slot transmission time). Propagation delay shifts
// arrivals but adds no queueing.
func (n *Network) LinkDelayed(from *Switch, outPort int, to *Switch, inPort int, delay uint64) error {
	if from == nil || to == nil {
		return fmt.Errorf("%w: nil switch in link", ErrConfig)
	}
	p := from.ensurePort(outPort)
	if p.peer != nil {
		return fmt.Errorf("%w: output %s:%d already linked", ErrConfig, from.name, outPort)
	}
	p.peer = &inputRef{sw: to, inPort: inPort, delay: delay}
	return nil
}

// SetPath installs a source route for a VC: the cell visits each hop in
// order, which — unlike the per-switch VC table — permits a route that
// traverses the same switch more than once (a wrapped RTnet ring). Call it
// before Run; a VC must use either SetPath or SetRoute, not both.
func (n *Network) SetPath(vc int, hops []PathHop) error {
	if len(hops) == 0 {
		return fmt.Errorf("%w: VC %d has an empty path", ErrConfig, vc)
	}
	if _, ok := n.paths[vc]; ok {
		return fmt.Errorf("%w: VC %d already has a path", ErrConfig, vc)
	}
	for i, h := range hops {
		if h.Switch == nil {
			return fmt.Errorf("%w: VC %d hop %d has no switch", ErrConfig, vc, i)
		}
		if _, ok := h.Switch.queues[h.Prio]; !ok {
			return fmt.Errorf("%w: VC %d hop %d: switch %q has no priority %d",
				ErrConfig, vc, i, h.Switch.name, h.Prio)
		}
		h.Switch.ensurePort(h.Out)
	}
	n.paths[vc] = append([]PathHop(nil), hops...)
	return nil
}

// AddSource attaches a traffic source.
func (n *Network) AddSource(cfg SourceConfig) error {
	if cfg.Dest == nil {
		return fmt.Errorf("%w: source for VC %d has no destination switch", ErrConfig, cfg.VC)
	}
	if cfg.Mode == 0 {
		cfg.Mode = Greedy
	}
	pacer, err := traffic.NewPacer(cfg.Spec)
	if err != nil {
		return fmt.Errorf("sim: source for VC %d: %w", cfg.VC, err)
	}
	s := &source{
		cfg:   cfg,
		pacer: pacer,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.SelfCheck {
		checker, err := traffic.NewChecker(cfg.Spec, 1e-9)
		if err != nil {
			return fmt.Errorf("sim: source for VC %d: %w", cfg.VC, err)
		}
		s.checker = checker
	}
	s.schedule(float64(cfg.Start))
	n.sources = append(n.sources, s)
	return nil
}

// schedule computes the slot of the next emission: the first slot at or
// after the earliest conforming generation instant, postponed to the end
// of its jitter window when a jitter stage is configured, and serialized
// behind the previous emission.
func (s *source) schedule(earliest float64) {
	if s.cfg.MaxCells > 0 && s.pacer.Sent() >= s.cfg.MaxCells {
		s.done = true
		return
	}
	if s.cfg.Mode == Random {
		// Insert an idle gap about a third of the time.
		if s.rng.Intn(3) == 0 {
			earliest += s.rng.Float64() * 8
		}
	}
	at := s.pacer.NextAfter(earliest)
	s.genAt = at
	// A cell occupies one slot on the access link: emission lands in the
	// first slot at or after its conforming instant.
	slot := uint64(at)
	if float64(slot) < at {
		slot++
	}
	if w := s.cfg.JitterWindow; w > 0 {
		// Adversarial hold: the whole window's batch emerges back to back
		// when the window ends.
		slot = (slot/w + 1) * w
	}
	if s.started && slot <= s.lastEmit {
		slot = s.lastEmit + 1
	}
	s.next = slot
}

// EnableHistograms records per-VC end-to-end delay distributions during
// Run; call it before Run.
func (n *Network) EnableHistograms() {
	if n.histograms == nil {
		n.histograms = make(map[int]*Histogram)
	}
}

// trace emits a lifecycle event if a tracer is installed.
func (n *Network) trace(kind TraceEventKind, c cell, switchName string, port int) {
	if n.tracer == nil {
		return
	}
	n.tracer.Trace(TraceEvent{
		Slot: n.now, Kind: kind, VC: c.vc, Seq: c.seq,
		Switch: switchName, Port: port, Delay: c.queueDelay,
	})
}

// Run simulates the given number of slots and returns the accumulated
// statistics. Run may be called once per Network.
func (n *Network) Run(slots uint64) (Stats, error) {
	for n.now = 0; n.now < slots; n.now++ {
		// Phase 0: cells completing a delayed link hop arrive.
		if events, ok := n.inFlight[n.now]; ok {
			for _, ev := range events {
				ev.sw.arrived = append(ev.sw.arrived, ev.c)
			}
			delete(n.inFlight, n.now)
		}
		// Phase 1: source emissions for this slot.
		for _, s := range n.sources {
			for !s.done && s.next == n.now {
				if s.checker != nil {
					ok, err := s.checker.Observe(s.genAt)
					if err != nil {
						return n.stats, fmt.Errorf("sim: VC %d self-check: %w", s.cfg.VC, err)
					}
					if !ok {
						return n.stats, fmt.Errorf("%w: VC %d generation at t=%g violates its contract",
							ErrConfig, s.cfg.VC, s.genAt)
					}
				}
				c := cell{vc: s.cfg.VC, seq: s.seq, emitted: n.now}
				s.seq++
				s.lastEmit = n.now
				s.started = true
				s.cfg.Dest.arrived = append(s.cfg.Dest.arrived, c)
				n.trace(TraceEmit, c, "", s.cfg.InPort)
				// Pace from the conforming generation clock, not the
				// (possibly jitter-postponed) emission slot.
				s.schedule(s.genAt)
				if !s.done && s.next == n.now {
					// The access link serializes cells: at most one per
					// slot. schedule's lastEmit guard ensures this; keep a
					// defensive bump against drift.
					s.next = n.now + 1
				}
			}
		}
		// Phase 2: enqueue arrivals at their output-port queues.
		for _, sw := range n.switches {
			for _, c := range sw.arrived {
				var out int
				var prio Priority
				if hops, ok := n.paths[c.vc]; ok {
					if c.pathIdx >= len(hops) {
						return n.stats, fmt.Errorf("%w %d: past the end of its path at %q",
							ErrRouting, c.vc, sw.name)
					}
					h := hops[c.pathIdx]
					if h.Switch != sw {
						return n.stats, fmt.Errorf("%w %d: path hop %d expects %q, cell at %q",
							ErrRouting, c.vc, c.pathIdx, h.Switch.name, sw.name)
					}
					out, prio = h.Out, h.Prio
				} else {
					r, ok := sw.vcTable[c.vc]
					if !ok {
						return n.stats, fmt.Errorf("%w %d at switch %q", ErrRouting, c.vc, sw.name)
					}
					out, prio = r.out, r.prio
				}
				p := sw.ensurePort(out)
				q := p.queueFor(prio)
				// One cell may sit in the output transmitter during this
				// slot, so the FIFO accepts up to cap+1 transiently; the
				// resident count after service (recorded below) is what
				// the cap bounds.
				if len(q.cells) >= q.cap+1 {
					q.stats.Drops++
					n.trace(TraceDrop, c, sw.name, out)
					continue
				}
				q.cells = append(q.cells, cellEntry{c: c, arrived: n.now})
			}
			sw.arrived = sw.arrived[:0]
		}
		// Phase 3: each output port transmits one cell; it arrives
		// downstream at the start of the next slot.
		for _, sw := range n.switches {
			portIDs := make([]int, 0, len(sw.ports))
			for id := range sw.ports {
				portIDs = append(portIDs, id)
			}
			sort.Ints(portIDs)
			for _, id := range portIDs {
				p := sw.ports[id]
				if q := p.headQueue(); q != nil {
					entry := q.cells[0]
					q.cells = q.cells[1:]
					delay := n.now - entry.arrived
					if delay > q.stats.MaxDelay {
						q.stats.MaxDelay = delay
					}
					c := entry.c
					c.queueDelay += delay
					c.pathIdx++
					switch {
					case p.peer != nil && p.peer.delay > 0:
						n.trace(TraceForward, c, sw.name, id)
						n.inFlight[n.now+1+p.peer.delay] = append(
							n.inFlight[n.now+1+p.peer.delay], arrivalEvent{sw: p.peer.sw, c: c})
					case p.peer != nil:
						n.trace(TraceForward, c, sw.name, id)
						p.peer.sw.arrived = append(p.peer.sw.arrived, c)
					default:
						n.trace(TraceDeliver, c, sw.name, id)
						if n.histograms != nil {
							h := n.histograms[c.vc]
							if h == nil {
								h = NewHistogram()
								n.histograms[c.vc] = h
							}
							h.Observe(c.queueDelay)
						}
						vs := n.stats.PerVC[c.vc]
						vs.Cells++
						vs.TotalDelay += c.queueDelay
						if c.queueDelay > vs.MaxDelay {
							vs.MaxDelay = c.queueDelay
						}
						n.stats.PerVC[c.vc] = vs
					}
				}
				// Post-service resident counts are what the FIFO budget
				// bounds.
				for _, q := range p.queues {
					if occ := len(q.cells); occ > q.stats.MaxOccupancy {
						q.stats.MaxOccupancy = occ
					}
				}
			}
		}
	}
	// Collect queue statistics.
	for _, sw := range n.switches {
		for id, p := range sw.ports {
			for _, q := range p.queues {
				n.stats.Queues[QueueKey(sw.name, id, q.prio)] = q.stats
			}
		}
	}
	n.stats.Slots = slots
	n.stats.Histograms = n.histograms
	return n.stats, nil
}

func (p *port) queueFor(prio Priority) *queue {
	for _, q := range p.queues {
		if q.prio == prio {
			return q
		}
	}
	// ensurePort created a queue per configured priority and SetRoute
	// validated the priority, so this is unreachable.
	panic(fmt.Sprintf("sim: port %d has no priority %d queue", p.id, prio))
}

// headQueue returns the highest-priority non-empty queue, or nil.
func (p *port) headQueue() *queue {
	for _, q := range p.queues {
		if len(q.cells) > 0 {
			return q
		}
	}
	return nil
}
