package sim

import (
	"fmt"
	"testing"

	"atmcac/internal/bitstream"
	"atmcac/internal/core"
	"atmcac/internal/traffic"
)

// TestJitterWindowDelaysCells: with an adversarial jitter stage, cells of a
// CBR source emerge clumped at window boundaries while the generation
// schedule stays conforming.
func TestJitterWindowDelaysCells(t *testing.T) {
	n := New()
	sw, err := n.AddSwitch("sw", map[Priority]int{1: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetRoute(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	// CBR(0.25): one cell every 4 slots; jitter window 16: cells of each
	// window [16m, 16m+16) emerge back to back at slot 16(m+1).
	if err := n.AddSource(SourceConfig{
		VC: 1, Spec: traffic.CBR(0.25), Dest: sw, JitterWindow: 16, MaxCells: 16,
	}); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.PerVC[1].Cells; got != 16 {
		t.Fatalf("delivered %d cells, want 16", got)
	}
	// A single jittered connection still sees no queueing at the switch
	// (the clump arrives serialized at link rate).
	if d := stats.PerVC[1].MaxDelay; d != 0 {
		t.Errorf("single jittered connection queueing delay = %d, want 0", d)
	}
}

// TestJitterSourceStaysConforming: the generation instants behind the
// jitter stage must still satisfy the GCRA contract.
func TestJitterSourceStaysConforming(t *testing.T) {
	spec := traffic.VBR(0.5, 0.05, 8)
	s := &source{cfg: SourceConfig{Spec: spec, JitterWindow: 32}}
	pacer, err := traffic.NewPacer(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.pacer = pacer
	checker, err := traffic.NewChecker(spec, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	s.schedule(0)
	prevEmit := uint64(0)
	for i := 0; i < 100; i++ {
		ok, err := checker.Observe(s.genAt)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("generation instant %d (%g) non-conforming", i, s.genAt)
		}
		// Emissions are postponed to window ends and serialized.
		if s.next < uint64(s.genAt) {
			t.Fatalf("emission slot %d before generation instant %g", s.next, s.genAt)
		}
		if i > 0 && s.next <= prevEmit {
			t.Fatalf("emission slot %d not after previous %d", s.next, prevEmit)
		}
		prevEmit = s.next
		s.lastEmit = s.next
		s.started = true
		s.schedule(s.genAt)
	}
}

// TestJitteredDelayWithinAlgorithm31Bound is the empirical validation of
// Algorithm 3.1: k CBR connections each pass through an adversarial jitter
// stage of W slots before multiplexing at one switch. The analytic bound
// computed from the CDV=W clumped envelopes must dominate the measured
// worst-case queueing delay.
func TestJitteredDelayWithinAlgorithm31Bound(t *testing.T) {
	const (
		k = 10
		w = 48
	)
	spec := traffic.CBR(0.06)

	// Analytic side: k envelopes clumped by CDV = w, distinct links.
	env, err := spec.Stream()
	if err != nil {
		t.Fatal(err)
	}
	clumped, err := env.Delayed(w)
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]bitstream.Stream, k)
	for i := range streams {
		streams[i] = clumped
	}
	bound, err := bitstream.DelayBound(bitstream.Sum(streams...), bitstream.Zero())
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 {
		t.Fatalf("bound = %g; scenario exercises nothing", bound)
	}

	// Simulation side: staggered starts misalign the windows; the jitter
	// stage re-clumps each source adversarially.
	for _, seed := range []int64{1, 2, 3} {
		n := New()
		sw, err := n.AddSwitch("sw", map[Priority]int{1: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < k; vc++ {
			if err := sw.SetRoute(vc, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(SourceConfig{
				VC: vc, Spec: spec, Dest: sw, InPort: vc,
				JitterWindow: w,
				Start:        uint64(vc) * uint64(seed),
				Mode:         Random,
				Seed:         seed * int64(vc+1),
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(30000)
		if err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < k; vc++ {
			if d := float64(stats.PerVC[vc].MaxDelay); d > bound+1e-9 {
				t.Errorf("seed %d: VC %d measured delay %g exceeds Algorithm 3.1 bound %g",
					seed, vc, d, bound)
			}
		}
	}
}

// TestJitterIncreasesContention: the same multiplexed load suffers strictly
// larger worst-case queueing with a jitter stage than without — the traffic
// distortion the paper's introduction warns peak allocation ignores.
func TestJitterIncreasesContention(t *testing.T) {
	run := func(window uint64) uint64 {
		n := New()
		sw, err := n.AddSwitch("sw", map[Priority]int{1: 4096})
		if err != nil {
			t.Fatal(err)
		}
		const k = 10
		for vc := 0; vc < k; vc++ {
			if err := sw.SetRoute(vc, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(SourceConfig{
				VC: vc, Spec: traffic.CBR(0.06), Dest: sw, InPort: vc,
				JitterWindow: window,
				Start:        uint64(vc * 3), // staggered: smooth without jitter
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(20000)
		if err != nil {
			t.Fatal(err)
		}
		worst := uint64(0)
		for vc := 0; vc < k; vc++ {
			if d := stats.PerVC[vc].MaxDelay; d > worst {
				worst = d
			}
		}
		return worst
	}
	smooth, jittered := run(0), run(64)
	if jittered <= smooth {
		t.Errorf("jittered worst delay %d not above smooth %d", jittered, smooth)
	}
}

// TestPropagationDelayShiftsButDoesNotQueue: adding link propagation delay
// leaves queueing delays unchanged.
func TestPropagationDelayShiftsButDoesNotQueue(t *testing.T) {
	build := func(delay uint64) Stats {
		n := New()
		a, err := n.AddSwitch("a", map[Priority]int{1: 64})
		if err != nil {
			t.Fatal(err)
		}
		b, err := n.AddSwitch("b", map[Priority]int{1: 64})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.LinkDelayed(a, 0, b, 0, delay); err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < 4; vc++ {
			if err := a.SetRoute(vc, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := b.SetRoute(vc, 10+vc, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(SourceConfig{
				VC: vc, Spec: traffic.CBR(0.1), Dest: a, InPort: vc,
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(10000)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	near, far := build(0), build(500)
	for vc := 0; vc < 4; vc++ {
		if near.PerVC[vc].MaxDelay != far.PerVC[vc].MaxDelay {
			t.Errorf("VC %d: queueing delay changed with propagation delay: %d vs %d",
				vc, near.PerVC[vc].MaxDelay, far.PerVC[vc].MaxDelay)
		}
		// Fewer cells delivered within the horizon when the pipe is long.
		if far.PerVC[vc].Cells > near.PerVC[vc].Cells {
			t.Errorf("VC %d: delayed link delivered more cells", vc)
		}
	}
}

// TestLinkDelayedValidation mirrors Link's checks.
func TestLinkDelayedValidation(t *testing.T) {
	n := New()
	a, _ := n.AddSwitch("a", map[Priority]int{1: 8})
	b, _ := n.AddSwitch("b", map[Priority]int{1: 8})
	if err := n.LinkDelayed(nil, 0, b, 0, 1); err == nil {
		t.Error("nil switch accepted")
	}
	if err := n.LinkDelayed(a, 0, b, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := n.LinkDelayed(a, 0, b, 1, 3); err == nil {
		t.Error("double link accepted")
	}
}

// TestRTnetValidationWithJitterAndPropagation combines everything: an RTnet
// ring with per-link propagation delay and jittered sources must still stay
// within the CAC bound computed with per-hop CDV accumulation. The jitter
// window equals the per-hop budget, so the source-side clumping is within
// what the analysis already allows for one upstream hop.
func TestRTnetValidationWithJitterAndPropagation(t *testing.T) {
	const (
		ring  = 6
		queue = 32
		load  = 0.3
	)
	// Analytic side: the engine with one extra hop's worth of source CDV.
	rtcore := core.NewNetwork(core.HardCDV{})
	for i := 0; i < ring; i++ {
		if _, err := rtcore.AddSwitch(core.SwitchConfig{
			Name:       fmt.Sprintf("sw%d", i),
			QueueCells: map[core.Priority]float64{1: queue},
		}); err != nil {
			t.Fatal(err)
		}
	}
	spec := traffic.CBR(load / ring)
	for o := 0; o < ring; o++ {
		route := make(core.Route, ring-1)
		for h := 0; h < ring-1; h++ {
			in := core.PortID(0)
			if h == 0 {
				in = 1
			}
			route[h] = core.Hop{Switch: fmt.Sprintf("sw%d", (o+h)%ring), In: in, Out: 0}
		}
		if err := rtcore.Install(core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("c%d", o)), Spec: spec, Priority: 1,
			Route: route, SourceCDV: queue,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := rtcore.Audit(); err != nil || len(v) > 0 {
		t.Fatalf("audit: %v %v", v, err)
	}
	bound := 0.0
	for i := 0; i < ring; i++ {
		sw, _ := rtcore.Switch(fmt.Sprintf("sw%d", i))
		d, err := sw.ComputedBound(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		bound += d
	}
	// Keep only the worst route (all ports symmetric: (ring-1)/ring of the
	// total).
	bound = bound * float64(ring-1) / float64(ring)

	// Simulation side.
	n := New()
	switches := make([]*Switch, ring)
	for i := range switches {
		sw, err := n.AddSwitch(fmt.Sprintf("sw%d", i), map[Priority]int{1: queue})
		if err != nil {
			t.Fatal(err)
		}
		switches[i] = sw
	}
	for i := range switches {
		if err := n.LinkDelayed(switches[i], 0, switches[(i+1)%ring], 0, 7); err != nil {
			t.Fatal(err)
		}
	}
	for o := 0; o < ring; o++ {
		for h := 0; h < ring-1; h++ {
			if err := switches[(o+h)%ring].SetRoute(o, 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := switches[(o+ring-1)%ring].SetRoute(o, 100+o, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(SourceConfig{
			VC: o, Spec: spec, Dest: switches[o], InPort: 1,
			JitterWindow: queue, Mode: Random, Seed: int64(o + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(60000)
	if err != nil {
		t.Fatal(err)
	}
	for o := 0; o < ring; o++ {
		vs := stats.PerVC[o]
		if vs.Cells == 0 {
			t.Fatalf("VC %d delivered nothing", o)
		}
		if float64(vs.MaxDelay) > bound+1e-9 {
			t.Errorf("VC %d measured delay %d exceeds bound %.1f", o, vs.MaxDelay, bound)
		}
	}
	for _, qs := range stats.Queues {
		if qs.Drops != 0 {
			t.Errorf("drops observed: %+v", stats.Queues)
			break
		}
	}
}
