package sim

import (
	"strings"
	"testing"

	"atmcac/internal/traffic"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	for _, d := range []uint64{0, 0, 0, 1, 1, 2, 5, 10, 10, 100} {
		h.Observe(d)
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d", h.Total())
	}
	tests := []struct {
		q    float64
		want uint64
	}{
		{0.1, 0}, {0.3, 0}, {0.5, 1}, {0.6, 2}, {0.9, 10}, {1.0, 100},
		{-1, 0}, {2, 100}, // clamped
	}
	for _, tt := range tests {
		if got := h.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%g) = %d, want %d", tt.q, got, tt.want)
		}
	}
}

func TestHistogramWriteTSV(t *testing.T) {
	h := NewHistogram()
	for _, d := range []uint64{3, 1, 3} {
		h.Observe(d)
	}
	var sb strings.Builder
	if err := h.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "1\t1\n3\t2\n" {
		t.Fatalf("WriteTSV = %q", got)
	}
}

func TestTraceEventKindString(t *testing.T) {
	for kind, want := range map[TraceEventKind]string{
		TraceEmit: "emit", TraceDrop: "drop", TraceForward: "forward",
		TraceDeliver: "deliver", TraceEventKind(9): "TraceEventKind(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

// buildTandemWithTrace runs a 2-hop scenario with tracing and histograms.
func buildTandemWithTrace(t *testing.T, tracer Tracer, queueCap int) Stats {
	t.Helper()
	n := New()
	a, err := n.AddSwitch("a", map[Priority]int{1: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.AddSwitch("b", map[Priority]int{1: queueCap})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Link(a, 0, b, 0); err != nil {
		t.Fatal(err)
	}
	for vc := 0; vc < 4; vc++ {
		if err := a.SetRoute(vc, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := b.SetRoute(vc, 10+vc, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(SourceConfig{
			VC: vc, Spec: traffic.CBR(0.1), Dest: a, InPort: vc, MaxCells: 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.SetTracer(tracer)
	n.EnableHistograms()
	stats, err := n.Run(5000)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestCSVTracerRecordsLifecycle(t *testing.T) {
	var sb strings.Builder
	tracer := NewCSVTracer(&sb)
	stats := buildTandemWithTrace(t, tracer, 64)
	if err := tracer.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "slot,event,vc,seq,switch,port,delay\n") {
		t.Fatalf("missing header: %q", out[:40])
	}
	for _, kind := range []string{",emit,", ",forward,", ",deliver,"} {
		if !strings.Contains(out, kind) {
			t.Errorf("trace lacks %q events", kind)
		}
	}
	// 4 VCs x 20 cells, each with emit + forward + deliver = 240 events.
	if tracer.Events != 240 {
		t.Errorf("Events = %d, want 240", tracer.Events)
	}
	_ = stats
}

func TestHistogramsMatchVCStats(t *testing.T) {
	stats := buildTandemWithTrace(t, nil, 64)
	if stats.Histograms == nil {
		t.Fatal("histograms not collected")
	}
	for vc, vs := range stats.PerVC {
		h := stats.Histograms[vc]
		if h == nil {
			t.Fatalf("VC %d has no histogram", vc)
		}
		if h.Total() != vs.Cells {
			t.Errorf("VC %d histogram total %d != cells %d", vc, h.Total(), vs.Cells)
		}
		if got := h.Quantile(1.0); got != vs.MaxDelay {
			t.Errorf("VC %d max quantile %d != MaxDelay %d", vc, got, vs.MaxDelay)
		}
	}
}

func TestTraceRecordsDrops(t *testing.T) {
	var sb strings.Builder
	tracer := NewCSVTracer(&sb)
	n := New()
	sw, err := n.AddSwitch("sw", map[Priority]int{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	for vc := 0; vc < 6; vc++ {
		if err := sw.SetRoute(vc, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := n.AddSource(SourceConfig{
			VC: vc, Spec: traffic.CBR(0.02), Dest: sw, InPort: vc, MaxCells: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
	n.SetTracer(tracer)
	if _, err := n.Run(1000); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",drop,") {
		t.Error("no drop events traced despite a 1-cell queue under burst")
	}
}
