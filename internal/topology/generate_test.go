package topology

import (
	"fmt"
	"testing"
)

// generatedGraphs enumerates representative instances of each generator
// family across sizes; shared by the invariant tests below.
func generatedGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	out := make(map[string]*Graph)
	for _, cfg := range []MultiRingConfig{
		{Rings: 1, NodesPerRing: 4, HostsPerNode: 1},
		{Rings: 2, NodesPerRing: 8, HostsPerNode: 2},
		{Rings: 4, NodesPerRing: 6, HostsPerNode: 1},
	} {
		g, err := MultiRing(cfg)
		if err != nil {
			t.Fatalf("MultiRing(%+v): %v", cfg, err)
		}
		out[fmt.Sprintf("multiring-%dx%d", cfg.Rings, cfg.NodesPerRing)] = g
	}
	for _, cfg := range []FatTreeConfig{
		{K: 2, HostsPerEdge: 1},
		{K: 4, HostsPerEdge: 2},
		{K: 6, HostsPerEdge: 3},
	} {
		g, err := FatTree(cfg)
		if err != nil {
			t.Fatalf("FatTree(%+v): %v", cfg, err)
		}
		out[fmt.Sprintf("fattree-k%d", cfg.K)] = g
	}
	for _, cfg := range []CampusConfig{
		{Buildings: 1, FloorsPerBuilding: 2, HostsPerFloor: 1},
		{Buildings: 3, FloorsPerBuilding: 4, HostsPerFloor: 2},
		{Buildings: 6, FloorsPerBuilding: 3, HostsPerFloor: 1},
	} {
		g, err := Campus(cfg)
		if err != nil {
			t.Fatalf("Campus(%+v): %v", cfg, err)
		}
		out[fmt.Sprintf("campus-%db%df", cfg.Buildings, cfg.FloorsPerBuilding)] = g
	}
	return out
}

func TestGeneratedGraphsStronglyConnected(t *testing.T) {
	for name, g := range generatedGraphs(t) {
		if !g.StronglyConnected() {
			t.Errorf("%s: generated graph is not strongly connected", name)
		}
	}
}

// TestGeneratedGraphsPortCapacityRespected verifies that generated links
// respect the unit-capacity port model: every (node, output port) and
// (node, input port) pair carries exactly one link, and every endpoint
// exists. The graph's AddLink enforces this at construction; the test
// re-derives it from the built link set so a future generator cannot
// bypass the invariant by mutating internals.
func TestGeneratedGraphsPortCapacityRespected(t *testing.T) {
	for name, g := range generatedGraphs(t) {
		outSeen := make(map[string]bool)
		inSeen := make(map[string]bool)
		for _, l := range g.Links() {
			if _, ok := g.Node(l.From); !ok {
				t.Fatalf("%s: link %v from unknown node", name, l)
			}
			if _, ok := g.Node(l.To); !ok {
				t.Fatalf("%s: link %v to unknown node", name, l)
			}
			outKey := fmt.Sprintf("%s:%d", l.From, l.FromPort)
			inKey := fmt.Sprintf("%s:%d", l.To, l.ToPort)
			if outSeen[outKey] {
				t.Errorf("%s: output port %s carries two links", name, outKey)
			}
			if inSeen[inKey] {
				t.Errorf("%s: input port %s carries two links", name, inKey)
			}
			outSeen[outKey] = true
			inSeen[inKey] = true
		}
	}
}

func TestGeneratedGraphSizes(t *testing.T) {
	countKind := func(g *Graph, k Kind) int {
		n := 0
		for _, node := range g.Nodes() {
			if node.Kind == k {
				n++
			}
		}
		return n
	}

	mr, err := MultiRing(MultiRingConfig{Rings: 3, NodesPerRing: 5, HostsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := countKind(mr, KindSwitch); got != 15 {
		t.Errorf("multi-ring switches = %d, want 15", got)
	}
	if got := countKind(mr, KindHost); got != 30 {
		t.Errorf("multi-ring hosts = %d, want 30", got)
	}
	// 15 ring links + 2*2 gateway directions + 30 hosts * 2 directions.
	if got := len(mr.Links()); got != 15+4+60 {
		t.Errorf("multi-ring links = %d, want %d", got, 15+4+60)
	}

	ft, err := FatTree(FatTreeConfig{K: 4, HostsPerEdge: 2})
	if err != nil {
		t.Fatal(err)
	}
	// (k/2)^2 = 4 cores, 4 pods x (2 agg + 2 edge) = 16 pod switches.
	if got := countKind(ft, KindSwitch); got != 20 {
		t.Errorf("fat-tree switches = %d, want 20", got)
	}
	if got := countKind(ft, KindHost); got != 16 {
		t.Errorf("fat-tree hosts = %d, want 16", got)
	}

	ca, err := Campus(CampusConfig{Buildings: 2, FloorsPerBuilding: 3, HostsPerFloor: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 2 cores + 2 buildings + 6 floors.
	if got := countKind(ca, KindSwitch); got != 10 {
		t.Errorf("campus switches = %d, want 10", got)
	}
	if got := countKind(ca, KindHost); got != 6 {
		t.Errorf("campus hosts = %d, want 6", got)
	}
}

func TestGeneratedGraphsHostToHostPaths(t *testing.T) {
	type pair struct{ from, to NodeID }
	cases := []struct {
		name  string
		graph func() (*Graph, error)
		pairs []pair
		// maxSwitches bounds the number of switch nodes on the path —
		// the structural diameter claim of each family.
		maxSwitches int
	}{
		{
			name:  "fat-tree inter-pod",
			graph: func() (*Graph, error) { return FatTree(FatTreeConfig{K: 4, HostsPerEdge: 1}) },
			pairs: []pair{
				{FatTreeHost(0, 0, 0), FatTreeHost(3, 1, 0)},
				{FatTreeHost(1, 0, 0), FatTreeHost(2, 0, 0)},
			},
			maxSwitches: 5, // edge, agg, core, agg, edge
		},
		{
			name: "campus inter-building",
			graph: func() (*Graph, error) {
				return Campus(CampusConfig{Buildings: 3, FloorsPerBuilding: 2, HostsPerFloor: 1})
			},
			pairs: []pair{
				{CampusHost(0, 0, 0), CampusHost(2, 1, 0)},
				{CampusHost(1, 1, 0), CampusHost(0, 0, 0)},
			},
			maxSwitches: 5, // floor, building, core, building, floor
		},
		{
			name: "multi-ring cross-ring",
			graph: func() (*Graph, error) {
				return MultiRing(MultiRingConfig{Rings: 2, NodesPerRing: 4, HostsPerNode: 1})
			},
			pairs: []pair{
				{MultiRingHost(0, 1, 0), MultiRingHost(1, 2, 0)},
			},
			// Worst case: almost a full lap of each unidirectional ring.
			maxSwitches: 8,
		},
	}
	for _, tc := range cases {
		g, err := tc.graph()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, p := range tc.pairs {
			path, err := g.Path(p.from, p.to)
			if err != nil {
				t.Errorf("%s: no path %s -> %s: %v", tc.name, p.from, p.to, err)
				continue
			}
			switches := 0
			for _, tr := range path {
				if node, _ := g.Node(tr.Node); node.Kind == KindSwitch {
					switches++
				}
			}
			if switches > tc.maxSwitches {
				t.Errorf("%s: path %s -> %s crosses %d switches, want <= %d",
					tc.name, p.from, p.to, switches, tc.maxSwitches)
			}
		}
	}
}

func TestGeneratorsRejectBadConfig(t *testing.T) {
	if _, err := MultiRing(MultiRingConfig{Rings: 0, NodesPerRing: 4}); err == nil {
		t.Error("MultiRing accepted 0 rings")
	}
	if _, err := MultiRing(MultiRingConfig{Rings: 1, NodesPerRing: 1}); err == nil {
		t.Error("MultiRing accepted a 1-node ring")
	}
	if _, err := MultiRing(MultiRingConfig{Rings: 1, NodesPerRing: 2, HostsPerNode: -1}); err == nil {
		t.Error("MultiRing accepted negative hosts")
	}
	if _, err := FatTree(FatTreeConfig{K: 3}); err == nil {
		t.Error("FatTree accepted odd arity")
	}
	if _, err := FatTree(FatTreeConfig{K: 0}); err == nil {
		t.Error("FatTree accepted zero arity")
	}
	if _, err := Campus(CampusConfig{Buildings: 0, FloorsPerBuilding: 1}); err == nil {
		t.Error("Campus accepted 0 buildings")
	}
	if _, err := Campus(CampusConfig{Buildings: 1, FloorsPerBuilding: 0}); err == nil {
		t.Error("Campus accepted 0 floors")
	}
}

func TestStronglyConnectedDetectsPartition(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b"} {
		if err := g.AddNode(id, KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	// One direction only: a -> b reaches everything, b cannot reach a.
	if err := g.AddLink(Link{From: "a", FromPort: 0, To: "b", ToPort: 0}); err != nil {
		t.Fatal(err)
	}
	if g.StronglyConnected() {
		t.Error("one-way pair reported strongly connected")
	}
	if err := g.AddLink(Link{From: "b", FromPort: 0, To: "a", ToPort: 0}); err != nil {
		t.Fatal(err)
	}
	if !g.StronglyConnected() {
		t.Error("two-way pair reported not strongly connected")
	}
}
