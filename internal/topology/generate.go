package topology

import (
	"fmt"
)

// This file generates parameterized topologies beyond the hand-built RTnet
// ring: multi-ring backbones, k-ary fat trees, and campus hierarchies. All
// generators allocate ports deterministically (a function of the
// parameters only), so a generated graph — and every route derived from it
// — is reproducible and can seed corpora and experiments.

// portAlloc hands out fresh output and input port numbers per node, so
// generated links never collide on the (node, port) uniqueness the graph
// enforces.
type portAlloc struct {
	out map[NodeID]int
	in  map[NodeID]int
}

func newPortAlloc() *portAlloc {
	return &portAlloc{out: make(map[NodeID]int), in: make(map[NodeID]int)}
}

// link adds one directed link from a to b on fresh ports.
func (p *portAlloc) link(g *Graph, a, b NodeID) error {
	l := Link{From: a, FromPort: p.out[a], To: b, ToPort: p.in[b]}
	if err := g.AddLink(l); err != nil {
		return err
	}
	p.out[a]++
	p.in[b]++
	return nil
}

// biLink adds a bidirectional link pair between a and b.
func (p *portAlloc) biLink(g *Graph, a, b NodeID) error {
	if err := p.link(g, a, b); err != nil {
		return err
	}
	return p.link(g, b, a)
}

// addHost registers a host and wires it both ways to its switch.
func addHost(g *Graph, alloc *portAlloc, host, sw NodeID) error {
	if err := g.AddNode(host, KindHost); err != nil {
		return err
	}
	return alloc.biLink(g, host, sw)
}

// MultiRingConfig parameterizes MultiRing.
type MultiRingConfig struct {
	// Rings is the number of rings (>= 1).
	Rings int
	// NodesPerRing is the size of each ring (>= 2).
	NodesPerRing int
	// HostsPerNode attaches that many hosts to every ring node (>= 0).
	HostsPerNode int
}

// MultiRingName returns the ID of node i of ring r.
func MultiRingName(r, i int) NodeID {
	return NodeID(fmt.Sprintf("mr%02d-%02d", r, i))
}

// MultiRingHost returns the ID of host h on node i of ring r.
func MultiRingHost(r, i, h int) NodeID {
	return NodeID(fmt.Sprintf("mr%02d-%02d-h%02d", r, i, h))
}

// MultiRing generates a chain of unidirectional rings (each the RTnet
// backbone shape) bridged by bidirectional gateway links: node 0 of ring
// r connects both ways to node 0 of ring r+1. The result is strongly
// connected: within a ring via the ring itself, across rings via the
// gateways.
func MultiRing(cfg MultiRingConfig) (*Graph, error) {
	if cfg.Rings < 1 {
		return nil, fmt.Errorf("%w: %d rings", ErrNode, cfg.Rings)
	}
	if cfg.NodesPerRing < 2 {
		return nil, fmt.Errorf("%w: %d nodes per ring", ErrNode, cfg.NodesPerRing)
	}
	if cfg.HostsPerNode < 0 {
		return nil, fmt.Errorf("%w: %d hosts per node", ErrNode, cfg.HostsPerNode)
	}
	g := New()
	alloc := newPortAlloc()
	for r := 0; r < cfg.Rings; r++ {
		for i := 0; i < cfg.NodesPerRing; i++ {
			if err := g.AddNode(MultiRingName(r, i), KindSwitch); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.NodesPerRing; i++ {
			if err := alloc.link(g, MultiRingName(r, i), MultiRingName(r, (i+1)%cfg.NodesPerRing)); err != nil {
				return nil, err
			}
			for h := 0; h < cfg.HostsPerNode; h++ {
				if err := addHost(g, alloc, MultiRingHost(r, i, h), MultiRingName(r, i)); err != nil {
					return nil, err
				}
			}
		}
	}
	for r := 0; r+1 < cfg.Rings; r++ {
		if err := alloc.biLink(g, MultiRingName(r, 0), MultiRingName(r+1, 0)); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FatTreeConfig parameterizes FatTree.
type FatTreeConfig struct {
	// K is the fat-tree arity (even, >= 2).
	K int
	// HostsPerEdge attaches that many hosts to every edge switch (>= 0);
	// the canonical fat tree uses K/2.
	HostsPerEdge int
}

// FatTreeCore returns the ID of core switch i.
func FatTreeCore(i int) NodeID { return NodeID(fmt.Sprintf("core%02d", i)) }

// FatTreeAgg returns the ID of aggregation switch i of pod p.
func FatTreeAgg(p, i int) NodeID { return NodeID(fmt.Sprintf("p%02da%02d", p, i)) }

// FatTreeEdge returns the ID of edge switch i of pod p.
func FatTreeEdge(p, i int) NodeID { return NodeID(fmt.Sprintf("p%02de%02d", p, i)) }

// FatTreeHost returns the ID of host h on edge switch e of pod p.
func FatTreeHost(p, e, h int) NodeID { return NodeID(fmt.Sprintf("p%02de%02d-h%02d", p, e, h)) }

// FatTree generates a k-ary fat tree (k even, >= 2): (k/2)² core switches
// and k pods of k/2 aggregation plus k/2 edge switches each. Every edge
// switch links to every aggregation switch of its pod; aggregation switch
// i of each pod links to core switches i·k/2 .. (i+1)·k/2 − 1. All links
// are bidirectional pairs, so the graph is strongly connected with switch
// diameter 4 (edge–agg–core–agg–edge) — the shape that keeps admission
// routes short however large the fabric grows.
func FatTree(cfg FatTreeConfig) (*Graph, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("%w: fat tree arity %d (need even k >= 2)", ErrNode, k)
	}
	if cfg.HostsPerEdge < 0 {
		return nil, fmt.Errorf("%w: %d hosts per edge switch", ErrNode, cfg.HostsPerEdge)
	}
	g := New()
	alloc := newPortAlloc()
	half := k / 2
	for i := 0; i < half*half; i++ {
		if err := g.AddNode(FatTreeCore(i), KindSwitch); err != nil {
			return nil, err
		}
	}
	for p := 0; p < k; p++ {
		for i := 0; i < half; i++ {
			if err := g.AddNode(FatTreeAgg(p, i), KindSwitch); err != nil {
				return nil, err
			}
			if err := g.AddNode(FatTreeEdge(p, i), KindSwitch); err != nil {
				return nil, err
			}
		}
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				if err := alloc.biLink(g, FatTreeEdge(p, e), FatTreeAgg(p, a)); err != nil {
					return nil, err
				}
			}
			for h := 0; h < cfg.HostsPerEdge; h++ {
				if err := addHost(g, alloc, FatTreeHost(p, e, h), FatTreeEdge(p, e)); err != nil {
					return nil, err
				}
			}
		}
		for a := 0; a < half; a++ {
			for c := a * half; c < (a+1)*half; c++ {
				if err := alloc.biLink(g, FatTreeAgg(p, a), FatTreeCore(c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// CampusConfig parameterizes Campus.
type CampusConfig struct {
	// Buildings is the number of building routers (>= 1).
	Buildings int
	// FloorsPerBuilding is the number of floor switches per building
	// (>= 1).
	FloorsPerBuilding int
	// HostsPerFloor attaches that many hosts to every floor switch
	// (>= 0).
	HostsPerFloor int
}

// CampusCore returns the ID of campus core c (0 or 1).
func CampusCore(c int) NodeID { return NodeID(fmt.Sprintf("core%d", c)) }

// CampusBuilding returns the ID of building router b.
func CampusBuilding(b int) NodeID { return NodeID(fmt.Sprintf("bld%02d", b)) }

// CampusFloor returns the ID of floor switch f of building b.
func CampusFloor(b, f int) NodeID { return NodeID(fmt.Sprintf("bld%02d-fl%02d", b, f)) }

// CampusHost returns the ID of host h on floor f of building b.
func CampusHost(b, f, h int) NodeID {
	return NodeID(fmt.Sprintf("bld%02d-fl%02d-h%02d", b, f, h))
}

// Campus generates a three-tier campus hierarchy: a redundant pair of
// core switches linked to each other, building routers dual-homed to both
// cores, and floor switches single-homed to their building router. All
// links are bidirectional pairs. Traffic between floors of different
// buildings crosses floor -> building -> core -> building -> floor.
func Campus(cfg CampusConfig) (*Graph, error) {
	if cfg.Buildings < 1 {
		return nil, fmt.Errorf("%w: %d buildings", ErrNode, cfg.Buildings)
	}
	if cfg.FloorsPerBuilding < 1 {
		return nil, fmt.Errorf("%w: %d floors per building", ErrNode, cfg.FloorsPerBuilding)
	}
	if cfg.HostsPerFloor < 0 {
		return nil, fmt.Errorf("%w: %d hosts per floor", ErrNode, cfg.HostsPerFloor)
	}
	g := New()
	alloc := newPortAlloc()
	for c := 0; c < 2; c++ {
		if err := g.AddNode(CampusCore(c), KindSwitch); err != nil {
			return nil, err
		}
	}
	if err := alloc.biLink(g, CampusCore(0), CampusCore(1)); err != nil {
		return nil, err
	}
	for b := 0; b < cfg.Buildings; b++ {
		if err := g.AddNode(CampusBuilding(b), KindSwitch); err != nil {
			return nil, err
		}
		for c := 0; c < 2; c++ {
			if err := alloc.biLink(g, CampusBuilding(b), CampusCore(c)); err != nil {
				return nil, err
			}
		}
		for f := 0; f < cfg.FloorsPerBuilding; f++ {
			if err := g.AddNode(CampusFloor(b, f), KindSwitch); err != nil {
				return nil, err
			}
			if err := alloc.biLink(g, CampusFloor(b, f), CampusBuilding(b)); err != nil {
				return nil, err
			}
			for h := 0; h < cfg.HostsPerFloor; h++ {
				if err := addHost(g, alloc, CampusHost(b, f, h), CampusFloor(b, f)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// StronglyConnected reports whether every node can reach every other node
// along directed links. It runs one forward BFS from an arbitrary node
// and one BFS over the reversed links; covering both directions from one
// root covers all pairs.
func (g *Graph) StronglyConnected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	var root NodeID
	for id := range g.nodes {
		root = id
		break
	}
	forward := make(map[NodeID][]NodeID)
	reverse := make(map[NodeID][]NodeID)
	for _, l := range g.links {
		forward[l.From] = append(forward[l.From], l.To)
		reverse[l.To] = append(reverse[l.To], l.From)
	}
	reach := func(adj map[NodeID][]NodeID) int {
		seen := map[NodeID]bool{root: true}
		queue := []NodeID{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return len(seen)
	}
	return reach(forward) == len(g.nodes) && reach(reverse) == len(g.nodes)
}
