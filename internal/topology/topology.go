// Package topology models a network as a directed multigraph of nodes and
// port-addressed links. It provides validation (port uniqueness, endpoint
// existence), breadth-first shortest paths, and port-level traversals from
// which CAC routes are derived.
//
// The package is deliberately independent of the CAC engine: it describes
// where cells can flow, not what guarantees they get.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node.
type NodeID string

// Kind classifies a node.
type Kind int

// Node kinds. Switches queue and forward cells; hosts originate and
// terminate connections.
const (
	KindSwitch Kind = iota + 1
	KindHost
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSwitch:
		return "switch"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Node is a network element.
type Node struct {
	ID   NodeID `json:"id"`
	Kind Kind   `json:"kind"`
}

// Link is a directed transmission link from one node's output port to
// another node's input port. Bandwidth is normalized: every link carries one
// cell per cell time, per the paper's model.
type Link struct {
	From     NodeID `json:"from"`
	FromPort int    `json:"fromPort"`
	To       NodeID `json:"to"`
	ToPort   int    `json:"toPort"`
}

func (l Link) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", l.From, l.FromPort, l.To, l.ToPort)
}

var (
	// ErrNode reports an unknown or duplicate node.
	ErrNode = errors.New("topology: node error")
	// ErrLink reports an invalid or conflicting link.
	ErrLink = errors.New("topology: link error")
	// ErrNoPath reports that no path exists between two nodes.
	ErrNoPath = errors.New("topology: no path")
)

// Graph is a directed multigraph. The zero value is not usable; call New.
type Graph struct {
	nodes    map[NodeID]Node
	links    []Link
	outgoing map[NodeID][]int // link indices by source node
	outPorts map[NodeID]map[int]bool
	inPorts  map[NodeID]map[int]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:    make(map[NodeID]Node),
		outgoing: make(map[NodeID][]int),
		outPorts: make(map[NodeID]map[int]bool),
		inPorts:  make(map[NodeID]map[int]bool),
	}
}

// AddNode registers a node.
func (g *Graph) AddNode(id NodeID, kind Kind) error {
	if id == "" {
		return fmt.Errorf("%w: empty node ID", ErrNode)
	}
	if kind != KindSwitch && kind != KindHost {
		return fmt.Errorf("%w: node %q has invalid kind %d", ErrNode, id, kind)
	}
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: duplicate node %q", ErrNode, id)
	}
	g.nodes[id] = Node{ID: id, Kind: kind}
	g.outPorts[id] = make(map[int]bool)
	g.inPorts[id] = make(map[int]bool)
	return nil
}

// AddLink registers a directed link. Each (node, output port) and
// (node, input port) pair may be used by at most one link.
func (g *Graph) AddLink(l Link) error {
	if _, ok := g.nodes[l.From]; !ok {
		return fmt.Errorf("%w: link %v: unknown source %q", ErrLink, l, l.From)
	}
	if _, ok := g.nodes[l.To]; !ok {
		return fmt.Errorf("%w: link %v: unknown destination %q", ErrLink, l, l.To)
	}
	if l.From == l.To {
		return fmt.Errorf("%w: link %v is a self-loop", ErrLink, l)
	}
	if l.FromPort < 0 || l.ToPort < 0 {
		return fmt.Errorf("%w: link %v has a negative port", ErrLink, l)
	}
	if g.outPorts[l.From][l.FromPort] {
		return fmt.Errorf("%w: output port %s:%d already in use", ErrLink, l.From, l.FromPort)
	}
	if g.inPorts[l.To][l.ToPort] {
		return fmt.Errorf("%w: input port %s:%d already in use", ErrLink, l.To, l.ToPort)
	}
	g.outPorts[l.From][l.FromPort] = true
	g.inPorts[l.To][l.ToPort] = true
	g.outgoing[l.From] = append(g.outgoing[l.From], len(g.links))
	g.links = append(g.links, l)
	return nil
}

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) (Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []Node {
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Links returns a copy of all links in insertion order.
func (g *Graph) Links() []Link {
	out := make([]Link, len(g.links))
	copy(out, g.links)
	return out
}

// OutLinks returns the links leaving a node in insertion order.
func (g *Graph) OutLinks(id NodeID) []Link {
	idxs := g.outgoing[id]
	out := make([]Link, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.links[i])
	}
	return out
}

// Traversal is the port-level crossing of one node on a path: the node was
// entered via InPort and left via OutPort. For the first node of a path
// InPort is -1 (the traffic originates there); for the last, OutPort is -1.
type Traversal struct {
	Node    NodeID
	InPort  int
	OutPort int
}

// Path returns the port-level traversals of a minimum-hop path from src to
// dst, found by breadth-first search over links. The result includes both
// endpoints. It returns ErrNoPath if dst is unreachable.
func (g *Graph) Path(src, dst NodeID) ([]Traversal, error) {
	if _, ok := g.nodes[src]; !ok {
		return nil, fmt.Errorf("%w: unknown source %q", ErrNode, src)
	}
	if _, ok := g.nodes[dst]; !ok {
		return nil, fmt.Errorf("%w: unknown destination %q", ErrNode, dst)
	}
	if src == dst {
		return []Traversal{{Node: src, InPort: -1, OutPort: -1}}, nil
	}
	// BFS over nodes, remembering the link used to reach each node.
	prev := make(map[NodeID]int) // node -> link index used to enter it
	visited := map[NodeID]bool{src: true}
	queue := []NodeID{src}
	found := false
	for len(queue) > 0 && !found {
		cur := queue[0]
		queue = queue[1:]
		for _, li := range g.outgoing[cur] {
			l := g.links[li]
			if visited[l.To] {
				continue
			}
			visited[l.To] = true
			prev[l.To] = li
			if l.To == dst {
				found = true
				break
			}
			queue = append(queue, l.To)
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %q -> %q", ErrNoPath, src, dst)
	}
	// Reconstruct the link chain dst <- ... <- src.
	var chain []Link
	for at := dst; at != src; {
		l := g.links[prev[at]]
		chain = append(chain, l)
		at = l.From
	}
	// Reverse into src -> dst order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return traversalsFromChain(chain), nil
}

// traversalsFromChain converts a contiguous link chain into per-node
// traversals.
func traversalsFromChain(chain []Link) []Traversal {
	out := make([]Traversal, 0, len(chain)+1)
	out = append(out, Traversal{Node: chain[0].From, InPort: -1, OutPort: chain[0].FromPort})
	for i := 0; i < len(chain); i++ {
		in := chain[i].ToPort
		outPort := -1
		if i+1 < len(chain) {
			outPort = chain[i+1].FromPort
		}
		out = append(out, Traversal{Node: chain[i].To, InPort: in, OutPort: outPort})
	}
	return out
}

// Ring builds a unidirectional ring of n switches named by name(i), with the
// link from node i leaving output port outPort and entering node (i+1) mod n
// at input port inPort. It is the backbone shape of RTnet.
func Ring(g *Graph, n int, name func(int) NodeID, outPort, inPort int) error {
	if n < 2 {
		return fmt.Errorf("%w: ring needs at least 2 nodes, got %d", ErrNode, n)
	}
	for i := 0; i < n; i++ {
		if err := g.AddNode(name(i), KindSwitch); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		err := g.AddLink(Link{
			From: name(i), FromPort: outPort,
			To: name((i + 1) % n), ToPort: inPort,
		})
		if err != nil {
			return err
		}
	}
	return nil
}
