package topology

import (
	"errors"
	"fmt"
	"testing"
)

func TestAddNode(t *testing.T) {
	g := New()
	if err := g.AddNode("a", KindSwitch); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("a", KindHost); !errors.Is(err, ErrNode) {
		t.Errorf("duplicate AddNode error = %v, want ErrNode", err)
	}
	if err := g.AddNode("", KindSwitch); !errors.Is(err, ErrNode) {
		t.Errorf("empty ID error = %v, want ErrNode", err)
	}
	if err := g.AddNode("b", Kind(0)); !errors.Is(err, ErrNode) {
		t.Errorf("invalid kind error = %v, want ErrNode", err)
	}
	n, ok := g.Node("a")
	if !ok || n.Kind != KindSwitch {
		t.Errorf("Node(a) = %+v, %v", n, ok)
	}
	if _, ok := g.Node("zz"); ok {
		t.Error("Node(zz) found")
	}
}

func TestKindString(t *testing.T) {
	if KindSwitch.String() != "switch" || KindHost.String() != "host" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := g.AddNode(id, KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	ok := Link{From: "a", FromPort: 0, To: "b", ToPort: 0}
	if err := g.AddLink(ok); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		l    Link
	}{
		{"unknown source", Link{From: "zz", FromPort: 0, To: "b", ToPort: 1}},
		{"unknown dest", Link{From: "a", FromPort: 1, To: "zz", ToPort: 0}},
		{"self loop", Link{From: "a", FromPort: 1, To: "a", ToPort: 1}},
		{"negative port", Link{From: "a", FromPort: -1, To: "c", ToPort: 0}},
		{"output port reuse", Link{From: "a", FromPort: 0, To: "c", ToPort: 0}},
		{"input port reuse", Link{From: "c", FromPort: 0, To: "b", ToPort: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddLink(tt.l); !errors.Is(err, ErrLink) {
				t.Errorf("AddLink(%v) error = %v, want ErrLink", tt.l, err)
			}
		})
	}
}

func TestLinksAndOutLinks(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := g.AddNode(id, KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	l1 := Link{From: "a", FromPort: 0, To: "b", ToPort: 0}
	l2 := Link{From: "a", FromPort: 1, To: "c", ToPort: 0}
	for _, l := range []Link{l1, l2} {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Links(); len(got) != 2 {
		t.Fatalf("Links = %v", got)
	}
	out := g.OutLinks("a")
	if len(out) != 2 || out[0] != l1 || out[1] != l2 {
		t.Fatalf("OutLinks(a) = %v", out)
	}
	if got := g.OutLinks("b"); len(got) != 0 {
		t.Fatalf("OutLinks(b) = %v", got)
	}
	// Mutating the returned slice must not affect the graph.
	links := g.Links()
	links[0].From = "zz"
	if g.Links()[0].From != "a" {
		t.Error("Links() exposes internal state")
	}
}

func TestNodesSorted(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"c", "a", "b"} {
		if err := g.AddNode(id, KindHost); err != nil {
			t.Fatal(err)
		}
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0].ID != "a" || nodes[2].ID != "c" {
		t.Fatalf("Nodes = %v", nodes)
	}
}

func TestPathLinear(t *testing.T) {
	g := New()
	for _, id := range []NodeID{"a", "b", "c"} {
		if err := g.AddNode(id, KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddLink(Link{From: "a", FromPort: 5, To: "b", ToPort: 6}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: "b", FromPort: 7, To: "c", ToPort: 8}); err != nil {
		t.Fatal(err)
	}
	path, err := g.Path("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	want := []Traversal{
		{Node: "a", InPort: -1, OutPort: 5},
		{Node: "b", InPort: 6, OutPort: 7},
		{Node: "c", InPort: 8, OutPort: -1},
	}
	if len(path) != len(want) {
		t.Fatalf("Path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("Path[%d] = %v, want %v", i, path[i], want[i])
		}
	}
}

func TestPathSelf(t *testing.T) {
	g := New()
	if err := g.AddNode("a", KindHost); err != nil {
		t.Fatal(err)
	}
	path, err := g.Path("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Node != "a" {
		t.Fatalf("Path(a,a) = %v", path)
	}
}

func TestPathErrors(t *testing.T) {
	g := New()
	if err := g.AddNode("a", KindHost); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("b", KindHost); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Path("a", "zz"); !errors.Is(err, ErrNode) {
		t.Errorf("Path to unknown error = %v", err)
	}
	if _, err := g.Path("zz", "a"); !errors.Is(err, ErrNode) {
		t.Errorf("Path from unknown error = %v", err)
	}
	if _, err := g.Path("a", "b"); !errors.Is(err, ErrNoPath) {
		t.Errorf("Path with no route error = %v, want ErrNoPath", err)
	}
}

func TestPathPicksShortest(t *testing.T) {
	// a->b->d and a->c1->c2->d: BFS must choose the two-hop branch.
	g := New()
	for _, id := range []NodeID{"a", "b", "c1", "c2", "d"} {
		if err := g.AddNode(id, KindSwitch); err != nil {
			t.Fatal(err)
		}
	}
	links := []Link{
		{From: "a", FromPort: 0, To: "c1", ToPort: 0},
		{From: "c1", FromPort: 0, To: "c2", ToPort: 0},
		{From: "c2", FromPort: 0, To: "d", ToPort: 0},
		{From: "a", FromPort: 1, To: "b", ToPort: 0},
		{From: "b", FromPort: 0, To: "d", ToPort: 1},
	}
	for _, l := range links {
		if err := g.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	path, err := g.Path("a", "d")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[1].Node != "b" {
		t.Fatalf("Path = %v, want a->b->d", path)
	}
}

func TestRing(t *testing.T) {
	g := New()
	name := func(i int) NodeID { return NodeID(fmt.Sprintf("r%02d", i)) }
	if err := Ring(g, 16, name, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Nodes()); got != 16 {
		t.Fatalf("ring has %d nodes, want 16", got)
	}
	if got := len(g.Links()); got != 16 {
		t.Fatalf("ring has %d links, want 16", got)
	}
	// Going all the way around: r0 to r15 takes 15 hops.
	path, err := g.Path(name(0), name(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 16 {
		t.Fatalf("path around the ring has %d traversals, want 16", len(path))
	}
	// Wrap-around: r15 -> r0 is one hop.
	path, err = g.Path(name(15), name(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("wrap path has %d traversals, want 2", len(path))
	}
}

func TestRingTooSmall(t *testing.T) {
	g := New()
	if err := Ring(g, 1, func(i int) NodeID { return "x" }, 0, 0); !errors.Is(err, ErrNode) {
		t.Errorf("Ring(1) error = %v, want ErrNode", err)
	}
}
