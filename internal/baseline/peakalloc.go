// Package baseline implements the peak bandwidth allocation CAC that the
// paper's introduction argues against: admit a connection if and only if
// the aggregated peak cell rate on every link of its route stays within the
// link bandwidth. Peak allocation keeps links uncongested in the long run
// but ignores cell clumping, so it cannot guarantee hard queueing delay
// bounds — bursts of simultaneous arrivals overflow small real-time FIFOs
// that the bit-stream CAC would have protected.
package baseline

import (
	"errors"
	"fmt"
	"sync"
)

var (
	// ErrRejected reports a connection whose peak rate does not fit.
	ErrRejected = errors.New("baseline: connection rejected (peak bandwidth exhausted)")
	// ErrDuplicate reports an already-admitted connection ID.
	ErrDuplicate = errors.New("baseline: duplicate connection")
	// ErrUnknown reports an operation on an unknown connection.
	ErrUnknown = errors.New("baseline: unknown connection")
	// ErrBadRequest reports invalid admission parameters.
	ErrBadRequest = errors.New("baseline: invalid request")
)

// PeakAllocation is a peak bandwidth allocation admission controller over
// named unit-bandwidth links. It is safe for concurrent use.
type PeakAllocation struct {
	mu        sync.Mutex
	allocated map[string]float64
	conns     map[string]connAlloc
}

type connAlloc struct {
	pcr   float64
	links []string
}

// New returns an empty controller.
func New() *PeakAllocation {
	return &PeakAllocation{
		allocated: make(map[string]float64),
		conns:     make(map[string]connAlloc),
	}
}

// Admit reserves pcr on every link of the route. It fails with ErrRejected
// if any link's aggregate peak rate would exceed 1, leaving no state behind.
func (p *PeakAllocation) Admit(id string, pcr float64, links []string) error {
	if id == "" || len(links) == 0 {
		return fmt.Errorf("%w: id %q with %d links", ErrBadRequest, id, len(links))
	}
	if !(pcr > 0) || pcr > 1 {
		return fmt.Errorf("%w: PCR %g not in (0, 1]", ErrBadRequest, pcr)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.conns[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicate, id)
	}
	for _, l := range links {
		if p.allocated[l]+pcr > 1+1e-12 {
			return fmt.Errorf("%w: link %q at %g + %g", ErrRejected, l, p.allocated[l], pcr)
		}
	}
	for _, l := range links {
		p.allocated[l] += pcr
	}
	cp := make([]string, len(links))
	copy(cp, links)
	p.conns[id] = connAlloc{pcr: pcr, links: cp}
	return nil
}

// Release frees a connection's reservations.
func (p *PeakAllocation) Release(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.conns[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, id)
	}
	for _, l := range c.links {
		p.allocated[l] -= c.pcr
		if p.allocated[l] < 1e-12 {
			delete(p.allocated, l)
		}
	}
	delete(p.conns, id)
	return nil
}

// Allocated returns the aggregate peak rate reserved on a link.
func (p *PeakAllocation) Allocated(link string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated[link]
}

// Connections returns the number of admitted connections.
func (p *PeakAllocation) Connections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}
