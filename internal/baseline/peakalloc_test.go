package baseline

import (
	"errors"
	"fmt"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/sim"
	"atmcac/internal/traffic"
)

func TestAdmitAndRelease(t *testing.T) {
	p := New()
	if err := p.Admit("a", 0.5, []string{"l1", "l2"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit("b", 0.5, []string{"l1"}); err != nil {
		t.Fatal(err)
	}
	if got := p.Allocated("l1"); got != 1 {
		t.Errorf("Allocated(l1) = %g, want 1", got)
	}
	if got := p.Allocated("l2"); got != 0.5 {
		t.Errorf("Allocated(l2) = %g, want 0.5", got)
	}
	if err := p.Admit("c", 0.1, []string{"l1"}); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-allocation error = %v, want ErrRejected", err)
	}
	if err := p.Release("b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit("c", 0.1, []string{"l1"}); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	if got := p.Connections(); got != 2 {
		t.Errorf("Connections = %d, want 2", got)
	}
}

func TestAdmitValidation(t *testing.T) {
	p := New()
	if err := p.Admit("", 0.5, []string{"l"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty id error = %v", err)
	}
	if err := p.Admit("a", 0.5, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("no links error = %v", err)
	}
	if err := p.Admit("a", 0, []string{"l"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("zero pcr error = %v", err)
	}
	if err := p.Admit("a", 1.5, []string{"l"}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("pcr above one error = %v", err)
	}
	if err := p.Admit("a", 0.5, []string{"l"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Admit("a", 0.1, []string{"l"}); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate error = %v", err)
	}
	if err := p.Release("zz"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown release error = %v", err)
	}
}

func TestRejectionLeavesNoState(t *testing.T) {
	p := New()
	if err := p.Admit("a", 0.8, []string{"l2"}); err != nil {
		t.Fatal(err)
	}
	// Fails on l2, must not leave a partial reservation on l1.
	if err := p.Admit("b", 0.5, []string{"l1", "l2"}); !errors.Is(err, ErrRejected) {
		t.Fatal(err)
	}
	if got := p.Allocated("l1"); got != 0 {
		t.Errorf("partial reservation leaked: Allocated(l1) = %g", got)
	}
}

// TestPeakAllocationUnderestimatesDelay is the paper's introduction made
// concrete: 16 CBR connections with aggregate peak rate 0.8 pass peak
// allocation, but their simultaneous first cells need 16 queue slots — an
// 8-cell real-time FIFO drops cells. The bit-stream CAC computes the true
// worst case (15 cell times > 8) and rejects the excess connections, and
// the set it admits runs loss-free.
func TestPeakAllocationUnderestimatesDelay(t *testing.T) {
	const (
		k        = 16
		pcr      = 0.05
		queueCap = 8
	)
	// Peak allocation admits all 16.
	pa := New()
	for i := 0; i < k; i++ {
		if err := pa.Admit(fmt.Sprintf("c%d", i), pcr, []string{"shared"}); err != nil {
			t.Fatalf("peak allocation rejected connection %d: %v", i, err)
		}
	}

	// The bit-stream CAC rejects beyond 9 connections on an 8-cell queue.
	cac, err := core.NewSwitch(core.SwitchConfig{
		Name: "sw", QueueCells: map[core.Priority]float64{1: queueCap},
	})
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0
	for i := 0; i < k; i++ {
		_, err := cac.Admit(core.HopRequest{
			Conn: core.ConnID(fmt.Sprintf("c%d", i)), Spec: traffic.CBR(pcr),
			In: core.PortID(i), Out: 0, Priority: 1,
		})
		if err != nil {
			break
		}
		admitted++
	}
	if admitted >= k {
		t.Fatalf("bit-stream CAC admitted all %d connections onto an %d-cell queue", k, queueCap)
	}

	// Simulation of the peak-allocation decision: losses.
	runSim := func(sources int) sim.QueueStats {
		n := sim.New()
		sw, err := n.AddSwitch("sw", map[sim.Priority]int{1: queueCap})
		if err != nil {
			t.Fatal(err)
		}
		for vc := 0; vc < sources; vc++ {
			if err := sw.SetRoute(vc, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := n.AddSource(sim.SourceConfig{
				VC: vc, Spec: traffic.CBR(pcr), Dest: sw, InPort: vc,
			}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(5000)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Queues[sim.QueueKey("sw", 0, 1)]
	}
	if q := runSim(k); q.Drops == 0 {
		t.Error("peak-allocation-admitted set suffered no drops; scenario broken")
	}
	// The CAC-admitted subset runs loss-free.
	if q := runSim(admitted); q.Drops != 0 {
		t.Errorf("CAC-admitted subset dropped %d cells", q.Drops)
	}
}
