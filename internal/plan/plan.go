// Package plan loads and executes offline connection planning scenarios
// for RTnet — the workflow the paper describes for the current RTnet, where
// all real-time connections are permanent and the CAC check runs off-line
// to validate a configuration and size its buffers.
//
// Scenarios are JSON documents in physical units (Mbps, microseconds); the
// package converts to the normalized cell-time units of the analysis via
// the 155.52 Mbps OC-3 link parameters.
package plan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
)

// ErrScenario reports an invalid scenario document.
var ErrScenario = errors.New("plan: invalid scenario")

// Scenario is an offline planning problem: an RTnet shape plus the
// permanent real-time connections to establish on it.
type Scenario struct {
	Network     NetworkSpec      `json:"network"`
	Connections []ConnectionSpec `json:"connections"`
}

// NetworkSpec describes the RTnet instance.
type NetworkSpec struct {
	// RingNodes defaults to 16.
	RingNodes int `json:"ringNodes,omitempty"`
	// TerminalsPerNode defaults to 1.
	TerminalsPerNode int `json:"terminalsPerNode,omitempty"`
	// Queues maps priority level (as a JSON string key) to FIFO size in
	// cells; default {"1": 32}.
	Queues map[string]float64 `json:"queues,omitempty"`
	// Policy is "hard" (default) or "soft".
	Policy string `json:"policy,omitempty"`
	// Topology, when present, replaces the RTnet ring with an explicit
	// graph; connections then address hosts with From/To.
	Topology *TopologySpec `json:"topology,omitempty"`
}

// ConnectionSpec describes one broadcast connection in physical units.
type ConnectionSpec struct {
	ID string `json:"id"`
	// Origin and Terminal locate the sending terminal (RTnet mode).
	Origin   int `json:"origin,omitempty"`
	Terminal int `json:"terminal,omitempty"`
	// From and To name the endpoint hosts (explicit-topology mode).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// PCRMbps is the peak rate in Mbps; SCRMbps the sustainable rate
	// (0 or equal to PCRMbps means CBR); MBS the burst size in cells.
	PCRMbps float64 `json:"pcrMbps"`
	SCRMbps float64 `json:"scrMbps,omitempty"`
	MBS     float64 `json:"mbs,omitempty"`
	// Priority defaults to 1. AutoPriority instead derives the least
	// urgent priority whose contractual guarantee still meets DelayMicros
	// (the paper's discussion 2 guidance, made mechanical); it requires
	// DelayMicros and excludes an explicit Priority.
	Priority     int  `json:"priority,omitempty"`
	AutoPriority bool `json:"autoPriority,omitempty"`
	// DelayMicros is the requested end-to-end queueing delay bound in
	// microseconds; 0 means no end-to-end requirement.
	DelayMicros float64 `json:"delayMicros,omitempty"`
	// CDVTMicros is the source's cell delay variation tolerance in
	// microseconds (ATM Forum TM 4.0); it clumps the worst-case envelope.
	CDVTMicros float64 `json:"cdvtMicros,omitempty"`
}

// Load parses and validates a scenario document.
func Load(r io.Reader) (Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("%w: %v", ErrScenario, err)
	}
	if err := sc.validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

func (sc Scenario) validate() error {
	if len(sc.Connections) == 0 {
		return fmt.Errorf("%w: no connections", ErrScenario)
	}
	switch sc.Network.Policy {
	case "", "hard", "soft":
	default:
		return fmt.Errorf("%w: unknown policy %q", ErrScenario, sc.Network.Policy)
	}
	for key := range sc.Network.Queues {
		p, err := strconv.Atoi(key)
		if err != nil || p < 1 {
			return fmt.Errorf("%w: queue priority key %q", ErrScenario, key)
		}
	}
	seen := make(map[string]bool, len(sc.Connections))
	for i, c := range sc.Connections {
		if c.ID == "" {
			return fmt.Errorf("%w: connection %d has no id", ErrScenario, i)
		}
		if seen[c.ID] {
			return fmt.Errorf("%w: duplicate connection id %q", ErrScenario, c.ID)
		}
		seen[c.ID] = true
		if !(c.PCRMbps > 0) {
			return fmt.Errorf("%w: connection %q pcrMbps %g", ErrScenario, c.ID, c.PCRMbps)
		}
		if c.SCRMbps < 0 || c.SCRMbps > c.PCRMbps {
			return fmt.Errorf("%w: connection %q scrMbps %g", ErrScenario, c.ID, c.SCRMbps)
		}
		if c.DelayMicros < 0 {
			return fmt.Errorf("%w: connection %q delayMicros %g", ErrScenario, c.ID, c.DelayMicros)
		}
		if c.CDVTMicros < 0 {
			return fmt.Errorf("%w: connection %q cdvtMicros %g", ErrScenario, c.ID, c.CDVTMicros)
		}
		if c.AutoPriority {
			if c.DelayMicros <= 0 {
				return fmt.Errorf("%w: connection %q autoPriority requires delayMicros", ErrScenario, c.ID)
			}
			if c.Priority != 0 {
				return fmt.Errorf("%w: connection %q sets both priority and autoPriority", ErrScenario, c.ID)
			}
		}
		if sc.Network.Topology != nil {
			if c.From == "" || c.To == "" {
				return fmt.Errorf("%w: connection %q needs from/to hosts in topology mode", ErrScenario, c.ID)
			}
		} else if c.From != "" || c.To != "" {
			return fmt.Errorf("%w: connection %q uses from/to without a topology", ErrScenario, c.ID)
		}
	}
	return nil
}

// spec converts a connection's physical-unit descriptor to the normalized
// traffic model.
func (c ConnectionSpec) spec() (traffic.Spec, error) {
	pcr := traffic.OC3.Normalize(c.PCRMbps * 1e6)
	s := traffic.CBR(pcr)
	if c.SCRMbps != 0 && c.SCRMbps != c.PCRMbps {
		mbs := c.MBS
		if mbs == 0 {
			mbs = 1
		}
		s = traffic.VBR(pcr, traffic.OC3.Normalize(c.SCRMbps*1e6), mbs)
	}
	if c.CDVTMicros > 0 {
		cellUS := traffic.OC3.CellTimeSeconds() * 1e6
		s = s.WithCDVT(c.CDVTMicros / cellUS)
	}
	if err := s.Validate(); err != nil {
		return traffic.Spec{}, fmt.Errorf("connection %q: %w", c.ID, err)
	}
	return s, nil
}

// ConnResult is the outcome for one connection.
type ConnResult struct {
	ID       string
	Admitted bool
	// Reason explains a rejection.
	Reason string
	// BoundCells and BoundMicros report the end-to-end computed bound at
	// admission time.
	BoundCells  float64
	BoundMicros float64
	// GuaranteedCells is the contractual end-to-end bound (sum of per-hop
	// FIFO budgets).
	GuaranteedCells float64
}

// Report is the outcome of running a scenario.
type Report struct {
	Results  []ConnResult
	Admitted int
	Rejected int
	// WorstBoundCells is the largest admitted end-to-end computed bound.
	WorstBoundCells float64
}

// Run builds the RTnet and establishes each connection sequentially with
// the full CAC check (SETUP order matters for which connections get in
// when capacity runs out, mirroring on-line establishment; with fixed
// per-hop bounds the final admitted set is audit-clean regardless).
func (sc Scenario) Run() (Report, error) {
	queues := map[core.Priority]float64{1: rtnet.DefaultQueueCells}
	if len(sc.Network.Queues) > 0 {
		queues = make(map[core.Priority]float64, len(sc.Network.Queues))
		for key, cells := range sc.Network.Queues {
			p, err := strconv.Atoi(key)
			if err != nil {
				return Report{}, fmt.Errorf("%w: queue key %q", ErrScenario, key)
			}
			queues[core.Priority(p)] = cells
		}
	}
	var policy core.CDVPolicy = core.HardCDV{}
	if sc.Network.Policy == "soft" {
		policy = core.SoftCDV{}
	}
	if sc.Network.Topology != nil {
		return sc.runTopology(queues, policy)
	}
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        sc.Network.RingNodes,
		TerminalsPerNode: sc.Network.TerminalsPerNode,
		QueueCells:       queues,
		Policy:           policy,
	})
	if err != nil {
		return Report{}, err
	}
	report := Report{Results: make([]ConnResult, 0, len(sc.Connections))}
	for _, c := range sc.Connections {
		res := ConnResult{ID: c.ID}
		spec, err := c.spec()
		if err != nil {
			return Report{}, err
		}
		route, err := rt.BroadcastRoute(c.Origin, c.Terminal)
		if err != nil {
			return Report{}, fmt.Errorf("connection %q: %w", c.ID, err)
		}
		if err := runSetup(rt.Core(), c, spec, route, &res, &report); err != nil {
			return Report{}, err
		}
	}
	return report, nil
}

// runSetup establishes one connection and folds the outcome into the
// report. CAC rejections are recorded, not returned.
func runSetup(network *core.Network, c ConnectionSpec, spec traffic.Spec,
	route core.Route, res *ConnResult, report *Report) error {

	cellUS := traffic.OC3.CellTimeSeconds() * 1e6
	prio := core.Priority(c.Priority)
	if prio == 0 {
		prio = 1
	}
	if c.AutoPriority {
		assigned, err := network.AssignPriority(route, c.DelayMicros/cellUS)
		if err != nil {
			if !errors.Is(err, core.ErrRejected) {
				return fmt.Errorf("connection %q: %w", c.ID, err)
			}
			res.Reason = err.Error()
			report.Rejected++
			report.Results = append(report.Results, *res)
			return nil
		}
		prio = assigned
	}
	adm, err := network.Setup(context.Background(), core.ConnRequest{
		ID:         core.ConnID(c.ID),
		Spec:       spec,
		Priority:   prio,
		Route:      route,
		DelayBound: c.DelayMicros / cellUS,
	})
	if err != nil {
		if !errors.Is(err, core.ErrRejected) {
			return fmt.Errorf("connection %q: %w", c.ID, err)
		}
		res.Reason = err.Error()
		report.Rejected++
		report.Results = append(report.Results, *res)
		return nil
	}
	res.Admitted = true
	res.BoundCells = adm.EndToEndComputed
	res.BoundMicros = adm.EndToEndComputed * cellUS
	res.GuaranteedCells = adm.EndToEndGuaranteed
	if res.BoundCells > report.WorstBoundCells {
		report.WorstBoundCells = res.BoundCells
	}
	report.Admitted++
	report.Results = append(report.Results, *res)
	return nil
}

// Example returns a self-describing sample scenario.
func Example() Scenario {
	conns := []ConnectionSpec{
		{ID: "plc-scan", Origin: 0, PCRMbps: 8, DelayMicros: 1000},
		{ID: "drive-ctl", Origin: 3, PCRMbps: 6, DelayMicros: 1000},
		{ID: "vision", Origin: 5, PCRMbps: 20, SCRMbps: 4, MBS: 32, Priority: 2, CDVTMicros: 20},
		{ID: "telemetry", Origin: 7, PCRMbps: 12, SCRMbps: 2, MBS: 16, DelayMicros: 5000, AutoPriority: true},
	}
	sort.Slice(conns, func(i, j int) bool { return conns[i].ID < conns[j].ID })
	return Scenario{
		Network: NetworkSpec{
			RingNodes:        8,
			TerminalsPerNode: 2,
			Queues:           map[string]float64{"1": 32, "2": 128},
			Policy:           "hard",
		},
		Connections: conns,
	}
}
