package plan

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestLoadValid(t *testing.T) {
	doc := `{
		"network": {"ringNodes": 8, "terminalsPerNode": 2, "queues": {"1": 32}, "policy": "hard"},
		"connections": [
			{"id": "a", "origin": 0, "pcrMbps": 8, "delayMicros": 1000},
			{"id": "b", "origin": 1, "terminal": 1, "pcrMbps": 20, "scrMbps": 4, "mbs": 16, "priority": 1}
		]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Connections) != 2 || sc.Network.RingNodes != 8 {
		t.Fatalf("scenario = %+v", sc)
	}
}

func TestLoadErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"not json", `nope`},
		{"unknown field", `{"network": {"bogus": 1}, "connections": [{"id":"a","origin":0,"pcrMbps":1}]}`},
		{"no connections", `{"network": {}}`},
		{"bad policy", `{"network": {"policy": "maybe"}, "connections": [{"id":"a","origin":0,"pcrMbps":1}]}`},
		{"bad queue key", `{"network": {"queues": {"x": 32}}, "connections": [{"id":"a","origin":0,"pcrMbps":1}]}`},
		{"zero queue priority", `{"network": {"queues": {"0": 32}}, "connections": [{"id":"a","origin":0,"pcrMbps":1}]}`},
		{"missing id", `{"connections": [{"origin":0,"pcrMbps":1}]}`},
		{"duplicate id", `{"connections": [{"id":"a","origin":0,"pcrMbps":1},{"id":"a","origin":1,"pcrMbps":1}]}`},
		{"zero pcr", `{"connections": [{"id":"a","origin":0,"pcrMbps":0}]}`},
		{"scr above pcr", `{"connections": [{"id":"a","origin":0,"pcrMbps":1,"scrMbps":2}]}`},
		{"negative delay", `{"connections": [{"id":"a","origin":0,"pcrMbps":1,"delayMicros":-1}]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.doc)); !errors.Is(err, ErrScenario) {
				t.Errorf("Load error = %v, want ErrScenario", err)
			}
		})
	}
}

func TestExampleScenarioRuns(t *testing.T) {
	sc := Example()
	// The example round-trips through its own JSON encoding.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(sc); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	report, err := loaded.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Admitted != len(sc.Connections) {
		t.Fatalf("example scenario: %d/%d admitted: %+v",
			report.Admitted, len(sc.Connections), report.Results)
	}
	for _, r := range report.Results {
		if !r.Admitted {
			t.Errorf("connection %s rejected: %s", r.ID, r.Reason)
		}
		if r.BoundMicros <= 0 && r.BoundCells > 0 {
			t.Errorf("connection %s: inconsistent bound conversion %+v", r.ID, r)
		}
		if r.GuaranteedCells <= 0 {
			t.Errorf("connection %s: no guaranteed bound", r.ID)
		}
	}
	if report.WorstBoundCells <= 0 {
		t.Error("no worst bound recorded")
	}
}

func TestRunRejectsOverload(t *testing.T) {
	sc := Scenario{
		Network: NetworkSpec{RingNodes: 4, TerminalsPerNode: 16, Queues: map[string]float64{"1": 8}},
	}
	// 48 bursty connections onto 8-cell queues: some must be rejected.
	for i := 0; i < 48; i++ {
		sc.Connections = append(sc.Connections, ConnectionSpec{
			ID:       "c" + string(rune('a'+i/16)) + string(rune('a'+i%16)),
			Origin:   i % 4,
			Terminal: i / 4 % 12,
			PCRMbps:  2,
		})
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Rejected == 0 {
		t.Fatalf("no rejections: %+v", report)
	}
	if report.Admitted == 0 {
		t.Fatal("nothing admitted")
	}
	if report.Admitted+report.Rejected != len(sc.Connections) {
		t.Fatalf("counts %d+%d != %d", report.Admitted, report.Rejected, len(sc.Connections))
	}
	for _, r := range report.Results {
		if !r.Admitted && r.Reason == "" {
			t.Errorf("rejected connection %s has no reason", r.ID)
		}
	}
}

func TestRunDelayBudgetRejection(t *testing.T) {
	// 16 ring nodes x 32 cells = 480 cell times = 1309 us guaranteed; a
	// 500 us request must be refused outright.
	sc := Scenario{
		Connections: []ConnectionSpec{
			{ID: "tight", Origin: 0, PCRMbps: 1, DelayMicros: 500},
			{ID: "loose", Origin: 1, PCRMbps: 1, DelayMicros: 2000},
		},
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]ConnResult)
	for _, r := range report.Results {
		byID[r.ID] = r
	}
	if byID["tight"].Admitted {
		t.Error("500us request admitted over a 1309us guaranteed route")
	}
	if !byID["loose"].Admitted {
		t.Errorf("2000us request rejected: %s", byID["loose"].Reason)
	}
}

func TestRunSoftPolicy(t *testing.T) {
	mk := func(policy string) float64 {
		sc := Scenario{
			Network: NetworkSpec{RingNodes: 8, TerminalsPerNode: 2, Policy: policy},
		}
		for i := 0; i < 16; i++ {
			sc.Connections = append(sc.Connections, ConnectionSpec{
				ID: "c" + string(rune('a'+i)), Origin: i % 8, Terminal: i / 8,
				PCRMbps: 20, SCRMbps: 2, MBS: 8,
			})
		}
		report, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return report.WorstBoundCells
	}
	hard, soft := mk("hard"), mk("soft")
	if soft >= hard {
		t.Errorf("soft worst bound %g not below hard %g", soft, hard)
	}
}

func TestRunBadOrigin(t *testing.T) {
	sc := Scenario{
		Network:     NetworkSpec{RingNodes: 4},
		Connections: []ConnectionSpec{{ID: "a", Origin: 9, PCRMbps: 1}},
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("origin outside the ring accepted")
	}
}

func TestRunInvalidVBRConversion(t *testing.T) {
	// PCR above the OC-3 line rate normalizes past 1 and must be refused
	// by the traffic model.
	sc := Scenario{
		Connections: []ConnectionSpec{{ID: "a", Origin: 0, PCRMbps: 200, SCRMbps: 5, MBS: 4}},
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("200 Mbps peak on a 155 Mbps link accepted")
	}
}

func TestRunWithCDVT(t *testing.T) {
	// The same connection set with source jitter tolerance has a larger
	// (or equal) worst bound than without.
	mk := func(cdvtMicros float64) float64 {
		sc := Scenario{Network: NetworkSpec{RingNodes: 8, TerminalsPerNode: 2}}
		for i := 0; i < 16; i++ {
			sc.Connections = append(sc.Connections, ConnectionSpec{
				ID: "c" + string(rune('a'+i)), Origin: i % 8, Terminal: i / 8,
				PCRMbps: 4, CDVTMicros: cdvtMicros,
			})
		}
		report, err := sc.Run()
		if err != nil {
			t.Fatal(err)
		}
		if report.Rejected != 0 {
			t.Fatalf("rejections with cdvt=%g: %+v", cdvtMicros, report)
		}
		return report.WorstBoundCells
	}
	smooth, jittered := mk(0), mk(100)
	if jittered <= smooth {
		t.Errorf("CDVT bound %g not above smooth bound %g", jittered, smooth)
	}
	// Negative CDVT is rejected at load time.
	doc := `{"connections": [{"id":"a","origin":0,"pcrMbps":1,"cdvtMicros":-1}]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("negative cdvtMicros accepted")
	}
}

func TestWriteMarkdown(t *testing.T) {
	sc := Example()
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.WriteMarkdown(&sb, sc); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Connection admission plan", "RTnet ring, 8 nodes",
		"| plc-scan | admitted |", "4 admitted, 0 rejected",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Topology-mode header and rejection rows.
	tsc, err := Load(strings.NewReader(treeScenario))
	if err != nil {
		t.Fatal(err)
	}
	tsc.Connections = append(tsc.Connections, ConnectionSpec{
		ID: "too-tight", From: "plc", To: "drive", PCRMbps: 1, DelayMicros: 1,
	})
	treport, err := tsc.Run()
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := treport.WriteMarkdown(&sb, tsc); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "explicit topology, 3 switches, 4 hosts") {
		t.Errorf("markdown missing topology header:\n%s", out)
	}
	if !strings.Contains(out, "| too-tight | **REJECTED** |") {
		t.Errorf("markdown missing rejection row:\n%s", out)
	}
}
