package plan

import (
	"errors"
	"strings"
	"testing"
)

// treeScenario is a two-edge-switch campus in explicit-topology mode.
const treeScenario = `{
	"network": {
		"queues": {"1": 32},
		"topology": {
			"switches": ["edge0", "edge1", "core"],
			"hosts": ["plc", "hmi", "drive", "logger"],
			"links": [
				{"from": "plc",   "fromPort": 0, "to": "edge0", "toPort": 10, "duplex": true},
				{"from": "hmi",   "fromPort": 0, "to": "edge0", "toPort": 11, "duplex": true},
				{"from": "drive", "fromPort": 0, "to": "edge1", "toPort": 10, "duplex": true},
				{"from": "logger","fromPort": 0, "to": "edge1", "toPort": 11, "duplex": true},
				{"from": "edge0", "fromPort": 0, "to": "core",  "toPort": 0,  "duplex": true},
				{"from": "edge1", "fromPort": 0, "to": "core",  "toPort": 1,  "duplex": true}
			]
		}
	},
	"connections": [
		{"id": "scan",  "from": "plc",   "to": "drive",  "pcrMbps": 8,  "delayMicros": 500},
		{"id": "video", "from": "hmi",   "to": "logger", "pcrMbps": 30, "scrMbps": 5, "mbs": 32, "cdvtMicros": 20},
		{"id": "local", "from": "plc",   "to": "hmi",    "pcrMbps": 4}
	]
}`

func TestTopologyScenarioRuns(t *testing.T) {
	sc, err := Load(strings.NewReader(treeScenario))
	if err != nil {
		t.Fatal(err)
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Admitted != 3 || report.Rejected != 0 {
		t.Fatalf("report = %+v", report)
	}
	byID := make(map[string]ConnResult)
	for _, r := range report.Results {
		byID[r.ID] = r
	}
	// Cross-tree connections book three hops (edge, core, edge); the local
	// one books a single hop.
	if byID["scan"].GuaranteedCells != 96 {
		t.Errorf("scan guarantee = %g, want 96 (3 hops)", byID["scan"].GuaranteedCells)
	}
	if byID["local"].GuaranteedCells != 32 {
		t.Errorf("local guarantee = %g, want 32 (1 hop)", byID["local"].GuaranteedCells)
	}
	// The jittered VBR connection carries a nonzero bound.
	if byID["video"].BoundCells <= 0 {
		t.Errorf("video bound = %g, want > 0", byID["video"].BoundCells)
	}
}

func TestTopologyScenarioValidation(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"topology conn without endpoints", `{
			"network": {"topology": {"switches": ["s"], "hosts": ["h"],
				"links": [{"from": "h", "fromPort": 0, "to": "s", "toPort": 0}]}},
			"connections": [{"id": "a", "pcrMbps": 1}]
		}`},
		{"rtnet conn with endpoints", `{
			"connections": [{"id": "a", "from": "x", "to": "y", "pcrMbps": 1}]
		}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.doc)); !errors.Is(err, ErrScenario) {
				t.Errorf("Load error = %v, want ErrScenario", err)
			}
		})
	}
}

func TestTopologyScenarioGraphErrors(t *testing.T) {
	// Duplicate node names surface as scenario errors at run time.
	doc := `{
		"network": {"topology": {"switches": ["s", "s"], "hosts": ["h"],
			"links": []}},
		"connections": [{"id": "a", "from": "h", "to": "h", "pcrMbps": 1}]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); !errors.Is(err, ErrScenario) {
		t.Fatalf("Run error = %v, want ErrScenario", err)
	}
}

func TestTopologyScenarioNoRoute(t *testing.T) {
	doc := `{
		"network": {"topology": {"switches": ["s"], "hosts": ["a", "b"],
			"links": [{"from": "a", "fromPort": 0, "to": "s", "toPort": 0}]}},
		"connections": [{"id": "c", "from": "a", "to": "b", "pcrMbps": 1}]
	}`
	sc, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Run(); err == nil {
		t.Fatal("unreachable destination accepted")
	}
}

func TestTopologyScenarioBottleneck(t *testing.T) {
	// Saturate the shared uplink: later cross-tree connections are
	// rejected while local ones still fit.
	sc, err := Load(strings.NewReader(treeScenario))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		sc.Connections = append(sc.Connections, ConnectionSpec{
			ID:   "x" + string(rune('a'+i)),
			From: "plc", To: "logger",
			PCRMbps: 40, SCRMbps: 2, MBS: 16,
		})
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.Rejected == 0 {
		t.Fatalf("no rejections: %+v admitted", report.Admitted)
	}
	if report.Admitted < 3 {
		t.Fatalf("baseline connections rejected: %+v", report.Results[:3])
	}
}

func TestAutoPriorityAssignment(t *testing.T) {
	sc := Scenario{
		Network: NetworkSpec{
			RingNodes: 8, TerminalsPerNode: 1,
			Queues: map[string]float64{"1": 32, "2": 256},
		},
		Connections: []ConnectionSpec{
			// 7 hops: priority 1 guarantees 224 cells (~611us), priority 2
			// guarantees 1792 cells (~4886us).
			{ID: "tight", Origin: 0, PCRMbps: 4, DelayMicros: 1000, AutoPriority: true},
			{ID: "loose", Origin: 1, PCRMbps: 4, DelayMicros: 8000, AutoPriority: true},
			{ID: "hopeless", Origin: 2, PCRMbps: 4, DelayMicros: 100, AutoPriority: true},
		},
	}
	report, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[string]ConnResult)
	for _, r := range report.Results {
		byID[r.ID] = r
	}
	if !byID["tight"].Admitted || byID["tight"].GuaranteedCells != 224 {
		t.Errorf("tight = %+v, want priority-1 guarantee 224", byID["tight"])
	}
	if !byID["loose"].Admitted || byID["loose"].GuaranteedCells != 1792 {
		t.Errorf("loose = %+v, want priority-2 guarantee 1792", byID["loose"])
	}
	if byID["hopeless"].Admitted {
		t.Error("hopeless budget admitted")
	}
}

func TestAutoPriorityValidation(t *testing.T) {
	for _, doc := range []string{
		`{"connections": [{"id":"a","origin":0,"pcrMbps":1,"autoPriority":true}]}`,
		`{"connections": [{"id":"a","origin":0,"pcrMbps":1,"autoPriority":true,"priority":2,"delayMicros":100}]}`,
	} {
		if _, err := Load(strings.NewReader(doc)); !errors.Is(err, ErrScenario) {
			t.Errorf("Load(%q) error = %v, want ErrScenario", doc, err)
		}
	}
}
