package plan

import (
	"fmt"
	"io"

	"atmcac/internal/traffic"
)

// WriteMarkdown renders the report as a Markdown document suitable for a
// commissioning record: the admission table, the rejection reasons, and the
// headline numbers in both cell times and wall-clock units.
func (r Report) WriteMarkdown(w io.Writer, sc Scenario) error {
	cellUS := traffic.OC3.CellTimeSeconds() * 1e6
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("# Connection admission plan\n\n"); err != nil {
		return err
	}
	if sc.Network.Topology != nil {
		if err := p("Network: explicit topology, %d switches, %d hosts.\n\n",
			len(sc.Network.Topology.Switches), len(sc.Network.Topology.Hosts)); err != nil {
			return err
		}
	} else {
		ring := sc.Network.RingNodes
		if ring == 0 {
			ring = 16
		}
		terms := sc.Network.TerminalsPerNode
		if terms == 0 {
			terms = 1
		}
		if err := p("Network: RTnet ring, %d nodes, %d terminals per node.\n\n", ring, terms); err != nil {
			return err
		}
	}
	policy := sc.Network.Policy
	if policy == "" {
		policy = "hard"
	}
	if err := p("CDV accumulation: **%s**. Result: **%d admitted, %d rejected**; worst end-to-end bound **%.1f cell times (%.0f µs)**.\n\n",
		policy, r.Admitted, r.Rejected, r.WorstBoundCells, r.WorstBoundCells*cellUS); err != nil {
		return err
	}
	if err := p("| connection | verdict | e2e bound | guaranteed | detail |\n|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, res := range r.Results {
		if res.Admitted {
			if err := p("| %s | admitted | %.0f µs (%.1f cells) | %.0f cells | |\n",
				res.ID, res.BoundMicros, res.BoundCells, res.GuaranteedCells); err != nil {
				return err
			}
			continue
		}
		if err := p("| %s | **REJECTED** | | | %s |\n", res.ID, res.Reason); err != nil {
			return err
		}
	}
	return nil
}
