package plan

import (
	"fmt"

	"atmcac/internal/core"
	"atmcac/internal/routing"
	"atmcac/internal/topology"
)

// TopologySpec describes an explicit network graph, replacing the default
// RTnet ring. Connections then address hosts by name (ConnectionSpec.From
// and .To) and routes are derived by minimum-hop search.
type TopologySpec struct {
	// Switches and Hosts name the nodes.
	Switches []string `json:"switches"`
	Hosts    []string `json:"hosts"`
	// Links are the transmission links; Duplex adds the reverse direction
	// with mirrored ports.
	Links []LinkSpec `json:"links"`
}

// LinkSpec is one link of an explicit topology.
type LinkSpec struct {
	From     string `json:"from"`
	FromPort int    `json:"fromPort"`
	To       string `json:"to"`
	ToPort   int    `json:"toPort"`
	Duplex   bool   `json:"duplex,omitempty"`
}

// graph materializes the spec as a topology.Graph.
func (ts *TopologySpec) graph() (*topology.Graph, error) {
	g := topology.New()
	for _, sw := range ts.Switches {
		if err := g.AddNode(topology.NodeID(sw), topology.KindSwitch); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
	}
	for _, h := range ts.Hosts {
		if err := g.AddNode(topology.NodeID(h), topology.KindHost); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
	}
	for _, l := range ts.Links {
		link := topology.Link{
			From: topology.NodeID(l.From), FromPort: l.FromPort,
			To: topology.NodeID(l.To), ToPort: l.ToPort,
		}
		if err := g.AddLink(link); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrScenario, err)
		}
		if l.Duplex {
			reverse := topology.Link{
				From: topology.NodeID(l.To), FromPort: l.ToPort,
				To: topology.NodeID(l.From), ToPort: l.FromPort,
			}
			if err := g.AddLink(reverse); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrScenario, err)
			}
		}
	}
	return g, nil
}

// runTopology executes a scenario over an explicit graph.
func (sc Scenario) runTopology(queues map[core.Priority]float64, policy core.CDVPolicy) (Report, error) {
	g, err := sc.Network.Topology.graph()
	if err != nil {
		return Report{}, err
	}
	network, err := routing.BuildNetwork(g, queues, policy)
	if err != nil {
		return Report{}, err
	}
	report := Report{Results: make([]ConnResult, 0, len(sc.Connections))}
	for _, c := range sc.Connections {
		res := ConnResult{ID: c.ID}
		spec, err := c.spec()
		if err != nil {
			return Report{}, err
		}
		route, err := routing.Route(g, topology.NodeID(c.From), topology.NodeID(c.To))
		if err != nil {
			return Report{}, fmt.Errorf("connection %q: %w", c.ID, err)
		}
		if err := runSetup(network, c, spec, route, &res, &report); err != nil {
			return Report{}, err
		}
	}
	return report, nil
}
