package asciiplot

import (
	"errors"
	"strings"
	"testing"

	"atmcac/internal/experiments"
)

func TestRenderBasic(t *testing.T) {
	series := []experiments.Series{
		{Label: "rising", Points: []experiments.Point{{X: 0, Y: 0}, {X: 1, Y: 10}, {X: 2, Y: 20}}},
		{Label: "flat", Points: []experiments.Point{{X: 0, Y: 5}, {X: 2, Y: 5}}},
	}
	var sb strings.Builder
	if err := Render(&sb, series, Options{Width: 20, Height: 8, Title: "demo"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "* rising", "o flat", "+--------------------", "20", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The rising series' extremes land in opposite corners of the grid.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 8 {
		t.Fatalf("grid has %d rows, want 8:\n%s", len(gridLines), out)
	}
	top, bottom := gridLines[0], gridLines[len(gridLines)-1]
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("top row lacks the maximum point: %q", top)
	}
	if !strings.Contains(bottom, "*") {
		t.Errorf("bottom row lacks the minimum point: %q", bottom)
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Render(&sb, nil, Options{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("error = %v, want ErrEmpty", err)
	}
	if err := Render(&sb, []experiments.Series{{Label: "hollow"}}, Options{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("error = %v, want ErrEmpty", err)
	}
}

func TestRenderDegenerateScale(t *testing.T) {
	series := []experiments.Series{
		{Label: "point", Points: []experiments.Point{{X: 3, Y: 7}}},
	}
	var sb strings.Builder
	if err := Render(&sb, series, Options{Width: 10, Height: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Errorf("single point not plotted:\n%s", sb.String())
	}
}

func TestRenderRealFigure(t *testing.T) {
	series, err := experiments.Figure10(experiments.SymmetricConfig{
		RingNodes: 8,
		Terminals: []int{1, 8},
		Loads:     []float64{0.1, 0.3, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Render(&sb, series, Options{Title: "fig10"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "N=1") || !strings.Contains(sb.String(), "N=8") {
		t.Errorf("legend missing:\n%s", sb.String())
	}
}
