// Package asciiplot renders experiment series as plain-text scatter plots,
// so the paper's figures can be eyeballed straight from a terminal without
// any plotting dependency (the module is stdlib-only by design).
package asciiplot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"atmcac/internal/experiments"
)

// ErrEmpty reports that there is nothing to plot.
var ErrEmpty = errors.New("asciiplot: no points")

// Options controls the plot geometry.
type Options struct {
	// Width and Height are the interior plot size in characters; defaults
	// 64 x 20.
	Width  int
	Height int
	// Title is printed above the plot.
	Title string
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// seriesGlyphs mark the points of successive series.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render writes an ASCII plot of the series.
func Render(w io.Writer, series []experiments.Series, opts Options) error {
	opts = opts.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			points++
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if points == 0 {
		return ErrEmpty
	}
	// Avoid a degenerate scale when all values coincide.
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(opts.Width-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(opts.Height-1)))
			// Row 0 is the top of the grid.
			grid[opts.Height-1-row][col] = glyph
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.Title); err != nil {
			return err
		}
	}
	yLabelTop := fmt.Sprintf("%.4g", maxY)
	yLabelBot := fmt.Sprintf("%.4g", minY)
	labelWidth := len(yLabelTop)
	if len(yLabelBot) > labelWidth {
		labelWidth = len(yLabelBot)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelWidth, yLabelTop)
		case opts.Height - 1:
			label = fmt.Sprintf("%*s", labelWidth, yLabelBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelWidth),
		strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", labelWidth),
		opts.Width/2, minX, opts.Width-opts.Width/2, maxX); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", seriesGlyphs[si%len(seriesGlyphs)], s.Label); err != nil {
			return err
		}
	}
	return nil
}
