package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// startShardServer is startServer with a shard identity, returning the
// server too so the test can park a prepared hold on it.
func startShardServer(t *testing.T, id string) (string, *wire.Server) {
	t.Helper()
	rt, err := rtnet.New(rtnet.Config{RingNodes: 8, TerminalsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(rt.Core())
	srv.SetShardID(id)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return l.Addr().String(), srv
}

// TestShardStatusAndHealthSurfaces drives cacctl's shard status, shard
// reap and health commands against a shard holding one live prepare:
// health must name the role, epoch and shard, status must show the hold
// with its TTL, and reap must expire it once overdue.
func TestShardStatusAndHealthSurfaces(t *testing.T) {
	addr, _ := startShardServer(t, "s7")
	base := []string{"-addr", addr}

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	route, err := broadcastRoute(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ShardPrepare(context.Background(), "t1", core.ConnRequest{
		ID: "held", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() {
		if err := run(append(base, "health")); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"role: ", "(epoch ", "shard: s7", "prepared holds: 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("health output %q missing %q", out, want)
		}
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "shard", "status")); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"shard: s7", "role: ", "hold t1: connection held"} {
		if !strings.Contains(out, want) {
			t.Errorf("shard status output %q missing %q", out, want)
		}
	}

	time.Sleep(40 * time.Millisecond)
	out = captureStdout(t, func() {
		if err := run(append(base, "shard", "reap")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "reaped t1") {
		t.Errorf("shard reap output = %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(append(base, "shard", "status")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "prepared holds: none") {
		t.Errorf("post-reap status output = %q", out)
	}
}

// TestShardRouteOffline plans a route against a map spec with no server.
func TestShardRouteOffline(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"shard", "route",
			"-map", "s0@h0:1=sw0,sw1;s1@h1:1=sw2",
			"sw0", "sw1", "sw2"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{
		"leg 1: shard s0 (h0:1): sw0 -> sw1",
		"leg 2: shard s1 (h1:1): sw2",
		"3 hops over 2 shards",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shard route output %q missing %q", out, want)
		}
	}
	// A wrap revisiting s0 still counts 2 shards (the runs merge into one
	// prepared leg) and flags the -delay requirement.
	out = captureStdout(t, func() {
		if err := run([]string{"shard", "route",
			"-map", "s0@h0:1=sw0,sw1;s1@h1:1=sw2",
			"sw0", "sw2", "sw1"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{
		"leg 3: shard s0 (h0:1): sw1",
		"3 hops over 2 shards",
		"route revisits a shard",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("wrapped shard route output %q missing %q", out, want)
		}
	}
	if err := run([]string{"shard", "route", "-map", "s0@h0:1=sw0", "swX"}); err == nil {
		t.Error("unowned switch accepted")
	}
	if err := run([]string{"shard", "route", "-map", "garbage", "sw0"}); err == nil {
		t.Error("malformed map accepted")
	}
}
