// Command cacctl is the client of the cacd central CAC server: it requests
// real-time connection setups with the paper's (PCR, SCR, MBS, D)
// parameters, tears connections down, lists them, and queries end-to-end
// delay bounds.
//
// Usage:
//
//	cacctl [-addr HOST:PORT] setup    -id ID -origin N [-terminal N] [-ring N] [-pcr R] [-scr R] [-mbs N] [-prio P] [-delay CELLS]
//	cacctl [-addr HOST:PORT] teardown -id ID
//	cacctl [-addr HOST:PORT] list
//	cacctl [-addr HOST:PORT] bound    -origin N [-terminal N] [-ring N] [-prio P]
//
// setup and bound address RTnet broadcast routes: the connection enters the
// ring at node -origin via terminal -terminal and visits every other ring
// node (-ring must match the server's ring size).
package main

import (
	"flag"
	"fmt"
	"os"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cacctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cacctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7801", "cacd address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: setup, teardown, list, or bound")
	}
	client, err := wire.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "setup":
		return setup(client, rest[1:])
	case "teardown":
		return teardown(client, rest[1:])
	case "list":
		return list(client)
	case "bound":
		return bound(client, rest[1:])
	case "inspect":
		return inspect(client, rest[1:])
	case "audit":
		return audit(client)
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

func audit(client *wire.Client) error {
	violations, err := client.Audit()
	if err != nil {
		return err
	}
	if len(violations) == 0 {
		fmt.Println("audit clean: every queue within its guarantee")
		return nil
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION %s out %d prio %d: bound %.2f > limit %.0f\n",
			v.Switch, v.Out, v.Priority, v.Bound, v.Limit)
	}
	return fmt.Errorf("%d queues over budget", len(violations))
}

func inspect(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var (
		swName   = fs.String("switch", "", "restrict to one switch; empty means all")
		envelope = fs.Bool("envelope", false, "print the aggregated arrival envelopes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reports, err := client.Inspect(*swName)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		fmt.Println("no loaded queues")
		return nil
	}
	for _, r := range reports {
		status := fmt.Sprintf("bound %.2f / limit %.0f cells, backlog %.2f", r.Bound, r.Limit, r.Backlog)
		if r.Unstable {
			status = "UNSTABLE (delay unbounded)"
		}
		fmt.Printf("%s out %d prio %d: %s\n", r.Switch, r.Out, r.Priority, status)
		if *envelope {
			fmt.Print("  envelope: {")
			for i, sg := range r.Envelope {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Printf("(%.4g,%.4g)", sg.Rate, sg.Start)
			}
			fmt.Println("}")
		}
	}
	return nil
}

// broadcastRoute builds the RTnet broadcast route of (origin, terminal) on
// a ring of the given size.
func broadcastRoute(ring, origin, terminal int) (core.Route, error) {
	n, err := rtnet.New(rtnet.Config{RingNodes: ring, TerminalsPerNode: terminal + 1})
	if err != nil {
		return nil, err
	}
	return n.BroadcastRoute(origin, terminal)
}

func setup(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("setup", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "connection ID")
		ring     = fs.Int("ring", 16, "ring size (must match the server)")
		origin   = fs.Int("origin", 0, "origin ring node")
		terminal = fs.Int("terminal", 0, "origin terminal (0-based)")
		pcr      = fs.Float64("pcr", 0.01, "peak cell rate (normalized)")
		scr      = fs.Float64("scr", 0, "sustainable cell rate; 0 means CBR")
		mbs      = fs.Float64("mbs", 1, "maximum burst size (cells)")
		prio     = fs.Int("prio", 1, "priority (1 is highest)")
		delay    = fs.Float64("delay", 0, "requested end-to-end bound (cell times); 0 means none")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("setup requires -id")
	}
	spec := traffic.CBR(*pcr)
	if *scr > 0 {
		spec = traffic.VBR(*pcr, *scr, *mbs)
	}
	route, err := broadcastRoute(*ring, *origin, *terminal)
	if err != nil {
		return err
	}
	adm, err := client.Setup(core.ConnRequest{
		ID:         core.ConnID(*id),
		Spec:       spec,
		Priority:   core.Priority(*prio),
		Route:      route,
		DelayBound: *delay,
	})
	if err != nil {
		return err
	}
	fmt.Printf("connected %s: end-to-end guaranteed %.0f cell times, computed %.1f\n",
		adm.ID, adm.EndToEndGuaranteed, adm.EndToEndComputed)
	return nil
}

func teardown(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("teardown", flag.ContinueOnError)
	id := fs.String("id", "", "connection ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("teardown requires -id")
	}
	if err := client.Teardown(core.ConnID(*id)); err != nil {
		return err
	}
	fmt.Printf("released %s\n", *id)
	return nil
}

func list(client *wire.Client) error {
	ids, err := client.List()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		fmt.Println("no connections")
		return nil
	}
	for _, id := range ids {
		fmt.Println(id)
	}
	return nil
}

func bound(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("bound", flag.ContinueOnError)
	var (
		ring     = fs.Int("ring", 16, "ring size (must match the server)")
		origin   = fs.Int("origin", 0, "origin ring node")
		terminal = fs.Int("terminal", 0, "origin terminal (0-based)")
		prio     = fs.Int("prio", 1, "priority")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	route, err := broadcastRoute(*ring, *origin, *terminal)
	if err != nil {
		return err
	}
	d, err := client.RouteBound(route, core.Priority(*prio))
	if err != nil {
		return err
	}
	fmt.Printf("end-to-end computed bound: %.1f cell times (%.0f us on OC-3)\n",
		d, d*traffic.OC3.CellTimeSeconds()*1e6)
	return nil
}
