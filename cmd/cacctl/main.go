// Command cacctl is the client of the cacd central CAC server: it requests
// real-time connection setups with the paper's (PCR, SCR, MBS, D)
// parameters, tears connections down, lists them, and queries end-to-end
// delay bounds.
//
// Usage:
//
//	cacctl [-addr HOST:PORT] setup        -id ID -origin N [-terminal N] [-ring N] [-pcr R] [-scr R] [-mbs N] [-prio P] [-delay CELLS] [-timeout D] [-retry]
//	cacctl [-addr HOST:PORT] teardown     -id ID
//	cacctl [-addr HOST:PORT] list
//	cacctl [-addr HOST:PORT] bound        -origin N [-terminal N] [-ring N] [-prio P]
//	cacctl [-addr HOST:PORT] fail-link    -node N [-ring N]
//	cacctl [-addr HOST:PORT] restore-link -node N [-ring N]
//	cacctl [-addr HOST:PORT] health
//	cacctl [-addr HOST:PORT] metrics [-match SUBSTRING]
//	cacctl [-addr HOST:PORT] promote
//	cacctl [-addr HOST:PORT] replication
//	cacctl [-addr HOST:PORT] shard status
//	cacctl [-addr HOST:PORT] shard reap
//	cacctl shard route -map SPEC SWITCH...
//	cacctl state verify [-journal FILE] STATE
//	cacctl state show   [-journal FILE] STATE
//
// setup and bound address RTnet broadcast routes: the connection enters the
// ring at node -origin via terminal -terminal and visits every other ring
// node (-ring must match the server's ring size).
//
// fail-link declares primary ring link N -> N+1 failed: the server evicts
// every connection traversing it and re-admits each over the wrapped ring,
// reporting the per-connection outcomes. restore-link clears the failure.
// health reports connection count, replication role and epoch, failed
// links, audit state and — when the server runs with overload control —
// the per-class admit/shed counters.
// metrics prints the server's full counter snapshot (setups by outcome,
// rejections by taxonomy code, journal latencies, ...) over the CAC
// protocol, no scrape endpoint required. Failed commands print the
// server's stable error code as a trailing (code=...) when one was sent.
//
// shard status prints a sharded server's two-phase posture — shard name,
// role, epoch and the live prepared holds with their TTLs. Pointed at a
// coordinator it renders the whole cluster: the coordinator's own term,
// fencing state and in-doubt count, then one line per shard pair with
// the driven member's replication role and epoch, the probed peer's, and
// the pair's standby lag. shard reap forces an orphan-reaper pass and
// lists the expired transactions. shard route is offline: given the -map
// spec a coordinator runs with (replicated pair entries
// s0@primary|standby=sw0,... included), it prints how a route splits
// into per-shard legs.
//
// state verify checks a cacd snapshot+journal pair offline — CRC status,
// record counts, sequence watermark, torn-tail position — without a
// running daemon and without modifying either file; it exits non-zero
// when the snapshot is corrupt. state show additionally prints the
// admission state a recovery would replay.
//
// setup -timeout bounds the whole call and propagates the remaining budget
// to the server, which abandons the admission mid-route when it expires.
// setup -retry backs off and retries when the server sheds the request,
// honouring the server's retry-after hint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/overload"
	"atmcac/internal/rtnet"
	"atmcac/internal/shard"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		// Surface the server's stable machine-readable code alongside the
		// message, so scripts can branch on it without string matching.
		var remote *wire.RemoteError
		if errors.As(err, &remote) && remote.Code != "" {
			fmt.Fprintf(os.Stderr, "cacctl: %v (code=%s)\n", err, remote.Code)
		} else {
			fmt.Fprintln(os.Stderr, "cacctl:", err)
		}
		os.Exit(1)
	}
}

// dialProto dials addr under the -proto policy.
func dialProto(addr, proto string) (*wire.Client, error) {
	switch proto {
	case "auto":
		return wire.Dial(addr)
	case "json":
		return wire.DialJSON(addr)
	case "binary":
		client, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		if client.Proto() != wire.ProtoBinary {
			_ = client.Close()
			return nil, fmt.Errorf("server at %s declined the binary codec (use -proto auto or json)", addr)
		}
		return client, nil
	default:
		return nil, fmt.Errorf("unknown -proto %q (auto, binary, json)", proto)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cacctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7801", "cacd address")
	proto := fs.String("proto", "auto", "wire codec: auto (negotiate binary, fall back to JSON), binary (require it), or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: setup, teardown, list, or bound")
	}
	// The state subcommand inspects persistence files on the local disk —
	// its whole point is working while the daemon is down, so it must not
	// dial the server. shard route only consults the map spec, so it works
	// offline too.
	if rest[0] == "state" {
		return stateCmd(rest[1:])
	}
	if rest[0] == "shard" && len(rest) > 1 && rest[1] == "route" {
		return shardRoute(rest[2:])
	}
	client, err := dialProto(*addr, *proto)
	if err != nil {
		return err
	}
	defer client.Close()

	switch rest[0] {
	case "setup":
		return setup(client, rest[1:])
	case "teardown":
		return teardown(client, rest[1:])
	case "list":
		return list(client)
	case "bound":
		return bound(client, rest[1:])
	case "inspect":
		return inspect(client, rest[1:])
	case "audit":
		return audit(client)
	case "fail-link":
		return failLink(client, rest[1:])
	case "restore-link":
		return restoreLink(client, rest[1:])
	case "health":
		return health(client)
	case "metrics":
		return metrics(client, rest[1:])
	case "promote":
		return promote(client)
	case "replication":
		return replication(client)
	case "shard":
		return shardCmd(client, rest[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// stateCmd is the offline persistence inspector: verify checks a
// snapshot+journal pair's integrity without a running daemon (and
// without modifying anything — no quarantine, no torn-tail repair),
// show additionally prints the admission state a recovery would replay.
func stateCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("state requires a subcommand: verify or show")
	}
	sub := args[0]
	if sub != "verify" && sub != "show" {
		return fmt.Errorf("unknown state subcommand %q (want verify or show)", sub)
	}
	fs := flag.NewFlagSet("state "+sub, flag.ContinueOnError)
	jpath := fs.String("journal", "", "write-ahead journal file; defaults to STATE.journal")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("state %s requires exactly one snapshot path: cacctl state %s [-journal FILE] STATE", sub, sub)
	}
	path := fs.Arg(0)
	if *jpath == "" {
		*jpath = path + ".journal"
	}

	st, warning, serr := wire.NewStateStore(path).ReadState()
	if serr != nil {
		fmt.Printf("snapshot %s: CORRUPT: %v\n", path, serr)
	} else {
		status := "checksum ok"
		if warning != "" {
			status = warning
		}
		fmt.Printf("snapshot %s: %d connections, %d failed links, watermark %d, %s\n",
			path, len(st.Connections), len(st.FailedLinks), st.LastSeq, status)
	}

	scan, jerr := journal.ScanFile(journal.OSFS{}, *jpath)
	if jerr != nil {
		return fmt.Errorf("journal %s: %w", *jpath, jerr)
	}
	past := 0
	for _, rec := range scan.Records {
		if rec.Seq > st.LastSeq {
			past++
		}
	}
	if scan.Torn {
		fmt.Printf("journal %s: %d valid records (%d past watermark), TORN at byte %d (repaired on next daemon boot)\n",
			*jpath, len(scan.Records), past, scan.Valid)
	} else {
		fmt.Printf("journal %s: %d valid records (%d past watermark), clean\n",
			*jpath, len(scan.Records), past)
	}

	if sub == "show" && serr == nil {
		final := journal.Replay(journal.State{
			Requests:    st.Connections,
			FailedLinks: st.FailedLinks,
		}, st.LastSeq, scan.Records)
		fmt.Printf("replayed state: %d connections, %d failed links\n",
			len(final.Requests), len(final.FailedLinks))
		for _, req := range final.Requests {
			fmt.Printf("  %s prio %d, %d hops\n", req.ID, req.Priority, len(req.Route))
		}
		for _, l := range final.FailedLinks {
			fmt.Printf("  link DOWN %s\n", l)
		}
	}
	if serr != nil {
		return fmt.Errorf("snapshot is corrupt")
	}
	return nil
}

// primaryLinkFlags parses -node/-ring into the switch names of primary
// ring link node -> node+1.
func primaryLinkFlags(name string, args []string) (from, to string, err error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var (
		node = fs.Int("node", -1, "transmitting ring node of the primary link (link is node -> node+1)")
		ring = fs.Int("ring", 16, "ring size (must match the server)")
	)
	if err := fs.Parse(args); err != nil {
		return "", "", err
	}
	if *node < 0 || *node >= *ring {
		return "", "", fmt.Errorf("%s requires -node in [0, %d)", name, *ring)
	}
	return rtnet.SwitchName(*node), rtnet.SwitchName((*node + 1) % *ring), nil
}

func failLink(client *wire.Client, args []string) error {
	from, to, err := primaryLinkFlags("fail-link", args)
	if err != nil {
		return err
	}
	report, err := client.FailLink(context.Background(), from, to)
	if err != nil {
		return err
	}
	fmt.Printf("link %s failed: %d connections evicted\n", report.Link, len(report.Outcomes))
	down := 0
	for _, o := range report.Outcomes {
		if o.Readmitted {
			fmt.Printf("  re-admitted %s (%d attempts)\n", o.ID, o.Attempts)
		} else {
			down++
			fmt.Printf("  DOWN %s: %s\n", o.ID, o.Error)
		}
	}
	if down > 0 {
		return fmt.Errorf("%d connections not re-admitted in degraded mode", down)
	}
	return nil
}

func restoreLink(client *wire.Client, args []string) error {
	from, to, err := primaryLinkFlags("restore-link", args)
	if err != nil {
		return err
	}
	if err := client.RestoreLink(context.Background(), from, to); err != nil {
		return err
	}
	fmt.Printf("link %s->%s restored\n", from, to)
	return nil
}

func health(client *wire.Client) error {
	h, err := client.Health(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("connections: %d\n", h.Connections)
	// Role and epoch travel in every health response, so one command
	// tells primary from fenced standby — and names the shard when the
	// server is one partition of a sharded CAC.
	if h.Role != "" {
		fmt.Printf("role: %s (epoch %d)\n", h.Role, h.Epoch)
	}
	if h.ShardID != "" {
		fmt.Printf("shard: %s\n", h.ShardID)
	}
	if h.Prepared > 0 {
		fmt.Printf("prepared holds: %d\n", h.Prepared)
	}
	if len(h.FailedLinks) == 0 {
		fmt.Println("links: all up")
	} else {
		for _, l := range h.FailedLinks {
			fmt.Printf("link DOWN: %s\n", l)
		}
	}
	fmt.Printf("audit violations: %d\n", h.Violations)
	if h.Draining {
		fmt.Println("state: draining")
	}
	if h.Overload != nil {
		fmt.Printf("overload: in-flight %d, shed %d\n", h.Overload.InFlight, h.Overload.TotalShed())
		for _, class := range []string{"recovery", "setup-high", "setup-low", "read"} {
			adm, shed := h.Overload.Admitted[class], h.Overload.Shed[class]
			if adm == 0 && shed == 0 {
				continue
			}
			fmt.Printf("  %-10s admitted %d, shed %d\n", class, adm, shed)
		}
	}
	if h.Violations > 0 {
		return fmt.Errorf("%d queues over budget", h.Violations)
	}
	return nil
}

// metrics prints the server's counter snapshot, carried over the CAC
// protocol itself via the health operation — no scrape endpoint needed.
func metrics(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	match := fs.String("match", "", "print only metrics whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := client.Health(context.Background())
	if err != nil {
		return err
	}
	if len(h.Metrics) == 0 {
		return fmt.Errorf("server reports no metrics (observability not attached)")
	}
	names := make([]string, 0, len(h.Metrics))
	for name := range h.Metrics {
		if *match != "" && !strings.Contains(name, *match) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%s %g\n", name, h.Metrics[name])
	}
	return nil
}

// promote asks a warm standby to take over as primary: it bumps the
// replication epoch, persists a snapshot at the new epoch, and starts
// accepting writes; the old primary is fenced when it next makes contact.
func promote(client *wire.Client) error {
	rep, err := client.Promote(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("promoted: primary at epoch %d (journal watermark %d)\n", rep.Epoch, rep.LastSeq)
	return nil
}

// replication prints the node's replication posture: role, epoch,
// stream liveness and the ack watermark/lag.
func replication(client *wire.Client) error {
	rep, err := client.Replication(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("role: %s\n", rep.Role)
	fmt.Printf("epoch: %d\n", rep.Epoch)
	if rep.Role == "fenced" {
		fmt.Printf("fenced by epoch: %d\n", rep.FencedBy)
	}
	if rep.Mode != "" {
		fmt.Printf("mode: %s\n", rep.Mode)
	}
	fmt.Printf("journal watermark: %d\n", rep.LastSeq)
	switch rep.Role {
	case "primary":
		if rep.Mode == "" {
			break
		}
		if rep.Connected {
			fmt.Printf("standby: connected, acked seq %d, lag %d\n", rep.AckedSeq, rep.Lag)
		} else {
			fmt.Println("standby: not connected")
		}
	case "standby":
		if rep.Connected {
			fmt.Printf("primary: connected, applied seq %d\n", rep.AckedSeq)
		} else {
			fmt.Println("primary: not connected")
		}
	}
	return nil
}

// shardCmd holds the online shard inspectors: status prints one shard's
// (or the coordinator's) two-phase posture, reap forces an orphan-reaper
// pass. The offline route planner is handled before dialing.
func shardCmd(client *wire.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("shard requires a subcommand: status, reap, or route")
	}
	switch args[0] {
	case "status":
		st, fleet, warning, err := client.ShardStatusFleet(context.Background())
		if err != nil {
			return err
		}
		printShardStatus(st)
		printShardFleet(fleet)
		if warning != "" {
			fmt.Printf("warning: %s\n", warning)
		}
		return nil
	case "reap":
		reaped, err := client.ShardReap(context.Background())
		if err != nil {
			return err
		}
		if len(reaped) == 0 {
			fmt.Println("no overdue prepared holds")
			return nil
		}
		for _, txn := range reaped {
			fmt.Printf("reaped %s\n", txn)
		}
		return nil
	default:
		return fmt.Errorf("unknown shard subcommand %q (want status, reap, or route)", args[0])
	}
}

func printShardStatus(st *wire.ShardStatusReport) {
	if st.ShardID != "" {
		fmt.Printf("shard: %s\n", st.ShardID)
	}
	fmt.Printf("role: %s (epoch %d)\n", st.Role, st.Epoch)
	if st.CoordEpoch > 0 {
		fmt.Printf("coordinator term: %d\n", st.CoordEpoch)
	}
	if st.Role == "coordinator" || (st.Role == "fenced" && st.ShardID == "coordinator") {
		fmt.Printf("in-doubt transactions: %d\n", st.InDoubt)
	}
	if len(st.Prepared) == 0 {
		fmt.Println("prepared holds: none")
		return
	}
	for _, h := range st.Prepared {
		state := fmt.Sprintf("expires in %dms", h.ExpiresInMillis)
		if h.ExpiresInMillis < 0 {
			state = "OVERDUE (next reaper pass expires it)"
		}
		fmt.Printf("hold %s: connection %s, %s\n", h.Txn, h.ID, state)
	}
}

// printShardFleet renders the coordinator's per-pair fan-out: one line
// per shard naming the member the coordinator currently drives, its
// replication role and epoch, the probed peer, and the standby lag of a
// replicated pair.
func printShardFleet(fleet []wire.ShardStatusReport) {
	for _, sh := range fleet {
		line := fmt.Sprintf("shard %s: %s (epoch %d)", sh.ShardID, sh.Role, sh.Epoch)
		if sh.Addr != "" {
			line += " at " + sh.Addr
		}
		if sh.PeerAddr != "" {
			line += fmt.Sprintf(", peer %s (epoch %d) at %s", sh.PeerRole, sh.PeerEpoch, sh.PeerAddr)
			line += fmt.Sprintf(", standby lag %d", sh.StandbyLag)
		}
		if n := len(sh.Prepared); n > 0 {
			line += fmt.Sprintf(", %d prepared holds", n)
		}
		fmt.Println(line)
	}
}

// shardRoute plans a route against a shard map offline: it prints which
// shard owns each contiguous run of hops in path order. The coordinator
// itself prepares one merged leg per shard, so a route that revisits a
// shard (a ring wrap) is flagged: it reaches that shard as a single
// prepare and needs an explicit end-to-end delay bound (-delay).
func shardRoute(args []string) error {
	fs := flag.NewFlagSet("shard route", flag.ContinueOnError)
	mapSpec := fs.String("map", "", "shard map (s0@primary|standby=sw0,sw1;...), as passed to cacd -shard-map")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapSpec == "" {
		return fmt.Errorf("shard route requires -map")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("shard route requires the route's switch names: cacctl shard route -map SPEC sw0 sw1 ...")
	}
	m, err := shard.ParseMap(*mapSpec)
	if err != nil {
		return err
	}
	route := make(core.Route, fs.NArg())
	for i, sw := range fs.Args() {
		route[i] = core.Hop{Switch: sw}
	}
	segs, err := m.Segments(route)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		names := make([]string, len(seg.Route))
		for j, hop := range seg.Route {
			names[j] = hop.Switch
		}
		fmt.Printf("leg %d: shard %s (%s): %s\n", i+1, seg.Shard.ID, seg.Shard.Addr, strings.Join(names, " -> "))
	}
	legs, interleaved, err := m.Legs(route)
	if err != nil {
		return err
	}
	fmt.Printf("%d hops over %d shards\n", len(route), len(legs))
	if interleaved {
		fmt.Println("route revisits a shard: its runs are prepared as one merged leg; setup needs an explicit -delay bound")
	}
	return nil
}

func audit(client *wire.Client) error {
	violations, err := client.Audit(context.Background())
	if err != nil {
		return err
	}
	if len(violations) == 0 {
		fmt.Println("audit clean: every queue within its guarantee")
		return nil
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION %s out %d prio %d: bound %.2f > limit %.0f\n",
			v.Switch, v.Out, v.Priority, v.Bound, v.Limit)
	}
	return fmt.Errorf("%d queues over budget", len(violations))
}

func inspect(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	var (
		swName   = fs.String("switch", "", "restrict to one switch; empty means all")
		envelope = fs.Bool("envelope", false, "print the aggregated arrival envelopes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reports, err := client.Inspect(context.Background(), *swName)
	if err != nil {
		return err
	}
	if len(reports) == 0 {
		fmt.Println("no loaded queues")
		return nil
	}
	for _, r := range reports {
		status := fmt.Sprintf("bound %.2f / limit %.0f cells, backlog %.2f", r.Bound, r.Limit, r.Backlog)
		if r.Unstable {
			status = "UNSTABLE (delay unbounded)"
		}
		fmt.Printf("%s out %d prio %d: %s\n", r.Switch, r.Out, r.Priority, status)
		if *envelope {
			fmt.Print("  envelope: {")
			for i, sg := range r.Envelope {
				if i > 0 {
					fmt.Print(",")
				}
				fmt.Printf("(%.4g,%.4g)", sg.Rate, sg.Start)
			}
			fmt.Println("}")
		}
	}
	return nil
}

// broadcastRoute builds the RTnet broadcast route of (origin, terminal) on
// a ring of the given size.
func broadcastRoute(ring, origin, terminal int) (core.Route, error) {
	n, err := rtnet.New(rtnet.Config{RingNodes: ring, TerminalsPerNode: terminal + 1})
	if err != nil {
		return nil, err
	}
	return n.BroadcastRoute(origin, terminal)
}

func setup(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("setup", flag.ContinueOnError)
	var (
		id       = fs.String("id", "", "connection ID")
		ring     = fs.Int("ring", 16, "ring size (must match the server)")
		origin   = fs.Int("origin", 0, "origin ring node")
		terminal = fs.Int("terminal", 0, "origin terminal (0-based)")
		pcr      = fs.Float64("pcr", 0.01, "peak cell rate (normalized)")
		scr      = fs.Float64("scr", 0, "sustainable cell rate; 0 means CBR")
		mbs      = fs.Float64("mbs", 1, "maximum burst size (cells)")
		prio     = fs.Int("prio", 1, "priority (1 is highest)")
		delay    = fs.Float64("delay", 0, "requested end-to-end bound (cell times); 0 means none")
		timeout  = fs.Duration("timeout", 0, "overall setup deadline, propagated to the server; 0 means none")
		retry    = fs.Bool("retry", false, "back off and retry when the server sheds the request as overloaded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("setup requires -id")
	}
	spec := traffic.CBR(*pcr)
	if *scr > 0 {
		spec = traffic.VBR(*pcr, *scr, *mbs)
	}
	route, err := broadcastRoute(*ring, *origin, *terminal)
	if err != nil {
		return err
	}
	req := core.ConnRequest{
		ID:         core.ConnID(*id),
		Spec:       spec,
		Priority:   core.Priority(*prio),
		Route:      route,
		DelayBound: *delay,
	}
	var opts []wire.CallOption
	if *timeout > 0 {
		opts = append(opts, wire.WithTimeout(*timeout))
	}
	if *retry {
		opts = append(opts, wire.WithRetry(&overload.Backoff{}))
	}
	adm, err := client.Setup(context.Background(), req, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("connected %s: end-to-end guaranteed %.0f cell times, computed %.1f\n",
		adm.ID, adm.EndToEndGuaranteed, adm.EndToEndComputed)
	return nil
}

func teardown(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("teardown", flag.ContinueOnError)
	id := fs.String("id", "", "connection ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("teardown requires -id")
	}
	if err := client.Teardown(context.Background(), core.ConnID(*id)); err != nil {
		return err
	}
	fmt.Printf("released %s\n", *id)
	return nil
}

func list(client *wire.Client) error {
	ids, err := client.List(context.Background())
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		fmt.Println("no connections")
		return nil
	}
	for _, id := range ids {
		fmt.Println(id)
	}
	return nil
}

func bound(client *wire.Client, args []string) error {
	fs := flag.NewFlagSet("bound", flag.ContinueOnError)
	var (
		ring     = fs.Int("ring", 16, "ring size (must match the server)")
		origin   = fs.Int("origin", 0, "origin ring node")
		terminal = fs.Int("terminal", 0, "origin terminal (0-based)")
		prio     = fs.Int("prio", 1, "priority")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	route, err := broadcastRoute(*ring, *origin, *terminal)
	if err != nil {
		return err
	}
	d, err := client.RouteBound(context.Background(), route, core.Priority(*prio))
	if err != nil {
		return err
	}
	fmt.Printf("end-to-end computed bound: %.1f cell times (%.0f us on OC-3)\n",
		d, d*traffic.OC3.CellTimeSeconds()*1e6)
	return nil
}
