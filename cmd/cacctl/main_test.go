package main

import (
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

// startServer runs an in-process cacd-equivalent on a loopback listener.
func startServer(t *testing.T) string {
	t.Helper()
	rt, err := rtnet.New(rtnet.Config{RingNodes: 8, TerminalsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(rt.Core())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return l.Addr().String()
}

func TestFullLifecycle(t *testing.T) {
	addr := startServer(t)
	base := []string{"-addr", addr}

	out := captureStdout(t, func() {
		if err := run(append(base, "setup", "-id", "c1", "-ring", "8",
			"-origin", "2", "-terminal", "1", "-pcr", "0.05")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "connected c1") {
		t.Errorf("setup output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "setup", "-id", "c2", "-ring", "8",
			"-origin", "3", "-pcr", "0.3", "-scr", "0.05", "-mbs", "8")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "connected c2") {
		t.Errorf("VBR setup output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "list")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "c1") || !strings.Contains(out, "c2") {
		t.Errorf("list output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "bound", "-ring", "8", "-origin", "2", "-terminal", "1")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "end-to-end computed bound") {
		t.Errorf("bound output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "inspect", "-envelope")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "bound") || !strings.Contains(out, "envelope: {") {
		t.Errorf("inspect output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "teardown", "-id", "c1")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "released c1") {
		t.Errorf("teardown output = %q", out)
	}

	out = captureStdout(t, func() {
		if err := run(append(base, "teardown", "-id", "c2")); err != nil {
			t.Error(err)
		}
	})
	_ = out
	out = captureStdout(t, func() {
		if err := run(append(base, "list")); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "no connections") {
		t.Errorf("final list output = %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	addr := startServer(t)
	tests := []struct {
		name string
		args []string
	}{
		{"no subcommand", []string{"-addr", addr}},
		{"unknown subcommand", []string{"-addr", addr, "frobnicate"}},
		{"setup without id", []string{"-addr", addr, "setup"}},
		{"teardown without id", []string{"-addr", addr, "teardown"}},
		{"teardown unknown", []string{"-addr", addr, "teardown", "-id", "ghost"}},
		{"setup bad origin", []string{"-addr", addr, "setup", "-id", "x", "-ring", "8", "-origin", "99"}},
		{"unreachable server", []string{"-addr", "127.0.0.1:1", "list"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

func TestSetupRejectionSurfaces(t *testing.T) {
	addr := startServer(t)
	// Overload the ring until a rejection surfaces as an error.
	rejected := false
	for i := 0; i < 40 && !rejected; i++ {
		err := run([]string{"-addr", addr, "setup",
			"-id", string(rune('a' + i)), "-ring", "8",
			"-origin", string(rune('0' + i%8)),
			"-pcr", "0.12"})
		if err != nil {
			rejected = true
			if !strings.Contains(err.Error(), "rejected") {
				t.Errorf("rejection error = %v", err)
			}
		}
	}
	if !rejected {
		t.Error("overload never rejected")
	}
}

// TestStateVerifyOffline checks the offline inspector against a real
// snapshot+journal pair: clean, torn, and corrupt — all without a
// running daemon, and without modifying either file.
func TestStateVerifyOffline(t *testing.T) {
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	jpath := statePath + ".journal"
	store := wire.NewStateStore(statePath)
	if err := store.SaveState(wire.PersistentState{
		LastSeq: 2,
		Connections: []core.ConnRequest{
			{ID: "a", Spec: traffic.CBR(0.01), Priority: 1,
				Route: core.Route{{Switch: "ring00", In: 1, Out: 0}}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	log, _, _, err := journal.Open(journal.OSFS{}, jpath)
	if err != nil {
		t.Fatal(err)
	}
	log.SetNextSeq(3)
	if err := log.Append(&journal.Record{Op: journal.OpTeardown, ID: "a"}, true); err != nil {
		t.Fatal(err)
	}
	req := core.ConnRequest{ID: "b", Spec: traffic.CBR(0.01), Priority: 1,
		Route: core.Route{{Switch: "ring00", In: 2, Out: 0}}}
	if err := log.Append(&journal.Record{Op: journal.OpSetup, Request: &req}, true); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	out := captureStdout(t, func() {
		if err := run([]string{"state", "show", statePath}); err != nil {
			t.Errorf("state show: %v", err)
		}
	})
	for _, want := range []string{
		"1 connections", "watermark 2", "checksum ok",
		"2 valid records (2 past watermark), clean",
		"replayed state: 1 connections", "b prio 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("state show output missing %q:\n%s", want, out)
		}
	}

	// Tear the journal tail: verify reports the position, repairs nothing.
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xx")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() {
		if err := run([]string{"state", "verify", statePath}); err != nil {
			t.Errorf("state verify on torn journal: %v", err)
		}
	})
	if !strings.Contains(out, "TORN at byte") {
		t.Errorf("torn tail not reported:\n%s", out)
	}
	after, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("state verify modified the journal")
	}

	// Corrupt the snapshot: verify exits non-zero and leaves it in place.
	data, err := os.ReadFile(statePath)
	if err != nil {
		t.Fatal(err)
	}
	data[2] ^= 0x01
	if err := os.WriteFile(statePath, data, 0o600); err != nil {
		t.Fatal(err)
	}
	out = captureStdout(t, func() {
		if err := run([]string{"state", "verify", statePath}); err == nil {
			t.Error("state verify accepted a corrupt snapshot")
		}
	})
	if !strings.Contains(out, "CORRUPT") {
		t.Errorf("corruption not reported:\n%s", out)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Errorf("state verify quarantined the snapshot: %v", err)
	}
}

func TestStateCmdErrors(t *testing.T) {
	for _, args := range [][]string{
		{"state"},
		{"state", "frobnicate", "x"},
		{"state", "verify"},
		{"state", "verify", "a", "b"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
