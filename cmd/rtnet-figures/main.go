// Command rtnet-figures regenerates the evaluation artifacts of the paper:
// Table 1 and Figures 10-13 of "Connection Admission Control for Hard
// Real-Time Communication in ATM Networks" (MERL TR-96-21 / ICDCS 1997).
//
// Usage:
//
//	rtnet-figures [-out DIR] [-quick] [-plot]
//	              [-table1] [-fig10] [-fig11] [-fig12] [-fig13]
//	              [-ablation] [-failover] [-softrisk] [-tightness]
//
// With no selection flag every artifact is generated. Table 1 and the
// ablation/failover/soft-risk reports print to standard output; each figure
// is written as gnuplot-style TSV to DIR/*.tsv (default directory ".") and,
// with -plot, additionally rendered as an ASCII chart.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"text/tabwriter"

	ablationpkg "atmcac/internal/ablation"
	"atmcac/internal/asciiplot"
	"atmcac/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rtnet-figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rtnet-figures", flag.ContinueOnError)
	var (
		outDir    = fs.String("out", ".", "directory for TSV outputs")
		quick     = fs.Bool("quick", false, "coarser sweeps (about 10x faster)")
		table1    = fs.Bool("table1", false, "generate Table 1")
		fig10     = fs.Bool("fig10", false, "generate Figure 10")
		fig11     = fs.Bool("fig11", false, "generate Figure 11")
		fig12     = fs.Bool("fig12", false, "generate Figure 12")
		fig13     = fs.Bool("fig13", false, "generate Figure 13")
		ablation  = fs.Bool("ablation", false, "generate the design-choice ablation table")
		failover  = fs.Bool("failover", false, "generate the ring-wrap failover report")
		softrisk  = fs.Bool("softrisk", false, "generate the soft-CAC risk probe")
		tightness = fs.Bool("tightness", false, "generate the bound-tightness sweep (analytic vs measured)")
		plot      = fs.Bool("plot", false, "also render each figure as an ASCII plot on stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	all := !*table1 && !*fig10 && !*fig11 && !*fig12 && !*fig13 && !*ablation && !*failover && !*softrisk && !*tightness

	var loads, shares []float64
	tolerance := 0.0 // default
	if *quick {
		for b := 0.05; b <= 1.0+1e-9; b += 0.05 {
			loads = append(loads, b)
		}
		for p := 0.1; p <= 0.9+1e-9; p += 0.1 {
			shares = append(shares, p)
		}
		tolerance = 1.0 / 64
	}

	if all || *table1 {
		if err := printTable1(os.Stdout); err != nil {
			return err
		}
	}
	if all || *fig10 {
		series, err := experiments.Figure10(experiments.SymmetricConfig{Loads: loads})
		if err != nil {
			return fmt.Errorf("figure 10: %w", err)
		}
		if err := writeFigure(*outDir, "fig10.tsv", series, *plot, "Figure 10: end-to-end delay bound vs load B"); err != nil {
			return err
		}
	}
	if all || *fig11 {
		series, err := experiments.Figure11(experiments.AsymmetricConfig{Shares: shares, Tolerance: tolerance})
		if err != nil {
			return fmt.Errorf("figure 11: %w", err)
		}
		if err := writeFigure(*outDir, "fig11.tsv", series, *plot, "Figure 11: supported load vs hot share p"); err != nil {
			return err
		}
	}
	if all || *fig12 {
		series, err := experiments.Figure12(experiments.Figure12Config{Shares: shares, Tolerance: tolerance})
		if err != nil {
			return fmt.Errorf("figure 12: %w", err)
		}
		if err := writeFigure(*outDir, "fig12.tsv", series, *plot, "Figure 12: one vs two priorities"); err != nil {
			return err
		}
	}
	if all || *fig13 {
		series, err := experiments.Figure13(experiments.Figure13Config{Shares: shares, Tolerance: tolerance})
		if err != nil {
			return fmt.Errorf("figure 13: %w", err)
		}
		if err := writeFigure(*outDir, "fig13.tsv", series, *plot, "Figure 13: soft vs hard CAC"); err != nil {
			return err
		}
	}
	if all || *ablation {
		if err := printAblation(os.Stdout, *quick); err != nil {
			return err
		}
	}
	if all || *failover {
		cfg := experiments.FailoverConfig{}
		if *quick {
			cfg = experiments.FailoverConfig{RingNodes: 8, Terminals: 2, Tolerance: 1.0 / 32}
		}
		report, err := experiments.Failover(cfg)
		if err != nil {
			return fmt.Errorf("failover: %w", err)
		}
		fmt.Println(report)
	}
	if all || *softrisk {
		cfg := experiments.SoftRiskConfig{}
		if *quick {
			cfg.Slots = 20000
		}
		report, err := experiments.SoftRisk(cfg)
		if err != nil {
			return fmt.Errorf("softrisk: %w", err)
		}
		fmt.Println(report)
	}
	if all || *tightness {
		cfg := experiments.TightnessConfig{}
		if *quick {
			cfg = experiments.TightnessConfig{RingNodes: 6, Slots: 20000, Loads: []float64{0.2, 0.4, 0.6}}
		}
		series, err := experiments.Tightness(cfg)
		if err != nil {
			return fmt.Errorf("tightness: %w", err)
		}
		if err := writeFigure(*outDir, "tightness.tsv", series, *plot, "Bound tightness: analytic vs measured"); err != nil {
			return err
		}
	}
	return nil
}

// printAblation renders the design-choice ablation: the maximum admissible
// symmetric load under the paper's full scheme versus the scheme without
// link filtering and with the crude jitter bound.
func printAblation(w *os.File, quick bool) error {
	tol := 1.0 / 128
	terminals := []int{1, 4, 8, 16}
	if quick {
		tol = 1.0 / 32
		terminals = []int{1, 8}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "terminals/node\texact\tcrude distortion\tno filtering")
	for _, n := range terminals {
		cmp, err := ablationpkg.Compare(ablationpkg.Config{Terminals: n}, tol)
		if err != nil {
			return fmt.Errorf("ablation N=%d: %w", n, err)
		}
		fmt.Fprintf(tw, "N=%d\t%.3f\t%.3f\t%.3f\n", n,
			cmp.MaxLoad[ablationpkg.Exact],
			cmp.MaxLoad[ablationpkg.CrudeDistortion],
			cmp.MaxLoad[ablationpkg.NoFiltering])
	}
	return tw.Flush()
}

func printTable1(w *os.File) error {
	rows, err := experiments.Table1()
	if err != nil {
		return fmt.Errorf("table 1: %w", err)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tperiod (ms)\tdelay (ms)\tmemory (KB)\tbandwidth (Mbps)\twire (Mbps)\tdelay budget (cell times)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%g\t%g\t%g\t%.1f\t%.1f\t%.0f\n",
			r.Name, r.PeriodMillis, r.DelayMillis, r.MemoryKB, r.PayloadMbps, r.WireMbps, r.DelayCellTimes)
	}
	return tw.Flush()
}

func writeFigure(dir, name string, series []experiments.Series, plot bool, title string) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteTSV(f, series); err != nil {
		_ = f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d series)\n", path, len(series))
	if plot {
		if err := asciiplot.Render(os.Stdout, series, asciiplot.Options{Title: title}); err != nil {
			return fmt.Errorf("plot %s: %w", name, err)
		}
	}
	return nil
}
