package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around f.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunTable1(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-table1"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"high speed", "medium speed", "low speed", "32.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunQuickFigures(t *testing.T) {
	dir := t.TempDir()
	out := captureStdout(t, func() {
		if err := run([]string{"-quick", "-out", dir, "-fig10", "-fig13"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "fig10.tsv") || !strings.Contains(out, "fig13.tsv") {
		t.Errorf("output = %q", out)
	}
	for _, name := range []string{"fig10.tsv", "fig13.tsv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "# ") {
			t.Errorf("%s does not start with a series label: %q", name, data[:20])
		}
	}
	// Only the requested figures were produced.
	if _, err := os.Stat(filepath.Join(dir, "fig11.tsv")); !os.IsNotExist(err) {
		t.Error("fig11.tsv produced without being requested")
	}
}

func TestRunAblationTable(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-quick", "-ablation"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "no filtering") || !strings.Contains(out, "N=1") {
		t.Errorf("ablation output = %q", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunUnwritableDir(t *testing.T) {
	if err := run([]string{"-quick", "-fig13", "-out", "/definitely/not/a/dir"}); err == nil {
		t.Error("unwritable output directory accepted")
	}
}

func TestRunPlotFlag(t *testing.T) {
	dir := t.TempDir()
	out := captureStdout(t, func() {
		if err := run([]string{"-quick", "-out", dir, "-fig13", "-plot"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"Figure 13", "* soft CAC", "o hard CAC", "+-"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q", want)
		}
	}
}

func TestRunTightnessAndFailover(t *testing.T) {
	dir := t.TempDir()
	out := captureStdout(t, func() {
		if err := run([]string{"-quick", "-out", dir, "-tightness", "-failover", "-softrisk"}); err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{"tightness.tsv", "failover", "soft-risk"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
