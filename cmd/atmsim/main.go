// Command atmsim drives the simulation-side experiment tooling.
//
// Usage:
//
//	atmsim [validate] [-ring N] [-terminals N] [-load B] [-slots N] [-mode greedy|random] [-seed N]
//	atmsim workload -kind gamma|mmpp|diurnal [-seed N] [-n N] [kind flags...]
//	atmsim hypothesis list
//	atmsim hypothesis run [-scale smoke|full] [-out DIR] [name ...]
//
// validate (the default when the first argument is a flag) admits a
// symmetric RTnet cyclic workload with the bit-stream CAC, then drives the
// identical connection set through a simulated priority-FIFO ring with
// conforming sources and compares the measured worst-case delays and
// occupancies against the computed bounds. Exit status 0 when every
// guarantee holds, 2 when a measured quantity exceeds its bound (which
// would falsify the analysis).
//
// workload prints a seeded deterministic arrival sequence as TSV
// (index, time), for inspecting generator behaviour and pinning fixtures.
//
// hypothesis runs registered falsifiable experiments from fixed seeds and
// optionally writes their FINDINGS.md artifacts. Exit status 2 when any
// predicate falsifies its hypothesis.
package main

import (
	"flag"
	"fmt"
	"os"

	"atmcac/internal/experiments"
	"atmcac/internal/sim"
	"atmcac/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) > 0 {
		switch args[0] {
		case "validate":
			return runValidate(args[1:])
		case "workload":
			return runWorkload(args[1:])
		case "hypothesis":
			return runHypothesis(args[1:])
		}
	}
	// Legacy spelling: bare flags imply validate.
	return runValidate(args)
}

func runValidate(args []string) int {
	fs := flag.NewFlagSet("atmsim validate", flag.ContinueOnError)
	var (
		ring      = fs.Int("ring", 8, "ring nodes")
		terminals = fs.Int("terminals", 2, "terminals per ring node")
		load      = fs.Float64("load", 0.4, "total normalized cyclic load")
		slots     = fs.Uint64("slots", 50000, "simulated cell slots")
		mode      = fs.String("mode", "greedy", "source mode: greedy or random")
		seed      = fs.Int64("seed", 1, "seed for random mode")
		trace     = fs.String("trace", "", "write a per-cell event trace (CSV) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	var srcMode sim.SourceMode
	switch *mode {
	case "greedy":
		srcMode = sim.Greedy
	case "random":
		srcMode = sim.Random
	default:
		fmt.Fprintf(os.Stderr, "atmsim: unknown mode %q\n", *mode)
		return 1
	}
	cfg := experiments.ValidationConfig{
		RingNodes:  *ring,
		Terminals:  *terminals,
		Load:       *load,
		Slots:      *slots,
		Mode:       srcMode,
		Seed:       *seed,
		Histograms: true,
	}
	var tracer *sim.CSVTracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmsim:", err)
			return 1
		}
		defer f.Close()
		tracer = sim.NewCSVTracer(f)
		cfg.Tracer = tracer
	}
	res, err := experiments.ValidateRTnet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		return 1
	}
	fmt.Println(res)
	if res.Feasible {
		fmt.Printf("measured delay percentiles: p50=%d p99=%d (slots); worst case bound %.1f\n",
			res.DelayP50, res.DelayP99, res.AnalyticBound)
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "atmsim: trace:", err)
			return 1
		}
		fmt.Printf("trace: %d events written to %s\n", tracer.Events, *trace)
	}
	if !res.Feasible {
		fmt.Println("workload rejected by the CAC; lower -load or -terminals")
		return 1
	}
	if !res.Holds() {
		fmt.Println("GUARANTEE VIOLATED: measured behaviour exceeds the analytic bounds")
		return 2
	}
	fmt.Println("all analytic guarantees hold")
	return 0
}

func runWorkload(args []string) int {
	fs := flag.NewFlagSet("atmsim workload", flag.ContinueOnError)
	var (
		kind      = fs.String("kind", "gamma", "arrival process: gamma, mmpp, or diurnal")
		seed      = fs.Uint64("seed", 42, "generator seed")
		n         = fs.Int("n", 100, "arrivals to emit")
		rate      = fs.Float64("rate", 1, "gamma: mean arrival rate")
		cv        = fs.Float64("cv", 1, "gamma: interarrival coefficient of variation")
		quiet     = fs.Float64("quiet-rate", 0.5, "mmpp: quiet-state rate")
		burst     = fs.Float64("burst-rate", 20, "mmpp: burst-state rate")
		meanQuiet = fs.Float64("mean-quiet", 40, "mmpp: mean quiet sojourn")
		meanBurst = fs.Float64("mean-burst", 5, "mmpp: mean burst sojourn")
		base      = fs.Float64("base", 1, "diurnal: envelope base rate")
		amplitude = fs.Float64("amplitude", 0.8, "diurnal: envelope amplitude [0,1)")
		period    = fs.Float64("period", 100, "diurnal: envelope period")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	var arrivals workload.Arrivals
	var err error
	switch *kind {
	case "gamma":
		arrivals, err = workload.NewGamma(*seed, workload.GammaConfig{Rate: *rate, CV: *cv})
	case "mmpp":
		arrivals, err = workload.NewMMPP(*seed, workload.MMPPConfig{
			QuietRate: *quiet, BurstRate: *burst,
			MeanQuiet: *meanQuiet, MeanBurst: *meanBurst,
		})
	case "diurnal":
		arrivals, err = workload.NewDiurnal(*seed, workload.Envelope{
			Base: *base, Amplitude: *amplitude, Period: *period,
		})
	default:
		fmt.Fprintf(os.Stderr, "atmsim: unknown workload kind %q\n", *kind)
		return 1
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		return 1
	}
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "atmsim: -n must be >= 1")
		return 1
	}
	fmt.Println("index\ttime")
	for i, t := range workload.Times(arrivals, *n) {
		fmt.Printf("%d\t%.9g\n", i, t)
	}
	return 0
}

func runHypothesis(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "atmsim: hypothesis needs a verb: list or run")
		return 1
	}
	switch args[0] {
	case "list":
		for _, h := range experiments.Hypotheses() {
			fmt.Printf("%s\t%s\n", h.Name, h.Title)
		}
		return 0
	case "run":
		return runHypothesisRun(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "atmsim: unknown hypothesis verb %q\n", args[0])
		return 1
	}
}

func runHypothesisRun(args []string) int {
	fs := flag.NewFlagSet("atmsim hypothesis run", flag.ContinueOnError)
	var (
		scaleFlag = fs.String("scale", "smoke", "run scale: smoke or full")
		out       = fs.String("out", "", "write <name>/FINDINGS.md artifacts under this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		return 1
	}
	var selected []*experiments.Hypothesis
	if names := fs.Args(); len(names) > 0 {
		for _, name := range names {
			h, ok := experiments.LookupHypothesis(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "atmsim: unknown hypothesis %q (try: atmsim hypothesis list)\n", name)
				return 1
			}
			selected = append(selected, h)
		}
	} else {
		selected = experiments.Hypotheses()
	}
	falsified := 0
	for _, h := range selected {
		rep, err := experiments.RunHypothesis(h, scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmsim:", err)
			return 1
		}
		status := "CONFIRMED"
		if !rep.Confirmed() {
			status = "FALSIFIED"
			falsified++
		}
		fmt.Printf("%s\t%s\t(scale %s, seeds %d)\n", status, h.Name, scale, len(h.Seeds))
		for _, fail := range rep.FailedChecks() {
			fmt.Printf("  FAIL %s\n", fail)
		}
		if *out != "" {
			path, err := rep.WriteFindingsFile(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, "atmsim:", err)
				return 1
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}
	if falsified > 0 {
		fmt.Printf("%d of %d hypotheses falsified\n", falsified, len(selected))
		return 2
	}
	return 0
}
