// Command atmsim validates the CAC's analytic guarantees against the
// cell-level simulator: it admits a symmetric RTnet cyclic workload with
// the bit-stream CAC, then drives the identical connection set through a
// simulated priority-FIFO ring with conforming sources and compares the
// measured worst-case delays and occupancies against the computed bounds.
//
// Usage:
//
//	atmsim [-ring N] [-terminals N] [-load B] [-slots N] [-mode greedy|random] [-seed N]
//
// The exit status is 0 when every guarantee holds and 2 when a measured
// quantity exceeds its bound (which would falsify the analysis).
package main

import (
	"flag"
	"fmt"
	"os"

	"atmcac/internal/experiments"
	"atmcac/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("atmsim", flag.ContinueOnError)
	var (
		ring      = fs.Int("ring", 8, "ring nodes")
		terminals = fs.Int("terminals", 2, "terminals per ring node")
		load      = fs.Float64("load", 0.4, "total normalized cyclic load")
		slots     = fs.Uint64("slots", 50000, "simulated cell slots")
		mode      = fs.String("mode", "greedy", "source mode: greedy or random")
		seed      = fs.Int64("seed", 1, "seed for random mode")
		trace     = fs.String("trace", "", "write a per-cell event trace (CSV) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	var srcMode sim.SourceMode
	switch *mode {
	case "greedy":
		srcMode = sim.Greedy
	case "random":
		srcMode = sim.Random
	default:
		fmt.Fprintf(os.Stderr, "atmsim: unknown mode %q\n", *mode)
		return 1
	}
	cfg := experiments.ValidationConfig{
		RingNodes:  *ring,
		Terminals:  *terminals,
		Load:       *load,
		Slots:      *slots,
		Mode:       srcMode,
		Seed:       *seed,
		Histograms: true,
	}
	var tracer *sim.CSVTracer
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atmsim:", err)
			return 1
		}
		defer f.Close()
		tracer = sim.NewCSVTracer(f)
		cfg.Tracer = tracer
	}
	res, err := experiments.ValidateRTnet(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atmsim:", err)
		return 1
	}
	fmt.Println(res)
	if res.Feasible {
		fmt.Printf("measured delay percentiles: p50=%d p99=%d (slots); worst case bound %.1f\n",
			res.DelayP50, res.DelayP99, res.AnalyticBound)
	}
	if tracer != nil {
		if err := tracer.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "atmsim: trace:", err)
			return 1
		}
		fmt.Printf("trace: %d events written to %s\n", tracer.Events, *trace)
	}
	if !res.Feasible {
		fmt.Println("workload rejected by the CAC; lower -load or -terminals")
		return 1
	}
	if !res.Holds() {
		fmt.Println("GUARANTEE VIOLATED: measured behaviour exceeds the analytic bounds")
		return 2
	}
	fmt.Println("all analytic guarantees hold")
	return 0
}
