package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunGuaranteesHold(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3", "-slots", "20000"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "all analytic guarantees hold") {
		t.Errorf("output = %q", out)
	}
}

func TestRunRandomMode(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3",
			"-slots", "20000", "-mode", "random", "-seed", "9"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "0 drops") {
		t.Errorf("output = %q", out)
	}
}

func TestRunInfeasibleWorkload(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "8", "-terminals", "16", "-load", "0.95", "-slots", "1000"}); code != 1 {
			t.Errorf("exit code = %d, want 1", code)
		}
	})
	if !strings.Contains(out, "rejected") {
		t.Errorf("output = %q", out)
	}
}

func TestRunBadMode(t *testing.T) {
	if code := run([]string{"-mode", "chaotic"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3",
			"-slots", "5000", "-trace", path}); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "percentiles") {
		t.Errorf("output = %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,event,vc,seq,switch,port,delay\n") {
		t.Errorf("trace header missing: %.60s", data)
	}
	if !strings.Contains(string(data), ",deliver,") {
		t.Error("trace lacks deliveries")
	}
}

func TestRunTraceUnwritable(t *testing.T) {
	if code := run([]string{"-trace", "/definitely/not/writable.csv"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}
