package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunGuaranteesHold(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3", "-slots", "20000"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "all analytic guarantees hold") {
		t.Errorf("output = %q", out)
	}
}

func TestRunRandomMode(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3",
			"-slots", "20000", "-mode", "random", "-seed", "9"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "0 drops") {
		t.Errorf("output = %q", out)
	}
}

func TestRunInfeasibleWorkload(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "8", "-terminals", "16", "-load", "0.95", "-slots", "1000"}); code != 1 {
			t.Errorf("exit code = %d, want 1", code)
		}
	})
	if !strings.Contains(out, "rejected") {
		t.Errorf("output = %q", out)
	}
}

func TestRunBadMode(t *testing.T) {
	if code := run([]string{"-mode", "chaotic"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunWithTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	out := captureStdout(t, func() {
		if code := run([]string{"-ring", "6", "-terminals", "2", "-load", "0.3",
			"-slots", "5000", "-trace", path}); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "percentiles") {
		t.Errorf("output = %q", out)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "slot,event,vc,seq,switch,port,delay\n") {
		t.Errorf("trace header missing: %.60s", data)
	}
	if !strings.Contains(string(data), ",deliver,") {
		t.Error("trace lacks deliveries")
	}
}

func TestRunTraceUnwritable(t *testing.T) {
	if code := run([]string{"-trace", "/definitely/not/writable.csv"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunValidateSubcommand(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"validate", "-ring", "6", "-terminals", "2", "-load", "0.3", "-slots", "20000"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "all analytic guarantees hold") {
		t.Errorf("output = %q", out)
	}
}

func TestRunWorkloadDeterministic(t *testing.T) {
	args := []string{"workload", "-kind", "mmpp", "-seed", "7", "-n", "50"}
	a := captureStdout(t, func() {
		if code := run(args); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	b := captureStdout(t, func() {
		if code := run(args); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if a != b {
		t.Error("same workload seed printed different sequences")
	}
	if !strings.HasPrefix(a, "index\ttime\n") {
		t.Errorf("missing TSV header: %.40q", a)
	}
	if lines := strings.Count(a, "\n"); lines != 51 {
		t.Errorf("expected 51 lines (header + 50 arrivals), got %d", lines)
	}
}

func TestRunWorkloadBadKind(t *testing.T) {
	if code := run([]string{"workload", "-kind", "fractal"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunWorkloadBadConfig(t *testing.T) {
	if code := run([]string{"workload", "-kind", "gamma", "-rate", "-1"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunHypothesisList(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"hypothesis", "list"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	for _, name := range []string{"h1-soft-cdv-utilization", "h2-overload-degradation-storm", "h3-capacity-vs-topology"} {
		if !strings.Contains(out, name) {
			t.Errorf("hypothesis list missing %s:\n%s", name, out)
		}
	}
}

func TestRunHypothesisRunSmoke(t *testing.T) {
	dir := t.TempDir()
	out := captureStdout(t, func() {
		if code := run([]string{"hypothesis", "run", "-scale", "smoke", "-out", dir, "h1-soft-cdv-utilization"}); code != 0 {
			t.Errorf("exit code = %d, want 0", code)
		}
	})
	if !strings.Contains(out, "CONFIRMED\th1-soft-cdv-utilization") {
		t.Errorf("output = %q", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "h1-soft-cdv-utilization", "FINDINGS.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "- **Status**: CONFIRMED") {
		t.Errorf("FINDINGS.md lacks status: %.120s", data)
	}
}

func TestRunHypothesisUnknownName(t *testing.T) {
	if code := run([]string{"hypothesis", "run", "no-such-hypothesis"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunHypothesisMissingVerb(t *testing.T) {
	if code := run([]string{"hypothesis"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}
