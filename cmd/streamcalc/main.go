// Command streamcalc is an interactive calculator for the paper's
// bit-stream algebra: it builds the worst-case envelope of a CBR/VBR
// connection (Algorithm 2.1), applies jitter clumping (Algorithm 3.1),
// multiplexes copies (Algorithm 3.2), filters through a link
// (Algorithm 3.4), and reports the worst-case queueing delay and backlog
// at a static-priority FIFO queueing point (Algorithm 4.1).
//
// Usage:
//
//	streamcalc -pcr 0.5 -scr 0.05 -mbs 8            # the envelope itself
//	streamcalc -pcr 0.5 -scr 0.05 -mbs 8 -cdv 64    # ... after clumping
//	streamcalc -pcr 0.5 -scr 0.05 -mbs 8 -cdv 64 -n 4 -filter
//	streamcalc -pcr 0.5 -scr 0.05 -mbs 8 -n 4 -hp 0.3 -cum 0,1,2,5,10
//
// Rates are normalized to the link (1 = 155.52 Mbps on OC-3); times are in
// cell times (1 cell time is about 2.7 us on OC-3).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"atmcac/internal/bitstream"
	"atmcac/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "streamcalc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("streamcalc", flag.ContinueOnError)
	var (
		pcr    = fs.Float64("pcr", 0.5, "peak cell rate (normalized)")
		scr    = fs.Float64("scr", 0, "sustainable cell rate; 0 means CBR")
		mbs    = fs.Float64("mbs", 1, "maximum burst size (cells)")
		cdv    = fs.Float64("cdv", 0, "accumulated upstream delay variation (cell times)")
		n      = fs.Int("n", 1, "number of identical connections to multiplex")
		filter = fs.Bool("filter", false, "filter the aggregate through a unit link")
		hp     = fs.Float64("hp", 0, "constant higher-priority load stealing service")
		cum    = fs.String("cum", "", "comma-separated times at which to print cumulative cells")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := traffic.CBR(*pcr)
	if *scr > 0 {
		spec = traffic.VBR(*pcr, *scr, *mbs)
	}
	env, err := spec.Stream()
	if err != nil {
		return err
	}
	fmt.Printf("%v\n", spec)
	fmt.Printf("  envelope (Alg 2.1):          %v\n", env)

	if *cdv < 0 {
		return fmt.Errorf("CDV %g must be non-negative", *cdv)
	}
	stream := env
	if *cdv > 0 {
		stream, err = stream.Delayed(*cdv)
		if err != nil {
			return err
		}
		fmt.Printf("  after CDV=%g (Alg 3.1):      %v\n", *cdv, stream)
	}
	if *n > 1 {
		copies := make([]bitstream.Stream, *n)
		for i := range copies {
			copies[i] = stream
		}
		stream = bitstream.Sum(copies...)
		fmt.Printf("  x%d multiplexed (Alg 3.2):    %v\n", *n, stream)
	}
	if *filter {
		stream = stream.Filtered()
		fmt.Printf("  filtered by link (Alg 3.4):  %v\n", stream)
	}

	higher := bitstream.Zero()
	if *hp > 0 {
		if *hp >= 1 {
			return fmt.Errorf("higher-priority load %g must be below 1", *hp)
		}
		higher = bitstream.Constant(*hp)
		fmt.Printf("  higher-priority load:        %v\n", higher)
	}
	bound, err := bitstream.DelayBound(stream, higher)
	switch {
	case errors.Is(err, bitstream.ErrUnstable):
		fmt.Println("  delay bound (Alg 4.1):       UNBOUNDED (queueing point unstable)")
	case err != nil:
		return err
	default:
		us := bound * traffic.OC3.CellTimeSeconds() * 1e6
		fmt.Printf("  delay bound (Alg 4.1):       %.3f cell times (%.1f us on OC-3)\n", bound, us)
		backlog, err := bitstream.MaxBacklog(stream, higher)
		if err != nil {
			return err
		}
		fmt.Printf("  backlog bound:               %.3f cells\n", backlog)
	}

	if *cum != "" {
		fmt.Println("  cumulative cells:")
		for _, tok := range strings.Split(*cum, ",") {
			at, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				return fmt.Errorf("bad -cum value %q: %v", tok, err)
			}
			fmt.Printf("    A(%g) = %.4f\n", at, stream.CumAt(at))
		}
	}
	return nil
}
