package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunFullPipeline(t *testing.T) {
	out := captureStdout(t, func() {
		err := run([]string{"-pcr", "0.5", "-scr", "0.05", "-mbs", "8",
			"-cdv", "64", "-n", "4", "-hp", "0.2", "-cum", "0,1,5"})
		if err != nil {
			t.Error(err)
		}
	})
	for _, want := range []string{
		"envelope (Alg 2.1)", "after CDV=64", "x4 multiplexed",
		"delay bound (Alg 4.1)", "backlog bound", "A(5) =",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCBRDefault(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-pcr", "0.25"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "CBR(PCR=0.25)") {
		t.Errorf("output = %q", out)
	}
	// A single conforming connection never queues.
	if !strings.Contains(out, "0.000 cell times") {
		t.Errorf("expected zero bound: %q", out)
	}
}

func TestRunUnstable(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-pcr", "0.6", "-n", "2"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "UNBOUNDED") {
		t.Errorf("output = %q", out)
	}
}

func TestRunFilter(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run([]string{"-pcr", "0.4", "-n", "4", "-filter"}); err != nil {
			t.Error(err)
		}
	})
	if !strings.Contains(out, "filtered by link") {
		t.Errorf("output = %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-pcr", "0"},                 // invalid spec
		{"-pcr", "0.5", "-hp", "1"},   // higher-priority load saturates
		{"-pcr", "0.5", "-cum", "x"},  // bad cum value
		{"-definitely-not-a-flag"},    // bad flag
		{"-pcr", "0.5", "-cdv", "-3"}, // negative CDV
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
