// Command cacd runs a central connection admission control server for an
// RTnet-shaped network — the deployment the paper plans for switched
// real-time connections in the next version of RTnet (Section 4.3,
// discussion 3).
//
// Usage:
//
//	cacd [-listen ADDR] [-ring N] [-terminals N] [-queue CELLS] [-low-queue CELLS] [-policy hard|soft]
//	     [-state FILE] [-state-strict] [-durability snapshot|journal|journal-sync]
//	     [-journal FILE] [-compact-records N] [-compact-bytes N]
//	     [-io-timeout D] [-drain-timeout D]
//	     [-shed-rate R] [-shed-burst B] [-max-inflight N]
//	     [-metrics-addr ADDR]
//	     [-replication-listen ADDR] [-replicate-from ADDR]
//	     [-replication-mode async|semi-sync|sync] [-replication-lag N]
//	     [-failover-timeout D]
//	     [-shard-id ID] [-prepare-ttl D] [-reap-interval D]
//	cacd -shard-map SPEC -intent-log FILE [-listen ADDR] [-prepare-ttl D]
//	     [-coord-replication-listen ADDR] [-coord-replicate-from ADDR]
//	     [-coord-failover-timeout D] [-metrics-addr ADDR]
//
// The server manages one CAC network whose switches are the ring nodes of
// an RTnet with the given shape. Clients (see cmd/cacctl) set up and tear
// down connections over newline-delimited JSON, declare link failures
// (fail-link / restore-link) and query daemon health.
//
// On a fail-link the server evicts every connection traversing the link
// and re-admits each over the wrapped ring of paper Section 5 through the
// full CAC check; connections whose hard bound cannot survive the longer
// route stay down and are reported, never silently degraded. On SIGTERM
// the server drains: it stops accepting, lets in-flight requests finish
// (bounded by -drain-timeout) and writes a final state snapshot.
//
// With -state the server persists admission state; -durability selects
// how. snapshot (the default) rewrites the whole state file on every
// mutation. journal appends one CRC-framed record to a write-ahead log
// before acknowledging each setup/teardown/fail-link/restore-link —
// journal-sync additionally fsyncs per record, so an acknowledged
// operation survives power loss — and folds the log into the snapshot at
// the -compact-records/-compact-bytes thresholds. On restart the server
// loads the snapshot, replays journal records past its sequence
// watermark, re-fails the recorded links, and re-admits every surviving
// connection through the full CAC check (cacctl state verify inspects
// both files offline).
//
// With -shed-rate (and optionally -shed-burst, -max-inflight) the server
// sheds control-plane overload in degradation order: read-only queries
// first, then low-priority setups, then high-priority setups; teardown,
// fail-link, restore-link and health are never shed. A shed request gets
// a typed overloaded response with a retry-after hint; the shed counters
// are visible through cacctl health.
//
// With -replication-listen the server ships every journal record to a
// connected warm standby before (sync), loosely before (semi-sync,
// bounded by -replication-lag) or after (async) acknowledging the
// client; the standby — a second cacd started with -replicate-from —
// appends the same records to its own journal and keeps a warm in-memory
// copy of the admission state, refusing writes until promoted. Promotion
// (cacctl promote, or automatic after -failover-timeout of primary
// silence) advances the replication epoch and fences the old primary:
// if it comes back it refuses all mutations with the split-brain code
// until restarted as a standby of the new primary. Both roles require a
// journaled durability mode.
//
// With -shard-id the server serves as one shard of a partitioned CAC:
// it answers the two-phase shard-prepare/commit/abort operations for the
// switches it owns, journals every phase transition, and runs an orphan
// reaper (every -reap-interval) that expires prepared holds whose
// coordinator died before deciding — a reaped hold releases its
// bandwidth after -prepare-ttl and any late commit is re-admitted
// through the full CAC check or refused with a typed code.
//
// With -shard-map the daemon runs as the coordinator instead: it parses
// the map (s0@host:port=sw0,sw1;s1@host:port=sw2,...), drives multi-hop
// setups across the owning shards through crash-safe two-phase
// reserve-commit, journals its decisions in -intent-log, resolves any
// in-doubt transactions from a previous incarnation at boot, and fronts
// the fleet with the ordinary wire protocol on -listen (setup, teardown,
// list, health). A map entry may name a replicated shard pair
// (s0@primary|standby=sw0,...): on a transport error the coordinator
// fails over to the standby, promotes it, and completes the in-flight
// transaction against the survivor while the fenced ex-primary refuses
// late writes.
//
// The coordinator itself replicates with -coord-replication-listen: every
// intent-log record is shipped synchronously to a standby coordinator —
// a second cacd started with the same -shard-map plus
// -coord-replicate-from — before the coordinator acts on it. The standby
// appends the stream to its own -intent-log and, after
// -coord-failover-timeout of active silence, promotes: it bumps the
// coordinator term durably, fences the old active, re-opens its log copy
// as the coordinator, resolves the in-doubt tail, and serves. Every
// two-phase shard operation carries the term, so the shards' ratchets
// shut a superseded coordinator out even if the fence never arrived.
//
// The server always keeps an in-process metrics registry and admission
// tracer: every setup decision, rejection reason, crankback re-admission,
// shed request and journal append is counted, and the counter snapshot
// travels with the health response (cacctl metrics). With -metrics-addr
// the registry is additionally served over HTTP in Prometheus text format
// at /metrics and as JSON at /debug/vars. On drain the scrape endpoint
// closes first and the final non-zero counters are flushed to stdout
// before the last state snapshot is written.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/failover"
	"atmcac/internal/journal"
	"atmcac/internal/obs"
	"atmcac/internal/overload"
	"atmcac/internal/replica"
	"atmcac/internal/rtnet"
	"atmcac/internal/shard"
	"atmcac/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cacd:", err)
		os.Exit(1)
	}
}

// testHookListen, when non-nil, receives the bound listener address once
// the server is reachable — lets tests run on an ephemeral port (-listen
// 127.0.0.1:0) without parsing stdout.
var testHookListen func(net.Addr)

// testHookMetricsListen mirrors testHookListen for the -metrics-addr
// HTTP listener.
var testHookMetricsListen func(net.Addr)

// testHookReplListen mirrors testHookListen for the -replication-listen
// stream listener.
var testHookReplListen func(net.Addr)

func run(args []string) error {
	fs := flag.NewFlagSet("cacd", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:7801", "listen address")
		ring         = fs.Int("ring", 16, "ring nodes")
		terminals    = fs.Int("terminals", 16, "terminals per ring node")
		queue        = fs.Float64("queue", 32, "priority-1 FIFO size (cells)")
		lowQueue     = fs.Float64("low-queue", 0, "optional priority-2 FIFO size (cells); 0 disables")
		policy       = fs.String("policy", "hard", "CDV accumulation: hard or soft")
		state        = fs.String("state", "", "persist established connections to this JSON file")
		stateStrict  = fs.Bool("state-strict", false, "exit non-zero when any stored connection cannot be restored")
		durability   = fs.String("durability", "snapshot", "persistence mode: snapshot (full rewrite per op), journal (write-ahead log before ack), or journal-sync (journal + fsync per record)")
		journalPath  = fs.String("journal", "", "write-ahead journal file; defaults to STATE.journal")
		compactRecs  = fs.Int("compact-records", wire.DefaultCompactRecords, "fold the journal into the snapshot after this many records")
		compactBytes = fs.Int64("compact-bytes", wire.DefaultCompactBytes, "fold the journal into the snapshot after this many bytes")
		ioTimeout    = fs.Duration("io-timeout", 0, "per-request read/write deadline on client connections; 0 disables")
		wireProto    = fs.String("wire-proto", "auto", "wire codecs offered to clients: auto (negotiate the binary framing per connection) or json (refuse binary hellos)")
		drainTimeout = fs.Duration("drain-timeout", 5*time.Second, "how long a SIGTERM drain waits for in-flight requests")
		shedRate     = fs.Float64("shed-rate", 0, "sustained control-plane request rate (req/s) before shedding; 0 disables the token bucket")
		shedBurst    = fs.Float64("shed-burst", 0, "token bucket capacity (requests); 0 derives from -shed-rate")
		maxInflight  = fs.Int("max-inflight", 0, "concurrently executing non-recovery requests; 0 means unlimited")
		metricsAddr  = fs.String("metrics-addr", "", "serve Prometheus metrics on this HTTP address (/metrics, /debug/vars); empty disables")
		replListen   = fs.String("replication-listen", "", "serve the journal-shipping replication stream to standbys on this address; empty disables")
		replFrom     = fs.String("replicate-from", "", "run as a warm read-only standby of the primary at this replication address; empty disables")
		replMode     = fs.String("replication-mode", "sync", "acknowledgement discipline when shipping to a standby: async, semi-sync, or sync")
		replLag      = fs.Uint64("replication-lag", 0, "semi-sync: max shipped-but-unacked records before mutations block; 0 uses the default")
		failoverTmo  = fs.Duration("failover-timeout", 0, "standby: promote automatically once the primary has been silent this long; 0 means promotion only via cacctl promote")
		shardID      = fs.String("shard-id", "", "serve as this shard of a partitioned CAC: answer two-phase shard operations and reap orphaned prepares")
		shardMap     = fs.String("shard-map", "", "run as the coordinator of this shard map (s0@primary|standby=sw0,sw1;...) instead of serving a network")
		intentLog    = fs.String("intent-log", "", "coordinator: write-ahead intent log for crash-safe two-phase decisions (required with -shard-map)")
		coordReplLn  = fs.String("coord-replication-listen", "", "coordinator: ship the intent log to a standby coordinator connecting on this address; empty disables")
		coordFrom    = fs.String("coord-replicate-from", "", "run as the standby coordinator tailing the active coordinator's intent stream at this address; promotes after -coord-failover-timeout of silence")
		coordFailTmo = fs.Duration("coord-failover-timeout", 2*time.Second, "standby coordinator: promote once the active has been silent this long")
		prepareTTL   = fs.Duration("prepare-ttl", wire.DefaultPrepareTTL, "lifetime of a phase-1 reservation before the orphan reaper may expire it")
		reapInterval = fs.Duration("reap-interval", time.Second, "shard: how often the orphan reaper scans for expired prepared holds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shardMap != "" {
		if *shardID != "" {
			return fmt.Errorf("-shard-map (coordinator) and -shard-id (shard) are exclusive roles")
		}
		return runCoordinator(coordinatorConfig{
			listen:      *listen,
			mapSpec:     *shardMap,
			logPath:     *intentLog,
			replListen:  *coordReplLn,
			replFrom:    *coordFrom,
			failoverTmo: *coordFailTmo,
			prepareTTL:  *prepareTTL,
			metricsAddr: *metricsAddr,
		}, sigOnTerm())
	}
	if *coordFrom != "" || *coordReplLn != "" {
		return fmt.Errorf("-coord-replicate-from and -coord-replication-listen require -shard-map (coordinator roles)")
	}
	var cdv core.CDVPolicy
	switch *policy {
	case "hard":
		cdv = core.HardCDV{}
	case "soft":
		cdv = core.SoftCDV{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	queues := map[core.Priority]float64{1: *queue}
	if *lowQueue > 0 {
		queues[2] = *lowQueue
	}
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        *ring,
		TerminalsPerNode: *terminals,
		QueueCells:       queues,
		Policy:           cdv,
	})
	if err != nil {
		return err
	}
	// Register the shutdown handler before the listener becomes reachable,
	// so a signal arriving at any point after startup is honoured.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	srv := wire.NewServer(rt.Core())
	srv.SetIOTimeout(*ioTimeout)
	switch *wireProto {
	case "auto":
	case "json":
		srv.SetJSONOnly(true)
	default:
		return fmt.Errorf("unknown -wire-proto %q (auto or json)", *wireProto)
	}
	srv.SetFailoverHandler(failoverHandler(rt))
	// The registry and tracer always exist — health carries the counter
	// snapshot even without a scrape endpoint; -metrics-addr only decides
	// whether they are additionally served over HTTP.
	reg := obs.NewRegistry()
	tracer := obs.NewMetricsTracer(reg)
	if *shedRate > 0 || *maxInflight > 0 {
		lim := overload.NewLimiter(overload.LimiterConfig{
			Rate:        *shedRate,
			Burst:       *shedBurst,
			MaxInFlight: *maxInflight,
		})
		srv.SetLimiter(lim)
		fmt.Printf("cacd: overload control %s (high-priority floor %d per burst)\n",
			lim, lim.HighPriorityFloor())
	}
	mode, err := wire.ParseDurabilityMode(*durability)
	if err != nil {
		return err
	}
	if *state != "" {
		dur, err := wire.OpenDurable(wire.DurableConfig{
			StatePath:      *state,
			JournalPath:    *journalPath,
			Mode:           mode,
			CompactRecords: *compactRecs,
			CompactBytes:   *compactBytes,
		})
		if err != nil {
			return err
		}
		defer dur.Close()
		recoverStart := time.Now()
		rep, err := dur.Recover(rt.Core())
		if err != nil {
			return err
		}
		tracer.Trace(obs.Event{
			Kind:     obs.KindReplay,
			Restored: rep.Restored,
			Failed:   len(rep.Failed),
			Records:  rep.JournalRecords,
			Duration: time.Since(recoverStart),
		})
		for _, w := range rep.Warnings {
			fmt.Printf("cacd: %s\n", w)
		}
		srv.SetDurable(dur)
		if rep.Restored > 0 {
			fmt.Printf("cacd: restored %d connections from %s (%d journal records replayed, %s durability)\n",
				rep.Restored, *state, rep.JournalRecords, mode)
		}
		for _, l := range rep.FailedLinks {
			fmt.Printf("cacd: link %s restored as failed\n", l)
		}
		for _, f := range rep.Failed {
			fmt.Printf("cacd: connection %q no longer admissible: %v\n", f.ID, f.Err)
		}
		if len(rep.Failed) > 0 && *stateStrict {
			return fmt.Errorf("state-strict: %d of %d stored connections could not be restored",
				len(rep.Failed), rep.Restored+len(rep.Failed))
		}
	} else if mode != wire.DurabilitySnapshot {
		return fmt.Errorf("-durability %s requires -state", mode)
	}
	// Replication ships the write-ahead journal, so both roles require a
	// journaled durability mode: without a journal there is no stream to
	// ship and no watermark for the standby to resume from.
	var prim *replica.Primary
	var sb *replica.Standby
	if *replListen != "" || *replFrom != "" {
		if *state == "" || mode == wire.DurabilitySnapshot {
			return fmt.Errorf("replication requires -state and -durability journal or journal-sync")
		}
		rmode, err := replica.ParseMode(*replMode)
		if err != nil {
			return err
		}
		if *replListen != "" {
			rln, err := net.Listen("tcp", *replListen)
			if err != nil {
				return err
			}
			prim = replica.NewPrimary(srv, replica.PrimaryConfig{
				Mode:   rmode,
				MaxLag: *replLag,
				Tracer: tracer,
			})
			srv.SetShipper(prim)
			prim.RegisterMetrics(reg)
			go func() { _ = prim.Serve(rln) }()
			defer prim.Close()
			fmt.Printf("cacd: shipping the journal (%s mode) to standbys on %s\n", rmode, rln.Addr())
			if testHookReplListen != nil {
				testHookReplListen(rln.Addr())
			}
		}
		if *replFrom != "" {
			srv.SetStandby(true)
			sb = replica.NewStandby(srv, replica.StandbyConfig{
				PrimaryAddr:     *replFrom,
				FailoverTimeout: *failoverTmo,
				Tracer:          tracer,
			})
			sb.RegisterMetrics(reg)
			go func() { _ = sb.Run() }()
			defer sb.Close()
			if *failoverTmo > 0 {
				fmt.Printf("cacd: warm standby of %s (auto-failover after %s of silence)\n", *replFrom, *failoverTmo)
			} else {
				fmt.Printf("cacd: warm standby of %s (promotion via cacctl promote)\n", *replFrom)
			}
		}
		srv.SetReplicationStatus(replica.Status(prim, sb))
	}
	if *shardID != "" {
		srv.SetShardID(*shardID)
		stop := srv.StartOrphanReaper(*reapInterval)
		defer stop()
		fmt.Printf("cacd: serving as shard %q (orphan reaper every %s)\n", *shardID, *reapInterval)
	}
	// After SetLimiter and SetDurable, so the scrape-time gauges see the
	// final configuration (limiter tokens, journal size).
	srv.SetObservability(reg, tracer)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", reg.VarsHandler())
		metricsSrv = &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ml) }()
		fmt.Printf("cacd: serving metrics on http://%s/metrics\n", ml.Addr())
		if testHookMetricsListen != nil {
			testHookMetricsListen(ml.Addr())
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("cacd: managing %d ring nodes (%d terminals each, %s CDV) on %s\n",
		*ring, *terminals, cdv.Name(), l.Addr())
	if testHookListen != nil {
		testHookListen(l.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case sig := <-sigCh:
		fmt.Printf("cacd: received %v, draining\n", sig)
		// Close the scrape endpoint and flush the final counter snapshot
		// before Shutdown drains the persist-retry loop: a scraper must
		// not read a half-drained server, and the totals must reach the
		// log even if the final snapshot write below hangs or fails.
		if metricsSrv != nil {
			_ = metricsSrv.Close()
			dumpFinalMetrics(reg)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh
		return nil
	case err := <-errCh:
		if err == wire.ErrServerClosed {
			return nil
		}
		return err
	}
}

// sigOnTerm registers the shutdown signals before any listener becomes
// reachable.
func sigOnTerm() chan os.Signal {
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	return sigCh
}

// coordinatorConfig gathers the coordinator-role flags.
type coordinatorConfig struct {
	listen      string
	mapSpec     string
	logPath     string
	replListen  string // serve the intent stream to a standby coordinator
	replFrom    string // tail the active coordinator; promote on silence
	failoverTmo time.Duration
	prepareTTL  time.Duration
	metricsAddr string
}

// runCoordinator serves the cross-shard setup front end: crash-safe
// two-phase reserve-commit over the shard map, every decision journaled
// in the intent log, in-doubt transactions from a previous incarnation
// resolved at boot. With replFrom set it first runs as the standby
// coordinator, tailing the active's intent stream; when the active goes
// silent it promotes and falls through to the active role on the same
// log at the bumped term.
func runCoordinator(cfg coordinatorConfig, sigCh chan os.Signal) error {
	defer signal.Stop(sigCh)
	if cfg.logPath == "" {
		return fmt.Errorf("-shard-map requires -intent-log (the coordinator journals every decision)")
	}
	m, err := shard.ParseMap(cfg.mapSpec)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	tracer := obs.NewMetricsTracer(reg)

	if cfg.replFrom != "" {
		sb, err := shard.NewStandbyCoordinator(shard.StandbyConfig{
			From:            cfg.replFrom,
			LogPath:         cfg.logPath,
			FS:              journal.OSFS{},
			FailoverTimeout: cfg.failoverTmo,
			Tracer:          tracer,
		})
		if err != nil {
			return err
		}
		fmt.Printf("cacd: standby coordinator tailing %s (promote after %s of silence)\n",
			cfg.replFrom, cfg.failoverTmo)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var sigSeen atomic.Bool
		stopWatch := make(chan struct{})
		go func() {
			select {
			case sig := <-sigCh:
				sigSeen.Store(true)
				fmt.Printf("cacd: received %v, closing standby coordinator\n", sig)
				cancel()
				sb.Close() // break a read blocked inside the session
			case <-stopWatch:
			}
		}()
		runErr := sb.Run(ctx)
		close(stopWatch)
		if sigSeen.Load() {
			return nil
		}
		if runErr != nil {
			return runErr
		}
		// Promoted: the takeover term is durable in the local log copy.
		// Fall through to the active role reading it back.
		fmt.Printf("cacd: active coordinator silent for %s — promoted to term %d\n",
			cfg.failoverTmo, sb.Epoch())
	}

	coord, err := shard.NewCoordinator(m, journal.OSFS{}, cfg.logPath)
	if err != nil {
		return err
	}
	defer coord.Close()
	coord.PrepareTTL = cfg.prepareTTL
	coord.SetTracer(tracer)
	coord.RegisterMetrics(reg)
	rep, err := coord.Recover(context.Background())
	if err != nil {
		return err
	}
	for _, t := range rep.Committed {
		fmt.Printf("cacd: recovery re-drove committed transaction %s\n", t)
	}
	for _, t := range rep.Aborted {
		fmt.Printf("cacd: recovery aborted undecided transaction %s\n", t)
	}
	for _, t := range rep.InDoubt {
		fmt.Printf("cacd: transaction %s still IN DOUBT (a shard is unreachable)\n", t)
	}
	if cfg.replListen != "" {
		rln, err := net.Listen("tcp", cfg.replListen)
		if err != nil {
			return err
		}
		prim := shard.NewIntentPrimary(coord, tracer)
		prim.RegisterMetrics(reg)
		go func() { _ = prim.Serve(rln) }()
		defer prim.Close()
		fmt.Printf("cacd: shipping the intent log to a standby coordinator on %s\n", rln.Addr())
		if testHookReplListen != nil {
			testHookReplListen(rln.Addr())
		}
	}
	var metricsSrv *http.Server
	if cfg.metricsAddr != "" {
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", reg.VarsHandler())
		metricsSrv = &http.Server{Handler: mux}
		go func() { _ = metricsSrv.Serve(ml) }()
		fmt.Printf("cacd: serving metrics on http://%s/metrics\n", ml.Addr())
		if testHookMetricsListen != nil {
			testHookMetricsListen(ml.Addr())
		}
	}
	srv := shard.NewServer(coord)
	l, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	switches := 0
	for _, info := range m.Shards() {
		switches += len(m.Switches(info.ID))
	}
	fmt.Printf("cacd: coordinating %d shards (%d switches, prepare TTL %s, term %d) on %s\n",
		len(m.Shards()), switches, cfg.prepareTTL, coord.Epoch(), l.Addr())
	if testHookListen != nil {
		testHookListen(l.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case sig := <-sigCh:
		fmt.Printf("cacd: received %v, closing coordinator\n", sig)
		if metricsSrv != nil {
			_ = metricsSrv.Close()
			dumpFinalMetrics(reg)
		}
		if err := srv.Close(); err != nil {
			return err
		}
		<-errCh
		return nil
	case err := <-errCh:
		if err == wire.ErrServerClosed {
			return nil
		}
		return err
	}
}

// dumpFinalMetrics writes the non-zero counters and gauges to stdout in
// name order — the last observable state of a draining daemon, flushed
// while the final snapshot write may still be pending.
func dumpFinalMetrics(reg *obs.Registry) {
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("cacd: final %s = %g\n", name, snap[name])
	}
}

// failoverHandler adapts the RTnet wrapped-ring re-admission engine to the
// wire server's fail-link operation: after the server has failed the link
// and evicted the traversing connections, each is re-admitted over the
// wrapped route through the full CAC check.
func failoverHandler(rt *rtnet.Network) wire.FailoverHandler {
	eng := failover.New(rt, failover.Options{})
	return func(from, to string, evicted []core.ConnRequest) []wire.ReadmitOutcome {
		node, err := rtnet.NodeIndex(from)
		if err == nil {
			if l, lerr := rt.PrimaryLink(node); lerr != nil || l.To != to {
				err = fmt.Errorf("%s->%s is not a primary ring link; wrapped re-admission unavailable", from, to)
			}
		}
		if err != nil {
			outs := make([]wire.ReadmitOutcome, 0, len(evicted))
			for _, r := range evicted {
				fmt.Printf("cacd: connection %q down after %s->%s failure: %v\n", r.ID, from, to, err)
				outs = append(outs, wire.ReadmitOutcome{ID: r.ID, Error: err.Error()})
			}
			return outs
		}
		rep := eng.Readmit(evicted, node, core.Link{From: from, To: to})
		outs := make([]wire.ReadmitOutcome, 0, len(rep.Outcomes))
		for _, o := range rep.Outcomes {
			out := wire.ReadmitOutcome{ID: o.ID, Readmitted: o.Readmitted, Attempts: o.Attempts, Hops: len(o.Route)}
			if o.Err != nil {
				out.Error = o.Err.Error()
			}
			if o.Readmitted {
				fmt.Printf("cacd: re-admitted %q over the wrapped ring (%d hops, %d attempts)\n",
					o.ID, len(o.Route), o.Attempts)
			} else {
				fmt.Printf("cacd: connection %q rejected in degraded mode: %v\n", o.ID, o.Err)
			}
			outs = append(outs, out)
		}
		return outs
	}
}
