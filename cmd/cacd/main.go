// Command cacd runs a central connection admission control server for an
// RTnet-shaped network — the deployment the paper plans for switched
// real-time connections in the next version of RTnet (Section 4.3,
// discussion 3).
//
// Usage:
//
//	cacd [-listen ADDR] [-ring N] [-terminals N] [-queue CELLS] [-low-queue CELLS] [-policy hard|soft]
//
// The server manages one CAC network whose switches are the ring nodes of
// an RTnet with the given shape. Clients (see cmd/cacctl) set up and tear
// down connections over newline-delimited JSON.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cacd:", err)
		os.Exit(1)
	}
}

// testHookListen, when non-nil, receives the bound listener address once
// the server is reachable — lets tests run on an ephemeral port (-listen
// 127.0.0.1:0) without parsing stdout.
var testHookListen func(net.Addr)

func run(args []string) error {
	fs := flag.NewFlagSet("cacd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7801", "listen address")
		ring      = fs.Int("ring", 16, "ring nodes")
		terminals = fs.Int("terminals", 16, "terminals per ring node")
		queue     = fs.Float64("queue", 32, "priority-1 FIFO size (cells)")
		lowQueue  = fs.Float64("low-queue", 0, "optional priority-2 FIFO size (cells); 0 disables")
		policy    = fs.String("policy", "hard", "CDV accumulation: hard or soft")
		state     = fs.String("state", "", "persist established connections to this JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cdv core.CDVPolicy
	switch *policy {
	case "hard":
		cdv = core.HardCDV{}
	case "soft":
		cdv = core.SoftCDV{}
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	queues := map[core.Priority]float64{1: *queue}
	if *lowQueue > 0 {
		queues[2] = *lowQueue
	}
	rt, err := rtnet.New(rtnet.Config{
		RingNodes:        *ring,
		TerminalsPerNode: *terminals,
		QueueCells:       queues,
		Policy:           cdv,
	})
	if err != nil {
		return err
	}
	// Register the shutdown handler before the listener becomes reachable,
	// so a signal arriving at any point after startup is honoured.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	srv := wire.NewServer(rt.Core())
	if *state != "" {
		store := wire.NewStateStore(*state)
		restored, failed, err := wire.Restore(rt.Core(), store)
		if err != nil {
			return err
		}
		srv.SetStateStore(store)
		if restored > 0 || len(failed) > 0 {
			fmt.Printf("cacd: restored %d connections from %s", restored, *state)
			if len(failed) > 0 {
				fmt.Printf(" (%d no longer admissible: %v)", len(failed), failed)
			}
			fmt.Println()
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Printf("cacd: managing %d ring nodes (%d terminals each, %s CDV) on %s\n",
		*ring, *terminals, cdv.Name(), l.Addr())
	if testHookListen != nil {
		testHookListen(l.Addr())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case sig := <-sigCh:
		fmt.Printf("cacd: received %v, shutting down\n", sig)
		if err := srv.Close(); err != nil {
			return err
		}
		<-errCh
		return nil
	case err := <-errCh:
		if err == wire.ErrServerClosed {
			return nil
		}
		return err
	}
}
