package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/replica"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// bootDaemon starts run() with the given args plus ephemeral listen and
// replication-listen addresses and returns the bound addresses. The
// daemon exits when the whole test process receives SIGTERM.
func bootDaemon(t *testing.T, done chan error, withRepl bool, extra ...string) (addr, replAddr string) {
	t.Helper()
	addrCh := make(chan net.Addr, 1)
	replCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	testHookReplListen = func(a net.Addr) { replCh <- a }
	defer func() { testHookListen = nil; testHookReplListen = nil }()

	args := []string{"-listen", "127.0.0.1:0", "-ring", "4", "-terminals", "1"}
	if withRepl {
		args = append(args, "-replication-listen", "127.0.0.1:0")
	}
	args = append(args, extra...)
	go func() { done <- run(args) }()
	if withRepl {
		select {
		case a := <-replCh:
			replAddr = a.String()
		case err := <-done:
			t.Fatalf("daemon exited before replication listener: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never announced its replication address")
		}
	}
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never announced its address")
	}
	return addr, replAddr
}

func waitReplication(t *testing.T, client *wire.Client, cond func(*wire.ReplicationReport) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rep, err := client.Replication(context.Background())
		if err == nil && cond(rep) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep, err := client.Replication(context.Background())
	t.Fatalf("replication condition never met (last report %+v, err %v)", rep, err)
}

func setupConn(client *wire.Client, id string) error {
	rt, err := rtnet.New(rtnet.Config{RingNodes: 4, TerminalsPerNode: 1})
	if err != nil {
		return err
	}
	route, err := rt.BroadcastRoute(0, 0)
	if err != nil {
		return err
	}
	_, err = client.Setup(context.Background(), core.ConnRequest{
		ID: core.ConnID(id), Spec: traffic.CBR(0.01), Priority: 1, Route: route,
	})
	return err
}

// TestReplicationEndToEnd runs a primary and a warm standby as two full
// cacd daemons: a setup acked by the primary must appear on the standby,
// the standby must refuse writes until promoted, and after a cacctl-style
// promote the ex-standby must admit new work at a higher epoch.
func TestReplicationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	pDone := make(chan error, 1)
	sDone := make(chan error, 1)
	pAddr, pRepl := bootDaemon(t, pDone, true,
		"-state", filepath.Join(dir, "primary.json"), "-durability", "journal-sync")
	sAddr, _ := bootDaemon(t, sDone, false,
		"-state", filepath.Join(dir, "standby.json"), "-durability", "journal-sync",
		"-replicate-from", pRepl)

	pc, err := wire.Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	sc, err := wire.Dial(sAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	waitReplication(t, sc, func(rep *wire.ReplicationReport) bool {
		return rep.Role == "standby" && rep.Connected
	})
	if err := setupConn(pc, "repl-1"); err != nil {
		t.Fatalf("primary setup: %v", err)
	}
	waitReplication(t, sc, func(rep *wire.ReplicationReport) bool {
		return rep.AckedSeq >= 1 && rep.LastSeq >= 1
	})

	// The warm standby is read-only until promoted.
	err = setupConn(sc, "refused")
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || remote.Code != wire.CodeStandby {
		t.Fatalf("standby setup error = %v, want code %s", err, wire.CodeStandby)
	}

	rep, err := sc.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if rep.Epoch == 0 {
		t.Fatal("promotion did not advance the epoch")
	}
	if err := setupConn(sc, "repl-2"); err != nil {
		t.Fatalf("promoted standby setup: %v", err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for _, done := range []chan error{pDone, sDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exited with %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not drain on SIGTERM")
		}
	}
}

// TestStandbyAutoFailover points a cacd standby with -failover-timeout at
// an in-process primary, kills the primary, and requires the standby to
// promote itself and start admitting work.
func TestStandbyAutoFailover(t *testing.T) {
	dir := t.TempDir()

	// In-process primary: journal-sync durability plus a replication
	// shipper, killable without signalling the whole test process.
	rt, err := rtnet.New(rtnet.Config{RingNodes: 4, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	psrv := wire.NewServer(rt.Core())
	dur, err := wire.OpenDurable(wire.DurableConfig{
		StatePath: filepath.Join(dir, "primary.json"),
		FS:        journal.OSFS{},
		Mode:      wire.DurabilityJournalSync,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dur.Recover(rt.Core()); err != nil {
		t.Fatal(err)
	}
	psrv.SetDurable(dur)
	prim := replica.NewPrimary(psrv, replica.PrimaryConfig{Mode: replica.ModeSync, HeartbeatEvery: 50 * time.Millisecond})
	psrv.SetShipper(prim)
	replLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go prim.Serve(replLn)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go psrv.Serve(ln)

	sDone := make(chan error, 1)
	sAddr, _ := bootDaemon(t, sDone, false,
		"-state", filepath.Join(dir, "standby.json"), "-durability", "journal-sync",
		"-replicate-from", replLn.Addr().String(), "-failover-timeout", "300ms")
	sc, err := wire.Dial(sAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	waitReplication(t, sc, func(rep *wire.ReplicationReport) bool {
		return rep.Role == "standby" && rep.Connected
	})
	pc, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := setupConn(pc, "pre-failover"); err != nil {
		t.Fatalf("primary setup: %v", err)
	}
	pc.Close()
	waitReplication(t, sc, func(rep *wire.ReplicationReport) bool {
		return rep.AckedSeq >= 1
	})

	// Kill the primary; the standby must self-promote after the timeout.
	prim.Close()
	psrv.Close()
	dur.Close()
	waitReplication(t, sc, func(rep *wire.ReplicationReport) bool {
		return rep.Role == "primary" && rep.Epoch >= 1
	})
	if err := setupConn(sc, "post-failover"); err != nil {
		t.Fatalf("auto-promoted standby setup: %v", err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sDone:
		if err != nil {
			t.Fatalf("standby exited with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("standby did not drain on SIGTERM")
	}
}

// TestReplicationFlagValidation pins the configuration contract: both
// replication roles require a journaled durability mode.
func TestReplicationFlagValidation(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state.json")
	tests := [][]string{
		{"-replication-listen", "127.0.0.1:0"},
		{"-replicate-from", "127.0.0.1:1"},
		{"-replication-listen", "127.0.0.1:0", "-state", state},
		{"-replication-listen", "127.0.0.1:0", "-state", state, "-durability", "journal", "-replication-mode", "nope"},
	}
	for _, args := range tests {
		t.Run(fmt.Sprint(args), func(t *testing.T) {
			if err := run(append(args, "-listen", "127.0.0.1:0")); err == nil {
				t.Errorf("run(%v) succeeded, want error", args)
			}
		})
	}
}
