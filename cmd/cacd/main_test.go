package main

import (
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad policy", []string{"-policy", "maybe"}},
		{"bad ring", []string{"-ring", "1"}},
		{"bad terminals", []string{"-terminals", "99"}},
		{"unusable listen address", []string{"-listen", "256.256.256.256:0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunServesAndShutsDown boots the server on an ephemeral port, waits
// for it to accept, and stops it with SIGTERM (the handler is registered
// before the listener opens, so the self-signal is safe).
func TestRunServesAndShutsDown(t *testing.T) {
	const addr = "127.0.0.1:47831"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", addr, "-ring", "4", "-terminals", "1"})
	}()
	// Wait until the server accepts connections.
	deadline := time.Now().Add(5 * time.Second)
	var conn net.Conn
	var err error
	for time.Now().Before(deadline) {
		conn, err = net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	_ = conn.Close()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// TestEndToEndConcurrentSessions boots cacd with a persistence file on an
// ephemeral port, drives 100 concurrent cacctl-style sessions (each dials,
// sets up a connection over the wire protocol, queries, and half tear
// down), then verifies the surviving set and that the -state file
// round-trips: loading it and restoring onto a freshly built network of
// the same shape re-admits exactly the established set.
func TestEndToEndConcurrentSessions(t *testing.T) {
	const (
		ringNodes = 8
		terminals = 4
		sessions  = 100
	)
	stateFile := filepath.Join(t.TempDir(), "state.json")

	addrCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	defer func() { testHookListen = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-ring", fmt.Sprint(ringNodes),
			"-terminals", fmt.Sprint(terminals),
			"-queue", "1000000",
			"-state", stateFile,
		})
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never announced its address")
	}

	// A reference network of the same shape supplies the routes; the load
	// is far below every queue, so every setup must be admitted regardless
	// of interleaving.
	ref, err := rtnet.New(rtnet.Config{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells:       map[core.Priority]float64{1: 1e6},
		Policy:           core.HardCDV{},
	})
	if err != nil {
		t.Fatal(err)
	}
	session := func(g int) (core.ConnRequest, bool) {
		route, err := ref.SegmentRoute(g%ringNodes, g%terminals, 2+g%2)
		if err != nil {
			t.Errorf("session %d: route: %v", g, err)
			return core.ConnRequest{}, false
		}
		return core.ConnRequest{
			ID:       core.ConnID(fmt.Sprintf("sess-%03d", g)),
			Spec:     traffic.VBR(0.004, 0.0005, 4),
			Priority: 1,
			Route:    route,
		}, g%2 == 0 // even sessions keep their connection
	}

	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req, keep := session(g)
			if req.ID == "" {
				return
			}
			client, err := wire.Dial(addr)
			if err != nil {
				t.Errorf("session %d: dial: %v", g, err)
				return
			}
			defer client.Close()
			adm, err := client.Setup(req)
			if err != nil {
				t.Errorf("session %d: setup: %v", g, err)
				return
			}
			if adm.ID != req.ID {
				t.Errorf("session %d: admitted as %q", g, adm.ID)
			}
			if _, err := client.RouteBound(req.Route, req.Priority); err != nil {
				t.Errorf("session %d: bound: %v", g, err)
			}
			if !keep {
				if err := client.Teardown(req.ID); err != nil {
					t.Errorf("session %d: teardown: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()

	want := make(map[core.ConnID]core.ConnRequest)
	for g := 0; g < sessions; g++ {
		if req, keep := session(g); keep {
			want[req.ID] = req
		}
	}

	// The server's live view must be exactly the kept sessions.
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	established, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedIDs(established); got != sortedKeys(want) {
		t.Fatalf("established set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}
	if violations, err := client.Audit(); err != nil || len(violations) != 0 {
		t.Fatalf("audit after load: violations=%v err=%v", violations, err)
	}

	// The persistence file must round-trip: same set, and every stored
	// request re-admissible on a fresh network of the same shape.
	stored, _, err := wire.NewStateStore(stateFile).Load()
	if err != nil {
		t.Fatal(err)
	}
	var storedIDs []core.ConnID
	for _, req := range stored {
		storedIDs = append(storedIDs, req.ID)
		if want[req.ID].Spec != req.Spec {
			t.Errorf("stored %s spec drifted: got %+v want %+v", req.ID, req.Spec, want[req.ID].Spec)
		}
	}
	if got := sortedIDs(storedIDs); got != sortedKeys(want) {
		t.Fatalf("state file set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}
	fresh, err := rtnet.New(rtnet.Config{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells:       map[core.Priority]float64{1: 1e6},
		Policy:           core.HardCDV{},
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, failed, _, err := wire.Restore(fresh.Core(), wire.NewStateStore(stateFile))
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(want) || len(failed) != 0 {
		t.Fatalf("restore: %d restored, failed=%v, want %d/none", restored, failed, len(want))
	}
	if got := sortedIDs(fresh.Core().Connections()); got != sortedKeys(want) {
		t.Fatalf("restored set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

func sortedIDs(ids []core.ConnID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

func sortedKeys(m map[core.ConnID]core.ConnRequest) string {
	ids := make([]core.ConnID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return sortedIDs(ids)
}

// TestStateStrictRefusesUnrestorableState: with -state-strict, a snapshot
// holding a connection the network shape cannot re-admit makes startup fail
// instead of silently serving with a partial restore.
func TestStateStrictRefusesUnrestorableState(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "state.json")
	err := wire.NewStateStore(stateFile).Save([]core.ConnRequest{
		{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "ring99", In: 1, Out: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-listen", "127.0.0.1:0", "-ring", "4", "-terminals", "1",
		"-state", stateFile, "-state-strict"}
	if err := run(args); err == nil || !strings.Contains(err.Error(), "state-strict") {
		t.Fatalf("run(%v) = %v, want state-strict error", args, err)
	}
}

// TestEndToEndFailover drives the full live failure story over the wire:
// cacd admits broadcasts on a 6-ring, a client declares primary link
// ring02 -> ring03 failed, the daemon re-admits every evicted connection
// over the wrapped ring except the one whose hard bound cannot survive the
// longer route — which is reported down, never silently degraded.
func TestEndToEndFailover(t *testing.T) {
	const ringNodes = 6
	addrCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	defer func() { testHookListen = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0",
			"-ring", fmt.Sprint(ringNodes), "-terminals", "1"})
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never announced its address")
	}
	defer func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	ref, err := rtnet.New(rtnet.Config{RingNodes: ringNodes, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// One broadcast per origin, plus a tight-bound one from origin 4 whose
	// healthy route (5 hops, 160 guaranteed) meets its 200-cell bound but
	// whose wrapped route after failing node 2 (9 hops, 288) cannot.
	for origin := 0; origin < ringNodes; origin++ {
		route, err := ref.BroadcastRoute(origin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Setup(core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("bc-%d", origin)), Spec: traffic.CBR(0.03),
			Priority: 1, Route: route,
		}); err != nil {
			t.Fatalf("setup bc-%d: %v", origin, err)
		}
	}
	tightRoute, err := ref.BroadcastRoute(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Setup(core.ConnRequest{
		ID: "tight", Spec: traffic.CBR(0.03), Priority: 1,
		Route: tightRoute, DelayBound: 200,
	}); err != nil {
		t.Fatalf("setup tight: %v", err)
	}

	report, err := client.FailLink(rtnet.SwitchName(2), rtnet.SwitchName(3))
	if err != nil {
		t.Fatal(err)
	}
	// Only the broadcast from origin 3 avoids link 2->3; everything else —
	// including "tight" — is evicted.
	if len(report.Outcomes) != ringNodes {
		t.Fatalf("evicted %d connections, want %d: %+v", len(report.Outcomes), ringNodes, report)
	}
	for _, o := range report.Outcomes {
		if o.ID == "tight" {
			if o.Readmitted || o.Error == "" {
				t.Errorf("tight outcome = %+v, want reported rejection", o)
			}
		} else if !o.Readmitted {
			t.Errorf("%s not re-admitted: %s", o.ID, o.Error)
		}
	}

	h, err := client.Health()
	if err != nil {
		t.Fatal(err)
	}
	wantLink := core.Link{From: rtnet.SwitchName(2), To: rtnet.SwitchName(3)}
	if h.Connections != ringNodes || h.Violations != 0 ||
		len(h.FailedLinks) != 1 || h.FailedLinks[0] != wantLink {
		t.Fatalf("degraded health = %+v", h)
	}

	if err := client.RestoreLink(rtnet.SwitchName(2), rtnet.SwitchName(3)); err != nil {
		t.Fatal(err)
	}
	h, err = client.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.FailedLinks) != 0 || h.Violations != 0 {
		t.Fatalf("restored health = %+v", h)
	}
	// The tight connection stayed down — degradation was reported, not
	// hidden; it is re-admissible over the healed ring.
	ids, err := client.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == "tight" {
			t.Fatal("rejected connection reappeared without a new setup")
		}
	}
	if _, err := client.Setup(core.ConnRequest{
		ID: "tight", Spec: traffic.CBR(0.03), Priority: 1,
		Route: tightRoute, DelayBound: 200,
	}); err != nil {
		t.Fatalf("re-setup after restore: %v", err)
	}
}

// TestEndToEndJournalDurability boots cacd in journal-sync mode, admits
// connections and tears one down, drains, and restarts from the same
// state+journal pair: the surviving set must come back exactly, through
// the full flag plumbing (-durability, -journal, -compact-records).
func TestEndToEndJournalDurability(t *testing.T) {
	dir := t.TempDir()
	stateFile := filepath.Join(dir, "state.json")
	journalFile := filepath.Join(dir, "wal")

	boot := func() (string, chan error) {
		addrCh := make(chan net.Addr, 1)
		testHookListen = func(a net.Addr) { addrCh <- a }
		done := make(chan error, 1)
		go func() {
			done <- run([]string{
				"-listen", "127.0.0.1:0", "-ring", "4", "-terminals", "1",
				"-state", stateFile, "-durability", "journal-sync",
				"-journal", journalFile, "-compact-records", "3",
			})
		}()
		select {
		case a := <-addrCh:
			testHookListen = nil
			return a.String(), done
		case err := <-done:
			t.Fatalf("server exited before listening: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never announced its address")
		}
		return "", nil
	}
	stop := func(done chan error) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}

	ref, err := rtnet.New(rtnet.Config{RingNodes: 4, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, done := boot()
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		route, err := ref.BroadcastRoute(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Setup(core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("jc-%d", i)), Spec: traffic.CBR(0.02),
			Priority: 1, Route: route,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Teardown("jc-1"); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	stop(done)

	addr2, done2 := boot()
	client2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := client2.List()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 2 || ids[0] != "jc-0" || ids[1] != "jc-2" {
		t.Fatalf("after journal-mode restart List = %v, want [jc-0 jc-2]", ids)
	}
	_ = client2.Close()
	stop(done2)
}
