package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/rtnet"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad policy", []string{"-policy", "maybe"}},
		{"bad ring", []string{"-ring", "1"}},
		{"bad terminals", []string{"-terminals", "99"}},
		{"unusable listen address", []string{"-listen", "256.256.256.256:0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunServesAndShutsDown boots the server on an ephemeral port, waits
// for it to accept, and stops it with SIGTERM (the handler is registered
// before the listener opens, so the self-signal is safe).
func TestRunServesAndShutsDown(t *testing.T) {
	const addr = "127.0.0.1:47831"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", addr, "-ring", "4", "-terminals", "1"})
	}()
	// Wait until the server accepts connections.
	deadline := time.Now().Add(5 * time.Second)
	var conn net.Conn
	var err error
	for time.Now().Before(deadline) {
		conn, err = net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	_ = conn.Close()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

// TestEndToEndConcurrentSessions boots cacd with a persistence file on an
// ephemeral port, drives 100 concurrent cacctl-style sessions (each dials,
// sets up a connection over the wire protocol, queries, and half tear
// down), then verifies the surviving set and that the -state file
// round-trips: loading it and restoring onto a freshly built network of
// the same shape re-admits exactly the established set.
func TestEndToEndConcurrentSessions(t *testing.T) {
	const (
		ringNodes = 8
		terminals = 4
		sessions  = 100
	)
	stateFile := filepath.Join(t.TempDir(), "state.json")

	addrCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	defer func() { testHookListen = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-ring", fmt.Sprint(ringNodes),
			"-terminals", fmt.Sprint(terminals),
			"-queue", "1000000",
			"-state", stateFile,
		})
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never announced its address")
	}

	// A reference network of the same shape supplies the routes; the load
	// is far below every queue, so every setup must be admitted regardless
	// of interleaving.
	ref, err := rtnet.New(rtnet.Config{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells:       map[core.Priority]float64{1: 1e6},
		Policy:           core.HardCDV{},
	})
	if err != nil {
		t.Fatal(err)
	}
	session := func(g int) (core.ConnRequest, bool) {
		route, err := ref.SegmentRoute(g%ringNodes, g%terminals, 2+g%2)
		if err != nil {
			t.Errorf("session %d: route: %v", g, err)
			return core.ConnRequest{}, false
		}
		return core.ConnRequest{
			ID:       core.ConnID(fmt.Sprintf("sess-%03d", g)),
			Spec:     traffic.VBR(0.004, 0.0005, 4),
			Priority: 1,
			Route:    route,
		}, g%2 == 0 // even sessions keep their connection
	}

	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			req, keep := session(g)
			if req.ID == "" {
				return
			}
			client, err := wire.Dial(addr)
			if err != nil {
				t.Errorf("session %d: dial: %v", g, err)
				return
			}
			defer client.Close()
			adm, err := client.Setup(context.Background(), req)
			if err != nil {
				t.Errorf("session %d: setup: %v", g, err)
				return
			}
			if adm.ID != req.ID {
				t.Errorf("session %d: admitted as %q", g, adm.ID)
			}
			if _, err := client.RouteBound(context.Background(), req.Route, req.Priority); err != nil {
				t.Errorf("session %d: bound: %v", g, err)
			}
			if !keep {
				if err := client.Teardown(context.Background(), req.ID); err != nil {
					t.Errorf("session %d: teardown: %v", g, err)
				}
			}
		}(g)
	}
	wg.Wait()

	want := make(map[core.ConnID]core.ConnRequest)
	for g := 0; g < sessions; g++ {
		if req, keep := session(g); keep {
			want[req.ID] = req
		}
	}

	// The server's live view must be exactly the kept sessions.
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	established, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedIDs(established); got != sortedKeys(want) {
		t.Fatalf("established set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}
	if violations, err := client.Audit(context.Background()); err != nil || len(violations) != 0 {
		t.Fatalf("audit after load: violations=%v err=%v", violations, err)
	}

	// The persistence file must round-trip: same set, and every stored
	// request re-admissible on a fresh network of the same shape.
	stored, _, err := wire.NewStateStore(stateFile).Load()
	if err != nil {
		t.Fatal(err)
	}
	var storedIDs []core.ConnID
	for _, req := range stored {
		storedIDs = append(storedIDs, req.ID)
		if want[req.ID].Spec != req.Spec {
			t.Errorf("stored %s spec drifted: got %+v want %+v", req.ID, req.Spec, want[req.ID].Spec)
		}
	}
	if got := sortedIDs(storedIDs); got != sortedKeys(want) {
		t.Fatalf("state file set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}
	fresh, err := rtnet.New(rtnet.Config{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells:       map[core.Priority]float64{1: 1e6},
		Policy:           core.HardCDV{},
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, failed, _, err := wire.Restore(fresh.Core(), wire.NewStateStore(stateFile))
	if err != nil {
		t.Fatal(err)
	}
	if restored != len(want) || len(failed) != 0 {
		t.Fatalf("restore: %d restored, failed=%v, want %d/none", restored, failed, len(want))
	}
	if got := sortedIDs(fresh.Core().Connections()); got != sortedKeys(want) {
		t.Fatalf("restored set mismatch:\n got %s\nwant %s", got, sortedKeys(want))
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}

func sortedIDs(ids []core.ConnID) string {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	sort.Strings(ss)
	return fmt.Sprint(ss)
}

func sortedKeys(m map[core.ConnID]core.ConnRequest) string {
	ids := make([]core.ConnID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	return sortedIDs(ids)
}

// TestStateStrictRefusesUnrestorableState: with -state-strict, a snapshot
// holding a connection the network shape cannot re-admit makes startup fail
// instead of silently serving with a partial restore.
func TestStateStrictRefusesUnrestorableState(t *testing.T) {
	stateFile := filepath.Join(t.TempDir(), "state.json")
	err := wire.NewStateStore(stateFile).Save([]core.ConnRequest{
		{ID: "ghost", Spec: traffic.CBR(0.1), Priority: 1,
			Route: core.Route{{Switch: "ring99", In: 1, Out: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-listen", "127.0.0.1:0", "-ring", "4", "-terminals", "1",
		"-state", stateFile, "-state-strict"}
	if err := run(args); err == nil || !strings.Contains(err.Error(), "state-strict") {
		t.Fatalf("run(%v) = %v, want state-strict error", args, err)
	}
}

// TestEndToEndFailover drives the full live failure story over the wire:
// cacd admits broadcasts on a 6-ring, a client declares primary link
// ring02 -> ring03 failed, the daemon re-admits every evicted connection
// over the wrapped ring except the one whose hard bound cannot survive the
// longer route — which is reported down, never silently degraded.
func TestEndToEndFailover(t *testing.T) {
	const ringNodes = 6
	addrCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	defer func() { testHookListen = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0",
			"-ring", fmt.Sprint(ringNodes), "-terminals", "1"})
	}()
	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never announced its address")
	}
	defer func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	ref, err := rtnet.New(rtnet.Config{RingNodes: ringNodes, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// One broadcast per origin, plus a tight-bound one from origin 4 whose
	// healthy route (5 hops, 160 guaranteed) meets its 200-cell bound but
	// whose wrapped route after failing node 2 (9 hops, 288) cannot.
	for origin := 0; origin < ringNodes; origin++ {
		route, err := ref.BroadcastRoute(origin, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("bc-%d", origin)), Spec: traffic.CBR(0.03),
			Priority: 1, Route: route,
		}); err != nil {
			t.Fatalf("setup bc-%d: %v", origin, err)
		}
	}
	tightRoute, err := ref.BroadcastRoute(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "tight", Spec: traffic.CBR(0.03), Priority: 1,
		Route: tightRoute, DelayBound: 200,
	}); err != nil {
		t.Fatalf("setup tight: %v", err)
	}

	report, err := client.FailLink(context.Background(), rtnet.SwitchName(2), rtnet.SwitchName(3))
	if err != nil {
		t.Fatal(err)
	}
	// Only the broadcast from origin 3 avoids link 2->3; everything else —
	// including "tight" — is evicted.
	if len(report.Outcomes) != ringNodes {
		t.Fatalf("evicted %d connections, want %d: %+v", len(report.Outcomes), ringNodes, report)
	}
	for _, o := range report.Outcomes {
		if o.ID == "tight" {
			if o.Readmitted || o.Error == "" {
				t.Errorf("tight outcome = %+v, want reported rejection", o)
			}
		} else if !o.Readmitted {
			t.Errorf("%s not re-admitted: %s", o.ID, o.Error)
		}
	}

	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantLink := core.Link{From: rtnet.SwitchName(2), To: rtnet.SwitchName(3)}
	if h.Connections != ringNodes || h.Violations != 0 ||
		len(h.FailedLinks) != 1 || h.FailedLinks[0] != wantLink {
		t.Fatalf("degraded health = %+v", h)
	}

	if err := client.RestoreLink(context.Background(), rtnet.SwitchName(2), rtnet.SwitchName(3)); err != nil {
		t.Fatal(err)
	}
	h, err = client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.FailedLinks) != 0 || h.Violations != 0 {
		t.Fatalf("restored health = %+v", h)
	}
	// The tight connection stayed down — degradation was reported, not
	// hidden; it is re-admissible over the healed ring.
	ids, err := client.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == "tight" {
			t.Fatal("rejected connection reappeared without a new setup")
		}
	}
	if _, err := client.Setup(context.Background(), core.ConnRequest{
		ID: "tight", Spec: traffic.CBR(0.03), Priority: 1,
		Route: tightRoute, DelayBound: 200,
	}); err != nil {
		t.Fatalf("re-setup after restore: %v", err)
	}
}

// TestEndToEndMetricsOracle boots cacd with journal-sync durability, a
// metrics endpoint and a small token bucket, drives mixed churn — accepted
// and delay-bound-rejected setups in parallel, teardowns, a link failure
// with wrapped re-admission, a restore, and a read burst that overloads the
// bucket — while tallying an oracle from the client-observed outcomes. The
// scraped /debug/vars counters must equal the oracle exactly: the metrics
// pipeline may not drop, double-count or invent a single decision.
func TestEndToEndMetricsOracle(t *testing.T) {
	const (
		ringNodes = 6
		good      = 10 // admissible setups
		bad       = 6  // delay-bound-rejected setups
		torn      = 5  // teardowns of accepted connections
		listBurst = 30 // reads thrown against the token bucket
		burst     = 40 // bucket capacity; reads shed below 1 + burst/2 tokens
	)
	dir := t.TempDir()
	stateFile := filepath.Join(dir, "state.json")
	journalFile := filepath.Join(dir, "wal")

	addrCh := make(chan net.Addr, 1)
	metricsCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	testHookMetricsListen = func(a net.Addr) { metricsCh <- a }
	defer func() {
		testHookListen = nil
		testHookMetricsListen = nil
	}()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-ring", fmt.Sprint(ringNodes), "-terminals", "1",
			"-state", stateFile, "-durability", "journal-sync", "-journal", journalFile,
			"-metrics-addr", "127.0.0.1:0",
			// Refill is negligible over the test's lifetime, so the token
			// arithmetic below is deterministic: 40 tokens, one per setup,
			// reads shed below 21.
			"-shed-rate", "0.001", "-shed-burst", fmt.Sprint(burst),
		})
	}()
	var addr, metricsAddr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-done:
		t.Fatalf("server exited before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never announced its address")
	}
	select {
	case a := <-metricsCh:
		metricsAddr = a.String()
	case <-time.After(5 * time.Second):
		t.Fatal("metrics listener never announced its address")
	}
	defer func() {
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}()

	ref, err := rtnet.New(rtnet.Config{RingNodes: ringNodes, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	routes := make([]core.Route, ringNodes)
	for origin := 0; origin < ringNodes; origin++ {
		r, err := ref.BroadcastRoute(origin, 0)
		if err != nil {
			t.Fatal(err)
		}
		routes[origin] = r
	}

	// Phase 1: concurrent setups. The good ones are far below every queue
	// and must all be admitted; the bad ones request a delay bound below
	// the sum of per-hop guarantees and must all be rejected with the
	// stable delay-bound code.
	var (
		tallyMu       sync.Mutex
		accepted      int
		rejected      int
		goodHopChecks int
	)
	var wg sync.WaitGroup
	for i := 0; i < good+bad; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := core.ConnRequest{
				ID:       core.ConnID(fmt.Sprintf("good-%d", i)),
				Spec:     traffic.CBR(0.03),
				Priority: 1,
				Route:    routes[i%ringNodes],
			}
			if i >= good {
				req.ID = core.ConnID(fmt.Sprintf("bad-%d", i-good))
				req.DelayBound = 10
			}
			c, err := wire.Dial(addr)
			if err != nil {
				t.Errorf("setup %s: dial: %v", req.ID, err)
				return
			}
			defer c.Close()
			_, err = c.Setup(context.Background(), req)
			tallyMu.Lock()
			defer tallyMu.Unlock()
			switch {
			case err == nil:
				accepted++
				goodHopChecks += len(req.Route)
				if i >= good {
					t.Errorf("bad setup %s was admitted", req.ID)
				}
			case errors.Is(err, core.ErrRejected):
				rejected++
				var re *wire.RemoteError
				if !errors.As(err, &re) || re.Code != core.CodeDelayBound {
					t.Errorf("setup %s: code = %v, want %s via RemoteError", req.ID, err, core.CodeDelayBound)
				}
				if i < good {
					t.Errorf("good setup %s rejected: %v", req.ID, err)
				}
			default:
				t.Errorf("setup %s: %v", req.ID, err)
			}
		}(i)
	}
	wg.Wait()
	if accepted != good || rejected != bad {
		t.Fatalf("churn tally: %d accepted, %d rejected, want %d/%d", accepted, rejected, good, bad)
	}

	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Phase 2: tear down the first torn connections (recovery class: free).
	for i := 0; i < torn; i++ {
		if err := client.Teardown(context.Background(), core.ConnID(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatalf("teardown good-%d: %v", i, err)
		}
	}

	// Phase 3: fail ring00 -> ring01. Of the survivors (origins 5,0,1,2,3),
	// only the broadcast from origin 1 avoids the link; the other four are
	// evicted and re-admitted over the wrapped ring.
	report, err := client.FailLink(context.Background(), rtnet.SwitchName(0), rtnet.SwitchName(1))
	if err != nil {
		t.Fatal(err)
	}
	const wantEvicted = 4
	if len(report.Outcomes) != wantEvicted {
		t.Fatalf("evicted %d connections, want %d: %+v", len(report.Outcomes), wantEvicted, report)
	}
	crankbackHops := 0
	for _, o := range report.Outcomes {
		// Every evicted broadcast must survive on the wrapped ring in one
		// attempt here — anything else breaks the oracle arithmetic below,
		// so fail loudly with the outcome.
		if !o.Readmitted || o.Attempts != 1 || o.Hops <= 0 {
			t.Fatalf("unexpected re-admission outcome %+v", o)
		}
		crankbackHops += o.Hops
	}
	if err := client.RestoreLink(context.Background(), rtnet.SwitchName(0), rtnet.SwitchName(1)); err != nil {
		t.Fatal(err)
	}

	// Phase 4: hammer the read class. 16 setups drained the 40-token bucket
	// to 24, reads shed below 21 tokens, so most of the burst is shed; the
	// oracle only relies on the client-observed split.
	okLists, shedLists := 0, 0
	for i := 0; i < listBurst; i++ {
		switch _, err := client.List(context.Background()); {
		case err == nil:
			okLists++
		case errors.Is(err, wire.ErrOverloaded):
			shedLists++
		default:
			t.Fatalf("list %d: %v", i, err)
		}
	}
	if shedLists == 0 {
		t.Fatal("read burst was never shed; overload path untested")
	}

	// Scrape the JSON snapshot and assert it equals the oracle.
	vars := scrapeVars(t, metricsAddr)
	assertVar := func(name string, want float64) {
		t.Helper()
		got, ok := vars[name]
		if !ok {
			t.Errorf("metric %s missing from /debug/vars", name)
			return
		}
		if got != want {
			t.Errorf("metric %s = %g, want %g", name, got, want)
		}
	}
	// Admission: client-observed setups plus one accepted setup per
	// re-admission (each re-admission attempt is a full CAC setup).
	assertVar(`atmcac_admission_setups_total{outcome="accepted"}`, float64(accepted+wantEvicted))
	assertVar(`atmcac_admission_setups_total{outcome="rejected"}`, float64(rejected))
	assertVar(`atmcac_admission_setups_total{outcome="error"}`, 0)
	assertVar(`atmcac_admission_rejections_total{code="delay-bound"}`, float64(rejected))
	assertVar(`atmcac_admission_teardowns_total{outcome="ok"}`, float64(torn))
	assertVar("atmcac_admission_setup_seconds_count", float64(accepted+rejected+wantEvicted))
	// Delay-bound rejections fail the end-to-end pre-check before any hop,
	// so hop checks come only from admitted routes and wrapped re-admissions.
	assertVar("atmcac_admission_hop_check_seconds_count", float64(goodHopChecks+crankbackHops))
	// Failover.
	assertVar("atmcac_failover_faillink_total", 1)
	assertVar("atmcac_failover_evicted_total", wantEvicted)
	assertVar("atmcac_failover_restorelink_total", 1)
	assertVar("atmcac_failover_readmitted_total", wantEvicted)
	assertVar("atmcac_failover_down_total", 0)
	assertVar("atmcac_failover_readmit_attempts_total", wantEvicted)
	assertVar("atmcac_failover_crankback_hops_total", float64(crankbackHops))
	// Journal: one synced append per acked mutation — accepted setups,
	// teardowns, the fail-link record and the restore-link record.
	// Re-admissions ride inside the fail-link record. Setups and
	// teardowns fsync through the group-commit path, but this client is
	// sequential, so every group holds exactly one record and the fsync
	// count still equals the append count.
	appends := float64(accepted + torn + 2)
	assertVar("atmcac_journal_append_seconds_count", appends)
	assertVar("atmcac_journal_fsync_seconds_count", appends)
	assertVar("atmcac_journal_append_errors_total", 0)
	assertVar("atmcac_journal_records", appends)
	assertVar(`atmcac_journal_compactions_total{outcome="ok"}`, 0)
	if vars["atmcac_journal_append_bytes_total"] <= 0 {
		t.Errorf("atmcac_journal_append_bytes_total = %g, want > 0", vars["atmcac_journal_append_bytes_total"])
	}
	// Overload and the request plane.
	assertVar(`atmcac_overload_shed_total{class="read"}`, float64(shedLists))
	assertVar(`atmcac_requests_total{op="setup",outcome="ok"}`, float64(accepted))
	assertVar(`atmcac_requests_total{op="setup",outcome="error"}`, float64(rejected))
	assertVar(`atmcac_requests_total{op="teardown",outcome="ok"}`, float64(torn))
	assertVar(`atmcac_requests_total{op="list",outcome="ok"}`, float64(okLists))
	assertVar(`atmcac_requests_total{op="list",outcome="shed"}`, float64(shedLists))
	// Live-state gauges: 10 admitted - 5 torn down, all evictions
	// re-admitted; the failed link was restored.
	assertVar("atmcac_admission_connections", float64(good-torn))
	assertVar("atmcac_failover_links_down", 0)

	// The Prometheus endpoint must serve the same counters as typed text.
	text := scrapeText(t, metricsAddr)
	for _, want := range []string{
		"# TYPE atmcac_admission_setups_total counter",
		fmt.Sprintf(`atmcac_admission_setups_total{outcome="accepted"} %d`, accepted+wantEvicted),
		"# TYPE atmcac_admission_setup_seconds histogram",
		`atmcac_admission_setup_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics output missing %q", want)
		}
	}

	// The health operation carries the same snapshot over the CAC protocol
	// itself (the cacctl metrics path) — spot-check parity with the scrape.
	h, err := client.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		`atmcac_admission_setups_total{outcome="accepted"}`,
		"atmcac_failover_crankback_hops_total",
		"atmcac_journal_fsync_seconds_count",
	} {
		if h.Metrics[name] != vars[name] {
			t.Errorf("health metrics %s = %g, scrape says %g", name, h.Metrics[name], vars[name])
		}
	}
}

// scrapeVars GETs /debug/vars and decodes the flattened snapshot.
func scrapeVars(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("scrape /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /debug/vars: %v", err)
	}
	vars := make(map[string]float64)
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("decode /debug/vars: %v\n%s", err, body)
	}
	return vars
}

// scrapeText GETs /metrics and returns the Prometheus exposition.
func scrapeText(t *testing.T, addr string) string {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

// TestEndToEndJournalDurability boots cacd in journal-sync mode, admits
// connections and tears one down, drains, and restarts from the same
// state+journal pair: the surviving set must come back exactly, through
// the full flag plumbing (-durability, -journal, -compact-records).
func TestEndToEndJournalDurability(t *testing.T) {
	dir := t.TempDir()
	stateFile := filepath.Join(dir, "state.json")
	journalFile := filepath.Join(dir, "wal")

	boot := func() (string, chan error) {
		addrCh := make(chan net.Addr, 1)
		testHookListen = func(a net.Addr) { addrCh <- a }
		done := make(chan error, 1)
		go func() {
			done <- run([]string{
				"-listen", "127.0.0.1:0", "-ring", "4", "-terminals", "1",
				"-state", stateFile, "-durability", "journal-sync",
				"-journal", journalFile, "-compact-records", "3",
			})
		}()
		select {
		case a := <-addrCh:
			testHookListen = nil
			return a.String(), done
		case err := <-done:
			t.Fatalf("server exited before listening: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never announced its address")
		}
		return "", nil
	}
	stop := func(done chan error) {
		t.Helper()
		if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}

	ref, err := rtnet.New(rtnet.Config{RingNodes: 4, TerminalsPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, done := boot()
	client, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		route, err := ref.BroadcastRoute(i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := client.Setup(context.Background(), core.ConnRequest{
			ID: core.ConnID(fmt.Sprintf("jc-%d", i)), Spec: traffic.CBR(0.02),
			Priority: 1, Route: route,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Teardown(context.Background(), "jc-1"); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	stop(done)

	addr2, done2 := boot()
	client2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := client2.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) != 2 || ids[0] != "jc-0" || ids[1] != "jc-2" {
		t.Fatalf("after journal-mode restart List = %v, want [jc-0 jc-2]", ids)
	}
	_ = client2.Close()
	stop(done2)
}
