package main

import (
	"net"
	"syscall"
	"testing"
	"time"
)

func TestRunValidationErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"bad flag", []string{"-nope"}},
		{"bad policy", []string{"-policy", "maybe"}},
		{"bad ring", []string{"-ring", "1"}},
		{"bad terminals", []string{"-terminals", "99"}},
		{"unusable listen address", []string{"-listen", "256.256.256.256:0"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) succeeded, want error", tt.args)
			}
		})
	}
}

// TestRunServesAndShutsDown boots the server on an ephemeral port, waits
// for it to accept, and stops it with SIGTERM (the handler is registered
// before the listener opens, so the self-signal is safe).
func TestRunServesAndShutsDown(t *testing.T) {
	const addr = "127.0.0.1:47831"
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", addr, "-ring", "4", "-terminals", "1"})
	}()
	// Wait until the server accepts connections.
	deadline := time.Now().Add(5 * time.Second)
	var conn net.Conn
	var err error
	for time.Now().Before(deadline) {
		conn, err = net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	_ = conn.Close()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down on SIGTERM")
	}
}
