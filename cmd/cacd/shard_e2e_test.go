package main

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/journal"
	"atmcac/internal/shard"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// TestEndToEndShardedSetup runs the partitioned deployment as three full
// cacd processes-in-miniature: two journaled shard daemons (each serving
// the whole 4-node ring, each owning half the switches in the map) and a
// coordinator daemon fronting them. A cross-shard setup through the
// coordinator must land one leg on each shard with no prepared hold left
// behind, health must name each shard, and teardown through the
// coordinator must release both legs.
func TestEndToEndShardedSetup(t *testing.T) {
	dir := t.TempDir()
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	cDone := make(chan error, 1)
	aAddr, _ := bootDaemon(t, aDone, false, "-shard-id", "s0",
		"-state", filepath.Join(dir, "s0.json"), "-durability", "journal-sync",
		"-reap-interval", "50ms")
	bAddr, _ := bootDaemon(t, bDone, false, "-shard-id", "s1",
		"-state", filepath.Join(dir, "s1.json"), "-durability", "journal-sync",
		"-reap-interval", "50ms")
	mapSpec := fmt.Sprintf("s0@%s=ring00,ring01;s1@%s=ring02,ring03", aAddr, bAddr)
	cAddr, _ := bootDaemon(t, cDone, false,
		"-shard-map", mapSpec, "-intent-log", filepath.Join(dir, "intent.log"))

	cc, err := wire.Dial(cAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	route := core.Route{
		{Switch: "ring00", In: 5, Out: 0},
		{Switch: "ring01", In: 5, Out: 0},
		{Switch: "ring02", In: 5, Out: 0},
		{Switch: "ring03", In: 5, Out: 0},
	}
	adm, err := cc.Setup(context.Background(), core.ConnRequest{
		ID: "xconn", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatalf("cross-shard setup through coordinator: %v", err)
	}
	if adm.EndToEndGuaranteed <= 0 {
		t.Fatalf("no end-to-end guarantee returned: %+v", adm)
	}

	for _, shardAddr := range []struct{ id, addr string }{{"s0", aAddr}, {"s1", bAddr}} {
		sc, err := wire.Dial(shardAddr.addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != "xconn" {
			t.Fatalf("shard %s lists %v, want [xconn]", shardAddr.id, ids)
		}
		h, err := sc.Health(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if h.ShardID != shardAddr.id || h.Prepared != 0 {
			t.Fatalf("shard %s health: shardId=%q prepared=%d", shardAddr.id, h.ShardID, h.Prepared)
		}
		st, err := sc.ShardStatus(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.ShardID != shardAddr.id || len(st.Prepared) != 0 {
			t.Fatalf("shard %s status: %+v", shardAddr.id, st)
		}
		sc.Close()
	}

	// The coordinator's own health speaks for the fleet.
	h, err := cc.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.Connections != 1 {
		t.Fatalf("coordinator health: role=%q connections=%d", h.Role, h.Connections)
	}

	if err := cc.Teardown(context.Background(), "xconn"); err != nil {
		t.Fatalf("teardown through coordinator: %v", err)
	}
	for _, addr := range []string{aAddr, bAddr} {
		sc, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List(context.Background())
		sc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("residual connections %v on %s after coordinator teardown", ids, addr)
		}
	}

	// A ring-wrapping route revisits s0 (its hops straddle s1): the
	// coordinator merges s0's runs into one prepare and demands an
	// end-to-end bound for the jitter entering the downstream run.
	wrapRoute := core.Route{
		{Switch: "ring01", In: 5, Out: 0},
		{Switch: "ring02", In: 5, Out: 0},
		{Switch: "ring03", In: 5, Out: 0},
		{Switch: "ring00", In: 5, Out: 0},
	}
	wrap := core.ConnRequest{ID: "wconn", Spec: traffic.CBR(0.05), Priority: 1, Route: wrapRoute}
	if _, err := cc.Setup(context.Background(), wrap); err == nil {
		t.Fatal("unbounded wrapping setup admitted through coordinator")
	}
	wrap.DelayBound = 4 * 40
	if _, err := cc.Setup(context.Background(), wrap); err != nil {
		t.Fatalf("bounded wrapping setup through coordinator: %v", err)
	}
	for _, addr := range []string{aAddr, bAddr} {
		sc, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List(context.Background())
		sc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != "wconn" {
			t.Fatalf("shard %s lists %v, want [wconn]", addr, ids)
		}
	}
	if err := cc.Teardown(context.Background(), "wconn"); err != nil {
		t.Fatalf("teardown of wrapped connection: %v", err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"s0": aDone, "s1": bDone, "coordinator": cDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s daemon exited with %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s daemon did not drain on SIGTERM", name)
		}
	}
}

// TestShardFlagValidation pins the role-exclusivity and intent-log
// requirements.
func TestShardFlagValidation(t *testing.T) {
	if err := run([]string{"-shard-map", "s0@h:1=sw0", "-shard-id", "s0"}); err == nil {
		t.Fatal("coordinator+shard roles accepted")
	}
	if err := run([]string{"-shard-map", "s0@h:1=sw0"}); err == nil {
		t.Fatal("coordinator without -intent-log accepted")
	}
	if err := run([]string{"-shard-map", "garbage", "-intent-log", "x.log"}); err == nil {
		t.Fatal("malformed shard map accepted")
	}
	if err := run([]string{"-coord-replicate-from", "h:1"}); err == nil {
		t.Fatal("standby coordinator without -shard-map accepted")
	}
	if err := run([]string{"-coord-replication-listen", "127.0.0.1:0"}); err == nil {
		t.Fatal("-coord-replication-listen without -shard-map accepted")
	}
}

// TestEndToEndCoordinatorTakeover runs the coordinator-HA deployment the
// new flags wire up: an in-process active coordinator (killable without
// signalling the whole test binary) ships its intent log to a standby
// cacd started with -coord-replicate-from. When the active dies, the
// standby daemon promotes, falls through to the active role on its log
// copy at the bumped term, announces its listener, and keeps serving the
// fleet — the pre-takeover connection is still listed and new setups are
// admitted at term 2.
func TestEndToEndCoordinatorTakeover(t *testing.T) {
	dir := t.TempDir()
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	aAddr, _ := bootDaemon(t, aDone, false, "-shard-id", "s0",
		"-state", filepath.Join(dir, "s0.json"), "-durability", "journal-sync")
	bAddr, _ := bootDaemon(t, bDone, false, "-shard-id", "s1",
		"-state", filepath.Join(dir, "s1.json"), "-durability", "journal-sync")
	mapSpec := fmt.Sprintf("s0@%s=ring00,ring01;s1@%s=ring02,ring03", aAddr, bAddr)

	// The active coordinator runs in-process from the same library pieces
	// runCoordinator composes, so the test can kill it alone.
	m, err := shard.ParseMap(mapSpec)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.NewCoordinator(m, journal.OSFS{}, filepath.Join(dir, "intent-active.log"))
	if err != nil {
		t.Fatal(err)
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	prim := shard.NewIntentPrimary(coord, nil)
	prim.HeartbeatEvery = 50 * time.Millisecond
	go func() { _ = prim.Serve(rln) }()

	addrCh := make(chan net.Addr, 1)
	replCh := make(chan net.Addr, 1)
	testHookListen = func(a net.Addr) { addrCh <- a }
	testHookReplListen = func(a net.Addr) { replCh <- a }
	defer func() { testHookListen = nil; testHookReplListen = nil }()
	sbDone := make(chan error, 1)
	go func() {
		sbDone <- run([]string{
			"-listen", "127.0.0.1:0",
			"-shard-map", mapSpec,
			"-intent-log", filepath.Join(dir, "intent-standby.log"),
			"-coord-replicate-from", rln.Addr().String(),
			"-coord-replication-listen", "127.0.0.1:0",
			"-coord-failover-timeout", "400ms",
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !prim.Attached() {
		if time.Now().After(deadline) {
			t.Fatal("standby coordinator never attached to the intent stream")
		}
		time.Sleep(10 * time.Millisecond)
	}

	route := core.Route{
		{Switch: "ring00", In: 5, Out: 0},
		{Switch: "ring01", In: 5, Out: 0},
		{Switch: "ring02", In: 5, Out: 0},
		{Switch: "ring03", In: 5, Out: 0},
	}
	if _, err := coord.Setup(context.Background(), core.ConnRequest{
		ID: "pre-takeover", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}); err != nil {
		t.Fatalf("setup through the active coordinator: %v", err)
	}

	// Kill the active coordinator outright: stream, listener, pool.
	prim.Close()
	_ = rln.Close()
	_ = coord.Close()

	var addr string
	select {
	case a := <-addrCh:
		addr = a.String()
	case err := <-sbDone:
		t.Fatalf("standby daemon exited instead of promoting: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("promoted coordinator never announced its listener")
	}
	// The promoted coordinator serves its own intent stream for the next
	// standby in line.
	select {
	case <-replCh:
	case <-time.After(5 * time.Second):
		t.Fatal("promoted coordinator never announced its replication listener")
	}

	cc, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	h, err := cc.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.Epoch != 2 {
		t.Fatalf("promoted coordinator health: role=%q epoch=%d, want coordinator at term 2", h.Role, h.Epoch)
	}
	ids, err := cc.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "pre-takeover" {
		t.Fatalf("promoted coordinator lists %v, want [pre-takeover]", ids)
	}
	if _, err := cc.Setup(context.Background(), core.ConnRequest{
		ID: "post-takeover", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	}); err != nil {
		t.Fatalf("setup through the promoted coordinator: %v", err)
	}
	for _, id := range []core.ConnID{"pre-takeover", "post-takeover"} {
		if err := cc.Teardown(context.Background(), id); err != nil {
			t.Fatalf("teardown %s through the promoted coordinator: %v", id, err)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"s0": aDone, "s1": bDone, "promoted coordinator": sbDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s daemon exited with %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s daemon did not drain on SIGTERM", name)
		}
	}
}
