package main

import (
	"fmt"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"atmcac/internal/core"
	"atmcac/internal/traffic"
	"atmcac/internal/wire"
)

// TestEndToEndShardedSetup runs the partitioned deployment as three full
// cacd processes-in-miniature: two journaled shard daemons (each serving
// the whole 4-node ring, each owning half the switches in the map) and a
// coordinator daemon fronting them. A cross-shard setup through the
// coordinator must land one leg on each shard with no prepared hold left
// behind, health must name each shard, and teardown through the
// coordinator must release both legs.
func TestEndToEndShardedSetup(t *testing.T) {
	dir := t.TempDir()
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	cDone := make(chan error, 1)
	aAddr, _ := bootDaemon(t, aDone, false, "-shard-id", "s0",
		"-state", filepath.Join(dir, "s0.json"), "-durability", "journal-sync",
		"-reap-interval", "50ms")
	bAddr, _ := bootDaemon(t, bDone, false, "-shard-id", "s1",
		"-state", filepath.Join(dir, "s1.json"), "-durability", "journal-sync",
		"-reap-interval", "50ms")
	mapSpec := fmt.Sprintf("s0@%s=ring00,ring01;s1@%s=ring02,ring03", aAddr, bAddr)
	cAddr, _ := bootDaemon(t, cDone, false,
		"-shard-map", mapSpec, "-intent-log", filepath.Join(dir, "intent.log"))

	cc, err := wire.Dial(cAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	route := core.Route{
		{Switch: "ring00", In: 5, Out: 0},
		{Switch: "ring01", In: 5, Out: 0},
		{Switch: "ring02", In: 5, Out: 0},
		{Switch: "ring03", In: 5, Out: 0},
	}
	adm, err := cc.Setup(core.ConnRequest{
		ID: "xconn", Spec: traffic.CBR(0.05), Priority: 1, Route: route,
	})
	if err != nil {
		t.Fatalf("cross-shard setup through coordinator: %v", err)
	}
	if adm.EndToEndGuaranteed <= 0 {
		t.Fatalf("no end-to-end guarantee returned: %+v", adm)
	}

	for _, shardAddr := range []struct{ id, addr string }{{"s0", aAddr}, {"s1", bAddr}} {
		sc, err := wire.Dial(shardAddr.addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != "xconn" {
			t.Fatalf("shard %s lists %v, want [xconn]", shardAddr.id, ids)
		}
		h, err := sc.Health()
		if err != nil {
			t.Fatal(err)
		}
		if h.ShardID != shardAddr.id || h.Prepared != 0 {
			t.Fatalf("shard %s health: shardId=%q prepared=%d", shardAddr.id, h.ShardID, h.Prepared)
		}
		st, err := sc.ShardStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.ShardID != shardAddr.id || len(st.Prepared) != 0 {
			t.Fatalf("shard %s status: %+v", shardAddr.id, st)
		}
		sc.Close()
	}

	// The coordinator's own health speaks for the fleet.
	h, err := cc.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "coordinator" || h.Connections != 1 {
		t.Fatalf("coordinator health: role=%q connections=%d", h.Role, h.Connections)
	}

	if err := cc.Teardown("xconn"); err != nil {
		t.Fatalf("teardown through coordinator: %v", err)
	}
	for _, addr := range []string{aAddr, bAddr} {
		sc, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List()
		sc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("residual connections %v on %s after coordinator teardown", ids, addr)
		}
	}

	// A ring-wrapping route revisits s0 (its hops straddle s1): the
	// coordinator merges s0's runs into one prepare and demands an
	// end-to-end bound for the jitter entering the downstream run.
	wrapRoute := core.Route{
		{Switch: "ring01", In: 5, Out: 0},
		{Switch: "ring02", In: 5, Out: 0},
		{Switch: "ring03", In: 5, Out: 0},
		{Switch: "ring00", In: 5, Out: 0},
	}
	wrap := core.ConnRequest{ID: "wconn", Spec: traffic.CBR(0.05), Priority: 1, Route: wrapRoute}
	if _, err := cc.Setup(wrap); err == nil {
		t.Fatal("unbounded wrapping setup admitted through coordinator")
	}
	wrap.DelayBound = 4 * 40
	if _, err := cc.Setup(wrap); err != nil {
		t.Fatalf("bounded wrapping setup through coordinator: %v", err)
	}
	for _, addr := range []string{aAddr, bAddr} {
		sc, err := wire.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ids, err := sc.List()
		sc.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 1 || ids[0] != "wconn" {
			t.Fatalf("shard %s lists %v, want [wconn]", addr, ids)
		}
	}
	if err := cc.Teardown("wconn"); err != nil {
		t.Fatalf("teardown of wrapped connection: %v", err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	for name, done := range map[string]chan error{"s0": aDone, "s1": bDone, "coordinator": cDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s daemon exited with %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s daemon did not drain on SIGTERM", name)
		}
	}
}

// TestShardFlagValidation pins the role-exclusivity and intent-log
// requirements.
func TestShardFlagValidation(t *testing.T) {
	if err := run([]string{"-shard-map", "s0@h:1=sw0", "-shard-id", "s0"}); err == nil {
		t.Fatal("coordinator+shard roles accepted")
	}
	if err := run([]string{"-shard-map", "s0@h:1=sw0"}); err == nil {
		t.Fatal("coordinator without -intent-log accepted")
	}
	if err := run([]string{"-shard-map", "garbage", "-intent-log", "x.log"}); err == nil {
		t.Fatal("malformed shard map accepted")
	}
}
