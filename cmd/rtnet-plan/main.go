// Command rtnet-plan runs an offline connection admission plan against an
// RTnet configuration — the workflow of the current RTnet, where all
// real-time connections are permanent and the CAC check runs off-line
// (paper Section 5). The scenario is a JSON document in physical units
// (Mbps, microseconds); print a documented sample with -example.
//
// Usage:
//
//	rtnet-plan -example > scenario.json
//	rtnet-plan -f scenario.json
//
// The exit status is 0 when every connection is admitted and 3 when at
// least one is rejected (the report still prints).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"atmcac/internal/plan"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("rtnet-plan", flag.ContinueOnError)
	var (
		file     = fs.String("f", "", "scenario JSON file (default: stdin)")
		example  = fs.Bool("example", false, "print a sample scenario and exit")
		markdown = fs.Bool("markdown", false, "emit the report as Markdown")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *example {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(plan.Example()); err != nil {
			fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
			return 1
		}
		return 0
	}
	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	scenario, err := plan.Load(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
		return 1
	}
	report, err := scenario.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
		return 1
	}
	if *markdown {
		if err := report.WriteMarkdown(os.Stdout, scenario); err != nil {
			fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
			return 1
		}
		if report.Rejected > 0 {
			return 3
		}
		return 0
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "connection\tverdict\te2e bound\tguaranteed\tdetail")
	for _, r := range report.Results {
		if r.Admitted {
			fmt.Fprintf(tw, "%s\tadmitted\t%.0f us (%.1f cells)\t%.0f cells\t\n",
				r.ID, r.BoundMicros, r.BoundCells, r.GuaranteedCells)
		} else {
			fmt.Fprintf(tw, "%s\tREJECTED\t\t\t%s\n", r.ID, r.Reason)
		}
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "rtnet-plan:", err)
		return 1
	}
	fmt.Printf("\n%d admitted, %d rejected; worst end-to-end bound %.1f cell times\n",
		report.Admitted, report.Rejected, report.WorstBoundCells)
	if report.Rejected > 0 {
		return 3
	}
	return 0
}
