package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	f()
	_ = w.Close()
	return <-done
}

func TestRunExample(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-example"}); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	for _, want := range []string{`"ringNodes"`, `"connections"`, `"pcrMbps"`} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q", want)
		}
	}
}

func TestRunExampleScenarioEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	doc := captureStdout(t, func() {
		if code := run([]string{"-example"}); code != 0 {
			t.Error("example failed")
		}
	})
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if code := run([]string{"-f", path}); code != 0 {
			t.Errorf("exit code = %d", code)
		}
	})
	if !strings.Contains(out, "admitted") || strings.Contains(out, "REJECTED") {
		t.Errorf("report = %q", out)
	}
	if !strings.Contains(out, "4 admitted, 0 rejected") {
		t.Errorf("summary missing: %q", out)
	}
}

func TestRunRejectionExitCode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "overload.json")
	// 30 bursty 20 Mbps connections onto 8-cell queues.
	doc := `{"network": {"ringNodes": 4, "terminalsPerNode": 8, "queues": {"1": 8}}, "connections": [`
	for i := 0; i < 30; i++ {
		if i > 0 {
			doc += ","
		}
		doc += `{"id": "c` + string(rune('a'+i/8)) + string(rune('a'+i%8)) + `", "origin": ` +
			string(rune('0'+i%4)) + `, "terminal": ` + string(rune('0'+i/4%8)) + `, "pcrMbps": 20}`
	}
	doc += `]}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if code := run([]string{"-f", path}); code != 3 {
			t.Errorf("exit code = %d, want 3", code)
		}
	})
	if !strings.Contains(out, "REJECTED") {
		t.Errorf("report lacks rejections: %q", out)
	}
}

func TestRunMissingFile(t *testing.T) {
	if code := run([]string{"-f", "/definitely/missing.json"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}

func TestRunBadScenario(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte(`{"connections": []}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-f", path}); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}
