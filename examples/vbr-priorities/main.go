// Bursty VBR traffic, priority levels, and soft real-time admission.
//
// This example exercises the paper's two extensions on a shared bottleneck:
//
//   - multiple static priorities (Section 4.3, discussion 2): delay-critical
//     connections get the tight priority-1 FIFO while delay-tolerant bulk
//     traffic rides a larger priority-2 FIFO, and the CAC protects each
//     class's budget — including lower priorities — on every admission;
//
//   - soft CAC (discussion 1 / Figure 13): accumulating upstream jitter as
//     a square-root sum instead of the worst-case sum admits more traffic
//     at a small, quantified risk.
//
//     go run ./examples/vbr-priorities
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"

	"atmcac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A switch with two real-time classes: 32 cells (about 87us at
	// 155 Mbps) for control traffic, 256 cells for bulk telemetry.
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name: "bottleneck",
		QueueCells: map[atmcac.Priority]float64{
			1: 32,
			2: 256,
		},
	})
	if err != nil {
		return err
	}

	control := atmcac.CBR(0.02)           // steady sensor scans
	telemetry := atmcac.VBR(0.8, 0.1, 64) // heavy bursts, low average

	// Admit a mix until each class hits its own budget.
	admit := func(label string, spec atmcac.TrafficSpec, prio atmcac.Priority, in int) bool {
		res, err := sw.Admit(atmcac.HopRequest{
			Conn: atmcac.ConnID(fmt.Sprintf("%s-%02d", label, in)),
			Spec: spec, In: atmcac.PortID(in), Out: 0, Priority: prio, CDV: 32,
		})
		var rej *atmcac.RejectionError
		if errors.As(err, &rej) {
			fmt.Printf("  %-12s REJECTED protecting priority %d: %.1f > %.0f cell times\n",
				label, rej.Priority, rej.Bound, rej.Limit)
			return false
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s admitted at priority %d:", label, prio)
		prios := make([]atmcac.Priority, 0, len(res.Bounds))
		for p := range res.Bounds {
			prios = append(prios, p)
		}
		sort.Slice(prios, func(i, j int) bool { return prios[i] < prios[j] })
		for _, p := range prios {
			fmt.Printf("  D'(p%d)=%.1f", p, res.Bounds[p])
		}
		fmt.Println()
		return true
	}

	fmt.Println("mixing control (priority 1) and bursty telemetry (priority 2):")
	in := 1
	for i := 0; i < 4; i++ {
		admit("control", control, 1, in)
		in++
	}
	for i := 0; i < 3; i++ {
		if !admit("telemetry", telemetry, 2, in) {
			break
		}
		in++
	}
	// More control traffic must not wreck the telemetry class's budget:
	// the CAC checks lower priorities on every higher-priority admission.
	fmt.Println("\npushing more control traffic until a class budget breaks:")
	for i := 0; i < 16; i++ {
		if !admit("control", control, 1, in) {
			break
		}
		in++
	}

	// Soft versus hard CDV accumulation across a 6-hop path.
	fmt.Println("\nsoft vs hard CAC on a 6-hop route (32-cell queues):")
	for _, policy := range []atmcac.CDVPolicy{atmcac.HardCDV{}, atmcac.SoftCDV{}} {
		n := atmcac.NewNetwork(policy)
		route := make(atmcac.Route, 6)
		for i := range route {
			name := fmt.Sprintf("sw%d", i)
			if _, err := n.AddSwitch(atmcac.SwitchConfig{
				Name: name, QueueCells: map[atmcac.Priority]float64{1: 32},
			}); err != nil {
				return err
			}
			route[i] = atmcac.Hop{Switch: name, In: 1, Out: 0}
		}
		admitted := 0
		for i := 0; ; i++ {
			r := make(atmcac.Route, len(route))
			copy(r, route)
			for h := range r {
				r[h].In = atmcac.PortID(i + 1)
			}
			_, err := n.Setup(context.Background(), atmcac.ConnRequest{
				ID:   atmcac.ConnID(fmt.Sprintf("c%d", i)),
				Spec: atmcac.VBR(0.4, 0.02, 8), Priority: 1, Route: r,
			})
			if err != nil {
				break
			}
			admitted++
		}
		fmt.Printf("  %-4s CDV accumulation admits %d bursty connections\n",
			policy.Name(), admitted)
	}
	return nil
}
