// Validation: the analytic worst case versus a cell-by-cell simulation.
//
// The paper derives its delay bounds analytically; this example checks them
// empirically. It admits a symmetric RTnet cyclic workload with the CAC,
// then simulates the identical connection set on a cell-level model of the
// priority-FIFO ring, with sources that conform to their (PCR, SCR, MBS)
// contracts — both greedy (the adversarial pattern of Figure 1) and
// randomized. Measured delays must stay within the computed bounds, queue
// occupancies within the FIFO budgets, and no cell may be lost.
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"atmcac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scenarios := []struct {
		name string
		cfg  atmcac.ValidationConfig
	}{
		{"light, greedy sources", atmcac.ValidationConfig{
			RingNodes: 8, Terminals: 2, Load: 0.3, Slots: 60000, Mode: atmcac.SimGreedy,
		}},
		{"light, random sources", atmcac.ValidationConfig{
			RingNodes: 8, Terminals: 2, Load: 0.3, Slots: 60000, Mode: atmcac.SimRandom, Seed: 7,
		}},
		{"near the admission limit", atmcac.ValidationConfig{
			RingNodes: 8, Terminals: 4, Load: 0.55, Slots: 60000, Mode: atmcac.SimGreedy,
		}},
	}
	for _, sc := range scenarios {
		res, err := atmcac.ValidateRTnet(sc.cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n  %s\n", sc.name, res)
		switch {
		case !res.Feasible:
			fmt.Println("  (CAC rejected the workload; nothing to validate)")
		case res.Holds():
			fmt.Printf("  OK: measured max %d <= bound %.1f, occupancy %d <= budget %.0f, 0 drops\n",
				res.MeasuredMaxDelay, res.AnalyticBound, res.MeasuredMaxOccupancy, res.QueueBudget)
		default:
			fmt.Println("  GUARANTEE VIOLATED — this would falsify the analysis")
		}
		fmt.Println()
	}
	return nil
}
