// Ring failure, FDDI-style wrap, and re-admission — RTnet's fault story.
//
// RTnet connects its ring nodes with dual counter-rotating 155 Mbps links
// and heals any single link or node failure with a hardware wrap, like
// FDDI (paper Section 5). A wrap has no free lunch for hard real-time
// traffic: broadcast routes lengthen to up to 2(R-1)-1 queueing points, so
// every connection's contractual end-to-end bound grows and the whole
// configuration must be re-validated by the CAC.
//
// This example plans a cyclic workload on the healthy ring, fails a link,
// replans on the wrapped topology, and shows (1) the workload survives —
// the previously idle secondary ring absorbs it — but (2) the high-speed
// 1 ms class breaks on the longest wrapped routes, which is exactly what
// an offline CAC must catch before a plant relies on it.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"

	"atmcac"
)

const (
	ringNodes = 8
	terminals = 2
	load      = 0.3
	failed    = 3 // the primary link ring03 -> ring04 breaks
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	budget := atmcac.CyclicClasses()[0].DelayCellTimes()

	// Healthy ring.
	healthy, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes: ringNodes, TerminalsPerNode: terminals,
	})
	if err != nil {
		return err
	}
	w, err := healthy.SymmetricWorkload(load, 1)
	if err != nil {
		return err
	}
	if err := healthy.InstallAll(w); err != nil {
		return err
	}
	if v, err := healthy.Audit(); err != nil || len(v) > 0 {
		return fmt.Errorf("healthy audit: %v %v", v, err)
	}
	hBound, err := healthy.MaxBroadcastBound(1)
	if err != nil {
		return err
	}
	hGuarantee := float64(ringNodes-1) * 32
	fmt.Printf("healthy ring (%d nodes, %.0f%% cyclic load):\n", ringNodes, load*100)
	fmt.Printf("  routes: %d hops, guarantee %.0f cell times, computed bound %.1f\n",
		ringNodes-1, hGuarantee, hBound)
	fmt.Printf("  high-speed 1 ms budget (%.0f cell times): %s\n\n", budget, verdict(hGuarantee <= budget))

	// Link ring03 -> ring04 fails; the ring wraps.
	fmt.Printf("primary link ring%02d -> ring%02d goes DOWN; ring wraps onto the secondary\n\n", failed, failed+1)
	wrapped, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes: ringNodes, TerminalsPerNode: terminals,
	})
	if err != nil {
		return err
	}
	ww, err := wrapped.SymmetricWorkloadWrapped(load, 1, failed)
	if err != nil {
		return err
	}
	if err := wrapped.InstallAll(ww); err != nil {
		return err
	}
	violations, err := wrapped.Audit()
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		fmt.Println("wrapped ring REJECTS the workload:")
		for _, v := range violations {
			fmt.Println("  ", v)
		}
		return nil
	}
	wBound, err := wrapped.MaxWrappedRouteBound(1, failed)
	if err != nil {
		return err
	}
	// Route lengths vary with the origin's distance from the wrap.
	shortest, longest := ringNodes*2, 0
	for origin := 0; origin < ringNodes; origin++ {
		route, err := wrapped.WrappedBroadcastRoute(origin, 0, failed)
		if err != nil {
			return err
		}
		if len(route) < shortest {
			shortest = len(route)
		}
		if len(route) > longest {
			longest = len(route)
		}
	}
	wGuarantee := float64(longest) * 32
	fmt.Printf("wrapped ring, same workload:\n")
	fmt.Printf("  audit: PASSES — the secondary ring absorbs the load\n")
	fmt.Printf("  routes: %d-%d hops, worst guarantee %.0f cell times, computed bound %.1f\n",
		shortest, longest, wGuarantee, wBound)
	fmt.Printf("  high-speed 1 ms budget (%.0f cell times): %s\n", budget, verdict(wGuarantee <= budget))
	if wGuarantee > budget {
		fmt.Printf("  -> high-speed cyclic traffic from the worst origins must be re-planned\n")
		fmt.Printf("     (shorter budgets, higher priority, or reduced membership) until repair\n")
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "met"
	}
	return "BROKEN"
}
