// Live ring failure, FDDI-style wrap, and automatic re-admission.
//
// RTnet connects its ring nodes with dual counter-rotating 155 Mbps links
// and heals any single link failure with a hardware wrap, like FDDI (paper
// Section 5). A wrap has no free lunch for hard real-time traffic:
// broadcast routes lengthen to up to 2(R-1)-1 queueing points, so every
// evicted connection must pass the full CAC check again on its wrapped
// route before it may transmit.
//
// Unlike an offline replan, this example drives the failure live on one
// running network: a cyclic workload is admitted on the healthy ring, a
// primary link is failed, and the failover engine evicts and re-admits
// every affected connection over the wrapped ring. The workload survives —
// the previously idle secondary ring absorbs it — but one high-speed
// connection holding the 1 ms class budget is rejected in degraded mode,
// because its wrapped route's guarantee exceeds the budget. Degradation is
// reported, never silent: the connection stays down until the link is
// repaired, then is re-admitted over the healed ring.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"

	"atmcac"
)

const (
	ringNodes = 8
	terminals = 2
	load      = 0.3
	failed    = 3 // the primary link ring03 -> ring04 breaks
	perHop    = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	budget := atmcac.CyclicClasses()[0].DelayCellTimes()

	net, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes: ringNodes, TerminalsPerNode: terminals,
	})
	if err != nil {
		return err
	}
	w, err := net.SymmetricWorkload(load, 1)
	if err != nil {
		return err
	}
	if err := net.InstallAll(w); err != nil {
		return err
	}
	// One high-speed connection contractually holds the 1 ms class budget;
	// on the healthy ring its 2(R-1)-1-free broadcast meets it easily. Its
	// origin sits where the wrap will stretch routes the most.
	worstOrigin := (failed + 2) % ringNodes
	hsRoute, err := net.BroadcastRoute(worstOrigin, 0)
	if err != nil {
		return err
	}
	hs := atmcac.ConnRequest{
		ID: "hs-1ms", Spec: atmcac.CBR(0.005), Priority: 1,
		Route: hsRoute, DelayBound: budget,
	}
	if _, err := net.Core().Setup(context.Background(), hs); err != nil {
		return fmt.Errorf("healthy high-speed setup: %w", err)
	}
	if v, err := net.Audit(); err != nil || len(v) > 0 {
		return fmt.Errorf("healthy audit: %v %v", v, err)
	}
	hGuarantee := float64(ringNodes-1) * perHop
	fmt.Printf("healthy ring (%d nodes, %.0f%% cyclic load + 1 high-speed conn):\n", ringNodes, load*100)
	fmt.Printf("  broadcasts: %d hops, guarantee %.0f cell times\n", ringNodes-1, hGuarantee)
	fmt.Printf("  high-speed 1 ms budget (%.0f cell times): %s\n\n", budget, verdict(hGuarantee <= budget))

	// The link fails live: evict everything traversing it, wrap, re-admit.
	fmt.Printf("primary link ring%02d -> ring%02d goes DOWN; re-admitting over the wrap\n\n", failed, (failed+1)%ringNodes)
	eng := atmcac.NewFailoverEngine(net, atmcac.FailoverOptions{})
	rep, err := eng.HandlePrimaryLinkFailure(failed)
	if err != nil {
		return err
	}
	fmt.Printf("evicted %d connections: %d re-admitted, %d rejected in degraded mode\n",
		len(rep.Outcomes), rep.Readmitted(), rep.Rejected())

	// The paper's Section 5 wrapped bound must still hold for every
	// survivor: no route beyond 2(R-1)-1 hops, every queue within its
	// guarantee, and the hard budget connection either meets its bound or
	// is reported down — never silently degraded.
	maxHops := 2*(ringNodes-1) - 1
	longest := 0
	for _, o := range rep.Outcomes {
		switch {
		case o.Readmitted:
			if len(o.Route) > maxHops {
				return fmt.Errorf("%s re-admitted over %d hops, beyond the Section 5 wrap limit %d",
					o.ID, len(o.Route), maxHops)
			}
			if len(o.Route) > longest {
				longest = len(o.Route)
			}
		case o.ID == hs.ID:
			fmt.Printf("  %s stays DOWN: %v\n", o.ID, o.Err)
		default:
			return fmt.Errorf("unexpected rejection of %s: %v", o.ID, o.Err)
		}
	}
	if rep.Rejected() != 1 {
		return fmt.Errorf("expected exactly the high-speed connection down, got %d rejections", rep.Rejected())
	}
	if v, err := net.Audit(); err != nil || len(v) > 0 {
		return fmt.Errorf("degraded audit: %v %v", v, err)
	}
	wGuarantee := float64(longest) * perHop
	fmt.Printf("wrapped ring carries the cyclic workload:\n")
	fmt.Printf("  audit: PASSES — the secondary ring absorbs the load\n")
	fmt.Printf("  longest wrapped route: %d hops (limit %d), guarantee %.0f cell times\n",
		longest, maxHops, wGuarantee)
	fmt.Printf("  high-speed 1 ms budget (%.0f cell times): %s\n\n", budget, verdict(wGuarantee <= budget))

	// Repair: restore the link and re-admit the rejected connection over
	// the healed primary ring.
	if err := net.RestorePrimaryLink(failed); err != nil {
		return err
	}
	if _, err := net.Core().Setup(context.Background(), hs); err != nil {
		return fmt.Errorf("re-admission after repair: %w", err)
	}
	if v, err := net.Audit(); err != nil || len(v) > 0 {
		return fmt.Errorf("healed audit: %v %v", v, err)
	}
	fmt.Printf("link repaired: %s re-admitted over the primary ring, audit clean\n", hs.ID)
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "met"
	}
	return "BROKEN"
}
