// Automatic priority assignment from delay budgets — the paper's
// discussion 2, made mechanical.
//
// "Connections with diverse delay bound requirements can be supported more
// efficiently (i.e., connections requesting large delay bounds can be
// assigned low priority levels)." Rather than hand-assigning priorities,
// this example derives each cyclic transmission class's priority from its
// own Table 1 delay budget: the planner picks the least urgent priority
// whose contractual end-to-end guarantee still meets the budget, keeping
// the scarce tight FIFO for the traffic that actually needs it.
//
//	go run ./examples/auto-priority
package main

import (
	"context"
	"fmt"
	"log"

	"atmcac"
)

// An 8-node plant segment: the 7-hop broadcast guarantee of the 32-cell
// FIFO (224 cell times) fits the high-speed 1 ms budget contractually.
// (On the full 16-node ring the 15-hop guarantee is 480 > 367, so the
// high-speed class can only be carried against the load-dependent computed
// bound, not the fixed guarantee — which is exactly what Figure 10 shows.)
const (
	ringNodes = 8
	terminals = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A three-level priority ladder: 32-cell, 256-cell and 2048-cell FIFOs
	// guarantee 224, 1792 and 14336 cell times over the 7-hop broadcast
	// route — about 0.6 ms, 4.9 ms and 39 ms.
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminals,
		QueueCells: map[atmcac.Priority]float64{
			1: 32,
			2: 256,
			3: 2048,
		},
	})
	if err != nil {
		return err
	}
	total := ringNodes * terminals
	classes := atmcac.CyclicClasses()

	fmt.Println("assigning priorities from Table 1 delay budgets:")
	assigned := make(map[string]atmcac.Priority, len(classes))
	route, err := rt.BroadcastRoute(0, 0)
	if err != nil {
		return err
	}
	for _, c := range classes {
		p, err := rt.Core().AssignPriority(route, c.DelayCellTimes())
		if err != nil {
			return fmt.Errorf("class %s: %w", c.Name, err)
		}
		assigned[c.Name] = p
		guarantee := float64(len(route)) * map[atmcac.Priority]float64{1: 32, 2: 256, 3: 2048}[p]
		fmt.Printf("  %-13s budget %6.0f cell times -> priority %d (guarantee %.0f)\n",
			c.Name, c.DelayCellTimes(), p, guarantee)
	}

	// Establish every class from every terminal at its derived priority.
	for ci, c := range classes {
		spec, err := c.TerminalSpec(total)
		if err != nil {
			return err
		}
		for node := 0; node < ringNodes; node++ {
			for t := 0; t < terminals; t++ {
				r, err := rt.BroadcastRoute(node, t)
				if err != nil {
					return err
				}
				_, err = rt.Core().Setup(context.Background(), atmcac.ConnRequest{
					ID:         atmcac.ConnID(fmt.Sprintf("cyc%d-%02d-%02d", ci, node, t)),
					Spec:       spec,
					Priority:   assigned[c.Name],
					Route:      r,
					DelayBound: c.DelayCellTimes(),
				})
				if err != nil {
					return fmt.Errorf("class %s from node %d terminal %d: %w", c.Name, node, t, err)
				}
			}
		}
	}
	fmt.Printf("\nestablished %d connections (%d classes x %d terminals), all budgets met\n",
		len(classes)*total, len(classes), total)

	// The tight FIFO now carries only the high-speed class.
	for p := atmcac.Priority(1); p <= 3; p++ {
		bound, err := rt.RingPortBounds(p)
		if err != nil {
			return err
		}
		fmt.Printf("  priority %d worst per-hop bound: %.1f cell times\n", p, max64(bound))
	}
	return nil
}

func max64(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
