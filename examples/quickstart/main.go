// Quickstart: the bit-stream algebra and a first admission decision.
//
// This example walks the paper's pipeline on one switch: build worst-case
// envelopes for CBR/VBR connections (Algorithm 2.1), distort them by
// upstream jitter (Algorithm 3.1), and let the CAC decide — with an exact
// worst-case queueing delay bound (Algorithm 4.1) — how many connections a
// 32-cell real-time FIFO can carry.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"atmcac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A VBR connection: peak rate half the link, sustained 5%, bursts of
	// up to 8 cells. Its worst-case envelope is a three-step bit stream.
	spec := atmcac.VBR(0.5, 0.05, 8)
	envelope, err := spec.Stream()
	if err != nil {
		return err
	}
	fmt.Printf("%v\n  worst-case envelope  %v\n", spec, envelope)

	// Crossing a network distorts traffic: after 64 cell times of
	// accumulated delay variation the burst clumps at full link rate.
	clumped, err := envelope.Delayed(64)
	if err != nil {
		return err
	}
	fmt.Printf("  after CDV=64 clumping %v\n\n", clumped)

	// A switch with a 32-cell highest-priority FIFO guarantees every
	// admitted connection at most 32 cell times of queueing (about 87us
	// at 155 Mbps) — if and only if the CAC keeps the worst case within
	// the budget.
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name:       "node0",
		QueueCells: map[atmcac.Priority]float64{1: 32},
	})
	if err != nil {
		return err
	}
	fmt.Println("admitting jittered VBR connections onto a 32-cell FIFO:")
	for i := 1; ; i++ {
		res, err := sw.Admit(atmcac.HopRequest{
			Conn:     atmcac.ConnID(fmt.Sprintf("vbr-%02d", i)),
			Spec:     spec,
			In:       atmcac.PortID(i), // each on its own incoming link
			Out:      0,
			Priority: 1,
			CDV:      64,
		})
		if err != nil {
			var rej *atmcac.RejectionError
			if errors.As(err, &rej) {
				fmt.Printf("  connection %2d REJECTED: worst case %.1f > budget %.0f cell times\n",
					i, rej.Bound, rej.Limit)
				break
			}
			return err
		}
		fmt.Printf("  connection %2d admitted: worst-case delay %.1f cell times\n",
			i, res.Bounds[1])
	}

	// The same traffic arriving via one shared upstream link is
	// pre-smoothed by that link (the paper's "filtering effect") and
	// admits far more connections.
	shared, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name:       "node1",
		QueueCells: map[atmcac.Priority]float64{1: 32},
	})
	if err != nil {
		return err
	}
	admitted := 0
	for i := 1; i <= 18; i++ {
		if _, err := shared.Admit(atmcac.HopRequest{
			Conn: atmcac.ConnID(fmt.Sprintf("shared-%02d", i)), Spec: spec,
			In: 1, Out: 0, Priority: 1, CDV: 64,
		}); err != nil {
			break
		}
		admitted++
	}
	fmt.Printf("\nsame connections via one shared (pre-filtered) link: %d admitted\n", admitted)
	return nil
}
