// Hard real-time admission on an arbitrary topology — not just RTnet.
//
// The paper's CAC is topology-agnostic: any network of static-priority FIFO
// switches works. This example builds a small campus tree (hosts on edge
// switches, edge switches uplinked to a core), derives CAC routes from the
// physical topology with BFS, and admits sensor/actuator connections until
// the shared core uplink becomes the bottleneck — showing the per-hop
// bounds a multi-level LAN gives hard real-time traffic.
//
//	go run ./examples/campus-tree
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"atmcac"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildCampus returns a two-level tree: four hosts per edge switch, four
// edge switches uplinked to one core switch, full duplex.
func buildCampus() (*atmcac.Topology, []atmcac.TopologyNodeID, error) {
	g := atmcac.NewTopology()
	if err := g.AddNode("core", atmcac.KindSwitch); err != nil {
		return nil, nil, err
	}
	var hosts []atmcac.TopologyNodeID
	for e := 0; e < 4; e++ {
		edge := atmcac.TopologyNodeID(fmt.Sprintf("edge%d", e))
		if err := g.AddNode(edge, atmcac.KindSwitch); err != nil {
			return nil, nil, err
		}
		// Uplink pair edge <-> core (port 0 on the edge side).
		if err := g.AddLink(atmcac.TopologyLink{From: edge, FromPort: 0, To: "core", ToPort: e}); err != nil {
			return nil, nil, err
		}
		if err := g.AddLink(atmcac.TopologyLink{From: "core", FromPort: e, To: edge, ToPort: 0}); err != nil {
			return nil, nil, err
		}
		for h := 0; h < 4; h++ {
			host := atmcac.TopologyNodeID(fmt.Sprintf("host%d-%d", e, h))
			if err := g.AddNode(host, atmcac.KindHost); err != nil {
				return nil, nil, err
			}
			port := 10 + h
			if err := g.AddLink(atmcac.TopologyLink{From: host, FromPort: 0, To: edge, ToPort: port}); err != nil {
				return nil, nil, err
			}
			if err := g.AddLink(atmcac.TopologyLink{From: edge, FromPort: port, To: host, ToPort: 0}); err != nil {
				return nil, nil, err
			}
			hosts = append(hosts, host)
		}
	}
	return g, hosts, nil
}

func run() error {
	g, hosts, err := buildCampus()
	if err != nil {
		return err
	}
	network, err := atmcac.BuildNetworkFromTopology(g, map[atmcac.Priority]float64{1: 32}, atmcac.HardCDV{})
	if err != nil {
		return err
	}
	fmt.Printf("campus tree: %d switches, %d hosts, 32-cell real-time FIFOs\n\n",
		len(network.SwitchNames()), len(hosts))

	// Cross-tree sensor connections: host i streams to the host diagonally
	// across the tree, always crossing the core.
	spec := atmcac.VBR(0.3, 0.01, 8)
	admitted := 0
	for i := 0; ; i++ {
		from := hosts[i%len(hosts)]
		to := hosts[(i+9)%len(hosts)] // different edge switch
		route, err := atmcac.RouteBetween(g, from, to)
		if err != nil {
			return err
		}
		adm, err := network.Setup(context.Background(), atmcac.ConnRequest{
			ID:   atmcac.ConnID(fmt.Sprintf("sensor-%02d", i)),
			Spec: spec, Priority: 1, Route: route,
		})
		if err != nil {
			var rej *atmcac.RejectionError
			if errors.As(err, &rej) {
				fmt.Printf("\nconnection %d REJECTED at %s (bound %.1f > %.0f): the %s uplink is full\n",
					i, rej.Switch, rej.Bound, rej.Limit, rej.Switch)
				break
			}
			return err
		}
		if i < 4 || i%8 == 0 {
			fmt.Printf("  %s -> %s via %d hops: e2e bound %.1f cell times (guarantee %.0f)\n",
				from, to, len(route), adm.EndToEndComputed, adm.EndToEndGuaranteed)
		}
		admitted++
	}
	fmt.Printf("admitted %d cross-tree connections before the bottleneck\n\n", admitted)

	// Local (same edge switch) traffic is unaffected by the full uplink.
	route, err := atmcac.RouteBetween(g, hosts[0], hosts[1])
	if err != nil {
		return err
	}
	adm, err := network.Setup(context.Background(), atmcac.ConnRequest{
		ID: "local", Spec: spec, Priority: 1, Route: route,
	})
	if err != nil {
		return err
	}
	fmt.Printf("local traffic still fits: %s -> %s in %d hop, bound %.1f cell times\n",
		hosts[0], hosts[1], len(route), adm.EndToEndComputed)
	return nil
}
