package main

import "testing"

// TestRunSmoke keeps the example runnable as the library evolves.
func TestRunSmoke(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
