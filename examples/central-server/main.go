// Central CAC server and distributed signaling, side by side.
//
// The paper describes two deployments of the CAC (Section 4.3, discussion
// 3): distributed at the switches — each node runs the check as the SETUP
// message passes through — or centralized at a connection management
// server, which is what the next version of RTnet plans for switched
// real-time connections. This example runs both against the same workload:
//
//   - a signaling fabric with one goroutine per ring node executing
//     SETUP/REJECT/CONNECTED hop by hop, and
//   - a TCP central CAC server managing an identical ring, driven through
//     the JSON wire protocol on a loopback socket,
//
// and shows they admit exactly the same connections with the same bounds.
//
//	go run ./examples/central-server
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"time"

	"atmcac"
)

const (
	ringNodes = 8
	queue     = 32
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// broadcastRoute is the RTnet broadcast route from the given origin node.
func broadcastRoute(origin, terminal int) (atmcac.Route, error) {
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes:        ringNodes,
		TerminalsPerNode: terminal + 1,
	})
	if err != nil {
		return nil, err
	}
	return rt.BroadcastRoute(origin, terminal)
}

func run() error {
	// --- Distributed deployment: a signaling fabric. ---
	fabric := atmcac.NewSignalingFabric(atmcac.HardCDV{})
	defer fabric.Close()
	for i := 0; i < ringNodes; i++ {
		if _, err := fabric.AddNode(atmcac.SwitchConfig{
			Name:       atmcac.RTnetSwitchName(i),
			QueueCells: map[atmcac.Priority]float64{1: queue},
		}); err != nil {
			return err
		}
	}

	// --- Centralized deployment: a TCP CAC server on loopback. ---
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes:        ringNodes,
		TerminalsPerNode: 16,
		QueueCells:       map[atmcac.Priority]float64{1: queue},
	})
	if err != nil {
		return err
	}
	server := atmcac.NewCACServer(rt.Core())
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = server.Serve(l)
	}()
	defer func() {
		_ = server.Close()
		<-serveDone
	}()
	client, err := atmcac.DialCAC(l.Addr().String())
	if err != nil {
		return err
	}
	defer client.Close()

	// The workload: bursty broadcast connections from successive nodes
	// until the CAC says no.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fmt.Printf("admitting bursty broadcasts on both deployments (%d-node ring, %d-cell queues):\n",
		ringNodes, queue)
	for i := 0; ; i++ {
		route, err := broadcastRoute(i%ringNodes, i/ringNodes)
		if err != nil {
			return err
		}
		req := atmcac.ConnRequest{
			ID:       atmcac.ConnID(fmt.Sprintf("bcast-%02d", i)),
			Spec:     atmcac.VBR(0.5, 0.01, 4),
			Priority: 1,
			Route:    route,
		}
		distributed, dErr := fabric.Connect(ctx, req)
		central, cErr := client.Setup(context.Background(), req)

		if (dErr == nil) != (cErr == nil) {
			return fmt.Errorf("deployments disagree on %s: distributed=%v central=%v", req.ID, dErr, cErr)
		}
		if dErr != nil {
			if !errors.Is(dErr, atmcac.ErrRejected) || !errors.Is(cErr, atmcac.ErrRejected) {
				return fmt.Errorf("unexpected errors: %v / %v", dErr, cErr)
			}
			fmt.Printf("  %s REJECTED by both deployments — capacity reached after %d connections\n",
				req.ID, i)
			break
		}
		fmt.Printf("  %s admitted: end-to-end bound %.1f cell times (distributed) = %.1f (central)\n",
			req.ID, distributed.EndToEndComputed, central.EndToEndComputed)
		if diff := distributed.EndToEndComputed - central.EndToEndComputed; diff > 1e-9 || diff < -1e-9 {
			return fmt.Errorf("bound mismatch on %s", req.ID)
		}
	}

	ids, err := client.List(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("\ncentral server carries %d connections; releasing them:\n", len(ids))
	for _, id := range ids {
		if err := client.Teardown(context.Background(), id); err != nil {
			return err
		}
		if err := fabric.Disconnect(ctx, id); err != nil {
			return err
		}
	}
	ids, err = client.List(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("done; %d connections remain\n", len(ids))
	return nil
}
