// RTnet cyclic transmission planning — the paper's motivating application.
//
// RTnet implements a network-wide real-time shared memory: every terminal
// periodically broadcasts its portion of the shared memory to all others.
// Table 1 of the paper defines three cyclic transmission classes (high,
// medium and low speed). This example plans all three classes on an RTnet
// with the CAC, offline (the mode the current RTnet uses for its permanent
// connections): it installs every broadcast connection, audits every ring
// queue, and checks each class's end-to-end delay budget.
//
//	go run ./examples/rtnet-cyclic [-ring N] [-terminals N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"atmcac"
)

func main() {
	ring := flag.Int("ring", 16, "ring nodes")
	terminals := flag.Int("terminals", 4, "terminals per ring node")
	flag.Parse()
	if err := run(*ring, *terminals); err != nil {
		log.Fatal(err)
	}
}

func run(ring, terminals int) error {
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes:        ring,
		TerminalsPerNode: terminals,
	})
	if err != nil {
		return err
	}
	total := ring * terminals

	// Print Table 1 with each class's bandwidth derived from its period
	// and memory size.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "class\tperiod\tmemory\twire bandwidth\tdelay budget")
	classes := atmcac.CyclicClasses()
	for _, c := range classes {
		rate, err := c.NormalizedRate()
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%v\t%d KB\t%.1f Mbps\t%.0f cell times\n",
			c.Name, c.Period, c.MemoryBytes/1024, rate*155.52, c.DelayCellTimes())
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// One broadcast CBR connection per (terminal, class): each terminal
	// broadcasts its 1/total share of every class's shared memory.
	fmt.Printf("\nplanning %d broadcast connections (%d terminals x %d classes) on %d ring nodes\n",
		total*len(classes), total, len(classes), ring)
	for ci, c := range classes {
		spec, err := c.TerminalSpec(total)
		if err != nil {
			return err
		}
		for node := 0; node < ring; node++ {
			for t := 0; t < terminals; t++ {
				route, err := rt.BroadcastRoute(node, t)
				if err != nil {
					return err
				}
				req := atmcac.ConnRequest{
					ID:       atmcac.ConnID(fmt.Sprintf("cyc%d-%02d-%02d", ci, node, t)),
					Spec:     spec,
					Priority: 1,
					Route:    route,
				}
				if err := rt.Core().Install(req); err != nil {
					return err
				}
			}
		}
	}

	// Audit: every ring-node FIFO must stay within its 32-cell budget.
	violations, err := rt.Audit()
	if err != nil {
		return err
	}
	if len(violations) > 0 {
		fmt.Println("\nCAC REJECTS this configuration:")
		for _, v := range violations {
			fmt.Println("  ", v)
		}
		fmt.Println("reduce -terminals or the ring size")
		return nil
	}

	bound, err := rt.MaxBroadcastBound(1)
	if err != nil {
		return err
	}
	us := bound * atmcac.OC3.CellTimeSeconds() * 1e6
	fmt.Printf("\nCAC accepts: worst end-to-end queueing delay %.0f cell times (%.0f us)\n", bound, us)
	for _, c := range classes {
		verdict := "meets"
		if bound > c.DelayCellTimes() {
			verdict = "MISSES"
		}
		fmt.Printf("  %-13s budget %6.0f cell times: %s it\n", c.Name, c.DelayCellTimes(), verdict)
	}
	return nil
}
