package main

import "testing"

// TestRunSmoke keeps the example runnable as the library evolves, covering
// both the accepting and the rejecting configuration.
func TestRunSmoke(t *testing.T) {
	if err := run(16, 4); err != nil {
		t.Fatal(err)
	}
	if err := run(16, 16); err != nil {
		t.Fatal(err)
	}
}
