module atmcac

go 1.22
