#!/bin/sh
# Runs the perf-trajectory benchmarks (parallel admission throughput,
# per-admission persistence cost, generated-topology fleet admission,
# replicated setup latency per ack mode, sharded setup latency per
# route footprint — including the shard-failover variant that pins
# setup latency while the pool discovers a dead primary and re-points
# at the pair's survivor — plus the PR 10 wire-layer pair: batched
# setup amortizing one group-commit fsync across 1/8/32 connections,
# and pipelined setup+teardown churn on a single binary connection)
# and writes one JSON point for the BENCH_<pr>.json series. CI runs it as a
# smoke test; a committed BENCH_*.json records the machine it was measured
# on. Each benchmark entry carries workload/topology descriptor fields so
# trajectory points stay comparable across PRs even as scenarios evolve.
#
# Usage: scripts/bench.sh [output.json]
set -eu
out="${1:-BENCH_10.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench '^BenchmarkParallelAdmit$' -benchmem . | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkGeneratedFleetAdmit$' -benchmem . | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkPersistSetup$' -benchmem ./internal/wire/ | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkReplicatedSetup$' -benchmem ./internal/replica/ | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkShardedSetup$' -benchmem ./internal/shard/ | tee -a "$tmp"
# Fixed iteration count: the journal-sync fsync figure only stabilizes
# once the journal file reaches steady state, and a fixed count keeps
# the batch-1 vs batch-32 per-item comparison on equal footing.
go test -run '^$' -bench '^BenchmarkBatchedSetup$' -benchtime 2000x -benchmem ./internal/wire/ | tee -a "$tmp"
go test -run '^$' -bench '^BenchmarkPipelinedClient$' -benchmem ./internal/wire/ | tee -a "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
    n = 0
    # Scenario descriptors: what each benchmark offers (workload) and where
    # it runs (topology). Update alongside the benchmark definitions.
    wl["BenchmarkParallelAdmit"]       = "VBR(0.004,0.0005,4) setup+teardown, one 3-hop segment per worker"
    tp["BenchmarkParallelAdmit"]       = "rtnet-ring 16 nodes x 16 terminals"
    wl["BenchmarkGeneratedFleetAdmit"] = "seeded fleet seed=42, 64 mixed CBR/VBR templates, seeded host pairs"
    tp["BenchmarkGeneratedFleetAdmit"] = "generated campus hierarchy: 2 buildings x 3 floors x 2 hosts"
    wl["BenchmarkPersistSetup"]        = "CBR(0.0001) setup over 500 established connections"
    tp["BenchmarkPersistSetup"]        = "2-switch chain"
    wl["BenchmarkReplicatedSetup"]     = "CBR(0.001) admit+release cycle acked through a loopback primary/standby pair per replication mode"
    tp["BenchmarkReplicatedSetup"]     = "rtnet-ring 4 nodes x 2 terminals, journal-sync durability"
    wl["BenchmarkShardedSetup"]        = "CBR(0.001) admit+release cycle on a fixed 4-hop route; local = coordinator fast path, cross-N = two-phase reserve-commit over N shards with a fsynced intent log, failover = cross-shard 2PC that must first discover a dead pair primary and re-point at the survivor"
    tp["BenchmarkShardedSetup"]        = "3 loopback shard daemons x 4 switches (32-cell prio-1 queues); failover adds a replicated s0 pair with a refused-dial primary"
    wl["BenchmarkBatchedSetup"]        = "batch-setup of N CBR(0.0001) connections at server dispatch level, journal-sync durability, one group fsync per batch; ns/item is the per-connection figure (teardown reset untimed)"
    tp["BenchmarkBatchedSetup"]        = "32 disjoint single-hop switches, compaction thresholds pinned out"
    wl["BenchmarkPipelinedClient"]     = "CBR(0.0001) setup+teardown pairs from 8x GOMAXPROCS workers pipelined on ONE binary connection, journal-sync durability with group commit"
    tp["BenchmarkPipelinedClient"]     = "2-switch chain over loopback TCP"
}
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { $1 = ""; sub(/^ /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    benches[n] = name; iters[n] = $2; ns[n] = $3
    bytes[n] = "null"; allocs[n] = "null"; nsitem[n] = "null"
    for (i = 4; i < NF; i++) {
        if ($(i+1) == "B/op") bytes[n] = $i
        if ($(i+1) == "allocs/op") allocs[n] = $i
        if ($(i+1) == "ns/item") nsitem[n] = $i
    }
    n++
}
END {
    printf "{\n"
    printf "  \"timestamp\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        base = benches[i]; sub(/\/.*$/, "", base)
        extra = (nsitem[i] == "null" ? "" : sprintf(", \"ns_per_item\": %s", nsitem[i]))
        printf "    {\"name\": \"%s\", \"workload\": \"%s\", \"topology\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}%s\n", \
            benches[i], wl[base], tp[base], iters[i], ns[i], bytes[i], allocs[i], extra, (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
