// Package atmcac is a connection admission control (CAC) library for hard
// real-time communication in ATM networks, reproducing Zheng, Yokotani,
// Ichihashi and Nemoto, "Connection Admission Control for Hard Real-Time
// Communication in ATM Networks" (MERL TR-96-21 / ICDCS 1997).
//
// The library provides, over plain static-priority FIFO switches:
//
//   - the bit-stream traffic model and its manipulation algebra
//     (Algorithms 2.1 and 3.1-3.4 of the paper): worst-case envelopes of
//     CBR/VBR connections, delay/jitter clumping, multiplexing,
//     demultiplexing, and link filtering;
//   - worst-case queueing analysis (Algorithm 4.1): exact delay and backlog
//     bounds at static-priority FIFO queueing points;
//   - the CAC engine (Section 4.3): per-switch admission state, the
//     six-step admission check, fixed per-hop delay guarantees, hard
//     (worst-case sum) and soft (square-root sum) CDV accumulation, and
//     network-level setup with rollback;
//   - distributed SETUP/REJECT/CONNECTED signaling and a TCP-based central
//     CAC server;
//   - a cell-level simulator of priority-FIFO ATM switches used to validate
//     the analytic bounds;
//   - the RTnet plant-control network model of the paper's evaluation,
//     including its cyclic transmission classes and the workloads of
//     Figures 10-13.
//
// # Quick start
//
// Build a switch, admit connections, observe the worst-case delay bound:
//
//	sw, _ := atmcac.NewSwitch(atmcac.SwitchConfig{
//		Name:       "node0",
//		QueueCells: map[atmcac.Priority]float64{1: 32},
//	})
//	res, err := sw.Admit(atmcac.HopRequest{
//		Conn: "sensor-1", Spec: atmcac.CBR(0.05),
//		In: 1, Out: 0, Priority: 1,
//	})
//
// The runnable programs under examples/ and the cmd/rtnet-figures tool
// regenerate every table and figure of the paper's evaluation; see
// EXPERIMENTS.md for the reproduction record.
//
// # Concurrency
//
// All CAC types are safe for concurrent use. Switches publish their
// admission state as immutable copy-on-write snapshots: queries never
// block, and Admit evaluates the Algorithm 4.1 bounds lock-free against a
// snapshot, then commits under a short per-switch critical section that
// re-validates the snapshot (retrying on interference, with a fully
// locked fallback for guaranteed progress). A connection is only ever
// committed against the exact state its bounds were computed on, so
// concurrent setups on a Network yield the same admit/reject decisions as
// some serial ordering of the same requests — the hard real-time
// guarantees of admitted connections are never weakened by races.
// Setups on disjoint routes proceed in parallel without shared locks.
// See DESIGN.md §4a for the locking model. Connection IDs containing NUL
// bytes are reserved for internal signaling probes.
package atmcac
