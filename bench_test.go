package atmcac_test

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"atmcac"
	"atmcac/internal/ablation"
	"atmcac/internal/experiments"
	"atmcac/internal/routing"
	"atmcac/internal/sim"
	"atmcac/internal/topology"
	"atmcac/internal/workload"
)

// ---------------------------------------------------------------------------
// Evaluation benchmarks: one per table/figure of the paper. Each measures
// the cost of regenerating the artifact (coarse grids keep iterations in
// the hundreds of milliseconds) and reports a headline number from the
// produced data as a custom metric, so `go test -bench` doubles as a
// reproduction smoke check. cmd/rtnet-figures produces the full-resolution
// series.
// ---------------------------------------------------------------------------

// BenchmarkTable1 regenerates Table 1 (cyclic transmission classes).
func BenchmarkTable1(b *testing.B) {
	var mbps float64
	for i := 0; i < b.N; i++ {
		rows, err := atmcac.Table1()
		if err != nil {
			b.Fatal(err)
		}
		mbps = rows[0].PayloadMbps
	}
	b.ReportMetric(mbps, "highspeed-Mbps")
}

// BenchmarkFigure10 regenerates the symmetric delay-bound sweep (paper
// Figure 10) on a coarse load grid for all four N values.
func BenchmarkFigure10(b *testing.B) {
	cfg := experiments.SymmetricConfig{
		Loads: []float64{0.15, 0.35, 0.55, 0.75},
	}
	var boundN1 float64
	for i := 0; i < b.N; i++ {
		series, err := atmcac.Figure10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pts := series[0].Points
		boundN1 = pts[len(pts)-1].Y
	}
	// Paper: N=1 supports 75% load under 370 cell times.
	b.ReportMetric(boundN1, "N1-B0.75-bound-cells")
}

// BenchmarkFigure11 regenerates the asymmetric capacity sweep (Figure 11).
func BenchmarkFigure11(b *testing.B) {
	cfg := experiments.AsymmetricConfig{
		Shares:    []float64{0.25, 0.5, 0.75},
		Tolerance: 1.0 / 32,
	}
	var n16 float64
	for i := 0; i < b.N; i++ {
		series, err := atmcac.Figure11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		n16 = series[2].Points[1].Y // N=16, p=0.5
	}
	b.ReportMetric(n16, "N16-p0.5-maxload")
}

// BenchmarkFigure12 regenerates the one-versus-two-priorities comparison
// (Figure 12).
func BenchmarkFigure12(b *testing.B) {
	cfg := experiments.Figure12Config{
		Shares:    []float64{0.25, 0.5, 0.75},
		Tolerance: 1.0 / 32,
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		series, err := atmcac.Figure12(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = series[1].Points[1].Y - series[0].Points[1].Y
	}
	b.ReportMetric(gain, "2prio-gain-p0.5")
}

// BenchmarkFigure13 regenerates the soft-versus-hard CAC comparison
// (Figure 13).
func BenchmarkFigure13(b *testing.B) {
	cfg := experiments.Figure13Config{
		Shares:    []float64{0.25, 0.5, 0.75},
		Tolerance: 1.0 / 32,
	}
	var gain float64
	for i := 0; i < b.N; i++ {
		series, err := atmcac.Figure13(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gain = series[0].Points[1].Y - series[1].Points[1].Y
	}
	b.ReportMetric(gain, "soft-gain-p0.5")
}

// BenchmarkValidationSim measures the CAC-versus-simulation soundness
// experiment (cell-level RTnet ring with conforming sources).
func BenchmarkValidationSim(b *testing.B) {
	cfg := atmcac.ValidationConfig{
		RingNodes: 6, Terminals: 2, Load: 0.3, Slots: 20000, Mode: atmcac.SimGreedy,
	}
	var slack float64
	for i := 0; i < b.N; i++ {
		res, err := atmcac.ValidateRTnet(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Holds() {
			b.Fatalf("analytic guarantee violated: %s", res)
		}
		slack = res.AnalyticBound - float64(res.MeasuredMaxDelay)
	}
	b.ReportMetric(slack, "bound-slack-cells")
}

// BenchmarkAblation measures the design-choice ablation of DESIGN.md: the
// admissible-load gap between the paper's full scheme and the variants
// without link filtering / with crude distortion bounds.
func BenchmarkAblation(b *testing.B) {
	cfg := ablation.Config{RingNodes: 8, Terminals: 2}
	var filteringWorth float64
	for i := 0; i < b.N; i++ {
		cmp, err := ablation.Compare(cfg, 1.0/32)
		if err != nil {
			b.Fatal(err)
		}
		filteringWorth = cmp.MaxLoad[ablation.Exact] - cmp.MaxLoad[ablation.NoFiltering]
	}
	b.ReportMetric(filteringWorth, "filtering-load-gain")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core algorithms.
// ---------------------------------------------------------------------------

// BenchmarkFromVBR measures Algorithm 2.1 (envelope construction).
func BenchmarkFromVBR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := atmcac.FromVBR(0.5, 0.05, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayed measures Algorithm 3.1 (worst-case CDV clumping).
func BenchmarkDelayed(b *testing.B) {
	s, err := atmcac.FromVBR(0.5, 0.05, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Delayed(96); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAggregate builds a realistic ring-port aggregate: n delayed VBR
// envelopes multiplexed.
func benchAggregate(b *testing.B, n int) atmcac.Stream {
	b.Helper()
	env, err := atmcac.FromVBR(0.5, 0.4/float64(n), 8)
	if err != nil {
		b.Fatal(err)
	}
	streams := make([]atmcac.Stream, n)
	for i := range streams {
		d, err := env.Delayed(float64(32 * (i % 15)))
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = d
	}
	return atmcac.SumStreams(streams...)
}

// BenchmarkSum240 measures Algorithm 3.2 over a full RTnet port aggregate
// (240 connections, the N=16 configuration).
func BenchmarkSum240(b *testing.B) {
	env, err := atmcac.FromVBR(0.5, 0.002, 8)
	if err != nil {
		b.Fatal(err)
	}
	streams := make([]atmcac.Stream, 240)
	for i := range streams {
		d, err := env.Delayed(float64(32 * (i % 15)))
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := atmcac.SumStreams(streams...)
		if agg.IsZero() {
			b.Fatal("empty aggregate")
		}
	}
}

// BenchmarkFiltered measures Algorithm 3.4 on a 64-connection aggregate.
func BenchmarkFiltered(b *testing.B) {
	agg := benchAggregate(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = agg.Filtered()
	}
}

// BenchmarkDelayBound measures Algorithm 4.1 with a higher-priority stream.
func BenchmarkDelayBound(b *testing.B) {
	agg := benchAggregate(b, 64)
	higher := benchAggregate(b, 16).Filtered()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atmcac.DelayBound(agg, higher); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwitchAdmit measures one admission check (admit + release) on a
// switch already carrying 63 connections.
func BenchmarkSwitchAdmit(b *testing.B) {
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name: "sw", QueueCells: map[atmcac.Priority]float64{1: 1e6},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 63; i++ {
		if _, err := sw.Admit(atmcac.HopRequest{
			Conn: atmcac.ConnID(fmt.Sprintf("bg%d", i)),
			Spec: atmcac.VBR(0.5, 0.002, 8),
			In:   atmcac.PortID(i % 16), Out: 0, Priority: 1,
			CDV: float64(32 * (i % 15)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sw.Admit(atmcac.HopRequest{
			Conn: "probe", Spec: atmcac.VBR(0.5, 0.002, 8),
			In: 3, Out: 0, Priority: 1, CDV: 64,
		}); err != nil {
			b.Fatal(err)
		}
		if err := sw.Release("probe"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAdmit measures concurrent end-to-end admissions on a
// 16-node RTnet: each worker repeatedly sets up and tears down a 3-hop
// segment connection starting at its own ring node, so workers touch
// mostly disjoint switches and the two-phase admit path (lock-free bound
// evaluation, short commit sections) can scale with -cpu. Queues are
// sized so every admission must succeed — any rejection would be a
// divergence from the serial decision and fails the benchmark.
func BenchmarkParallelAdmit(b *testing.B) {
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{
		RingNodes:        16,
		TerminalsPerNode: 16,
		QueueCells:       map[atmcac.Priority]float64{1: 1e6},
		Policy:           atmcac.HardCDV{},
	})
	if err != nil {
		b.Fatal(err)
	}
	network := rt.Core()
	spec := atmcac.VBR(0.004, 0.0005, 4)
	var workers atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(workers.Add(1) - 1)
		route, err := rt.SegmentRoute(w%16, w%16, 3)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; pb.Next(); i++ {
			id := atmcac.ConnID(fmt.Sprintf("w%d-c%d", w, i))
			if _, err := network.Setup(context.Background(), atmcac.ConnRequest{
				ID: id, Spec: spec, Priority: 1, Route: route,
			}); err != nil {
				b.Errorf("worker %d: setup %s: %v", w, id, err)
				return
			}
			if err := network.Teardown(id); err != nil {
				b.Errorf("worker %d: teardown %s: %v", w, id, err)
				return
			}
		}
	})
}

// BenchmarkGeneratedFleetAdmit measures end-to-end admission on a generated
// campus-hierarchy topology carrying a seeded mixed CBR/VBR fleet: each
// iteration sets up and tears down one fleet connection between seeded host
// pairs over BFS shortest-path routes. Queues are sized so every admission
// succeeds; the cost measured is the multi-hop CAC evaluation itself.
func BenchmarkGeneratedFleetAdmit(b *testing.B) {
	g, err := topology.Campus(topology.CampusConfig{
		Buildings: 2, FloorsPerBuilding: 3, HostsPerFloor: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	network, err := routing.BuildNetwork(g,
		map[atmcac.Priority]float64{1: 1e6, 2: 1e6}, atmcac.HardCDV{})
	if err != nil {
		b.Fatal(err)
	}
	fleet, err := workload.SampleFleet(42, workload.FleetConfig{}, 64)
	if err != nil {
		b.Fatal(err)
	}
	var hosts []topology.NodeID
	for bi := 0; bi < 2; bi++ {
		for fi := 0; fi < 3; fi++ {
			for h := 0; h < 2; h++ {
				hosts = append(hosts, topology.CampusHost(bi, fi, h))
			}
		}
	}
	rng := workload.NewRNG(42).Split("bench-pairs")
	var routes []atmcac.Route
	for len(routes) < len(fleet) {
		from := hosts[rng.Intn(len(hosts))]
		to := hosts[rng.Intn(len(hosts))]
		if from == to {
			continue
		}
		route, err := routing.Route(g, from, to)
		if err != nil {
			b.Fatal(err)
		}
		routes = append(routes, route)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl := fleet[i%len(fleet)]
		id := atmcac.ConnID(fmt.Sprintf("bench-%d", i))
		if _, err := network.Setup(context.Background(), atmcac.ConnRequest{
			ID: id, Spec: tmpl.Spec, Priority: tmpl.Priority, Route: routes[i%len(routes)],
		}); err != nil {
			b.Fatal(err)
		}
		if err := network.Teardown(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTnetAudit measures a full offline plan audit of the paper's
// largest configuration: 16 ring nodes with 16 terminals each (256
// broadcast connections over 3840 hop reservations).
func BenchmarkRTnetAudit(b *testing.B) {
	rt, err := atmcac.NewRTnet(atmcac.RTnetConfig{TerminalsPerNode: 16})
	if err != nil {
		b.Fatal(err)
	}
	w, err := rt.SymmetricWorkload(0.3, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.InstallAll(w); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		violations, err := rt.Audit()
		if err != nil {
			b.Fatal(err)
		}
		if len(violations) != 0 {
			b.Fatalf("audit violations: %v", violations)
		}
	}
}

// BenchmarkSignalingConnect measures one distributed SETUP/CONNECTED round
// (plus teardown) across a 4-node fabric.
func BenchmarkSignalingConnect(b *testing.B) {
	fabric := atmcac.NewSignalingFabric(atmcac.HardCDV{})
	defer fabric.Close()
	route := make(atmcac.Route, 4)
	for i := range route {
		name := fmt.Sprintf("sw%d", i)
		if _, err := fabric.AddNode(atmcac.SwitchConfig{
			Name: name, QueueCells: map[atmcac.Priority]float64{1: 1e6},
		}); err != nil {
			b.Fatal(err)
		}
		route[i] = atmcac.Hop{Switch: name, In: 1, Out: 0}
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := atmcac.ConnID(fmt.Sprintf("c%d", i))
		if _, err := fabric.Connect(ctx, atmcac.ConnRequest{
			ID: id, Spec: atmcac.CBR(0.001), Priority: 1, Route: route,
		}); err != nil {
			b.Fatal(err)
		}
		if err := fabric.Disconnect(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireSetupTeardown measures one setup+teardown round trip over
// the TCP protocol against a loopback central CAC server.
func BenchmarkWireSetupTeardown(b *testing.B) {
	network := atmcac.NewNetwork(atmcac.HardCDV{})
	route := make(atmcac.Route, 2)
	for i := range route {
		name := fmt.Sprintf("sw%d", i)
		if _, err := network.AddSwitch(atmcac.SwitchConfig{
			Name: name, QueueCells: map[atmcac.Priority]float64{1: 1e6},
		}); err != nil {
			b.Fatal(err)
		}
		route[i] = atmcac.Hop{Switch: name, In: 1, Out: 0}
	}
	srv := atmcac.NewCACServer(network)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(l)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()
	client, err := atmcac.DialCAC(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := atmcac.ConnID(fmt.Sprintf("c%d", i))
		if _, err := client.Setup(context.Background(), atmcac.ConnRequest{
			ID: id, Spec: atmcac.CBR(0.001), Priority: 1, Route: route,
		}); err != nil {
			b.Fatal(err)
		}
		if err := client.Teardown(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSlots measures the cell-level simulator's throughput (slots
// per op on an 8-node ring with 16 greedy sources).
func BenchmarkSimSlots(b *testing.B) {
	const slots = 10000
	b.ReportMetric(slots, "slots/op")
	for i := 0; i < b.N; i++ {
		n := sim.New()
		switches := make([]*sim.Switch, 8)
		for k := range switches {
			sw, err := n.AddSwitch(fmt.Sprintf("sw%d", k), map[sim.Priority]int{1: 64})
			if err != nil {
				b.Fatal(err)
			}
			switches[k] = sw
		}
		for k := range switches {
			if err := n.Link(switches[k], 0, switches[(k+1)%8], 0); err != nil {
				b.Fatal(err)
			}
		}
		for vc := 0; vc < 16; vc++ {
			origin := vc % 8
			for h := 0; h < 7; h++ {
				if err := switches[(origin+h)%8].SetRoute(vc, 0, 1); err != nil {
					b.Fatal(err)
				}
			}
			if err := switches[(origin+7)%8].SetRoute(vc, 100+vc, 1); err != nil {
				b.Fatal(err)
			}
			if err := n.AddSource(sim.SourceConfig{
				VC: vc, Spec: atmcac.CBR(0.02), Dest: switches[origin], InPort: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := n.Run(slots); err != nil {
			b.Fatal(err)
		}
	}
}
