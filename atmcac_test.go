package atmcac_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"atmcac"
)

// TestFacadeQuickstart exercises the public API end to end: build the
// envelope algebra, a switch, and a two-hop network through the root
// package only.
func TestFacadeQuickstart(t *testing.T) {
	// Bit-stream algebra.
	env, err := atmcac.FromVBR(0.5, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	agg := atmcac.SumStreams(env, env)
	d, err := atmcac.DelayBound(agg, atmcac.ZeroStream())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("two multiplexed bursts bound = %g, want > 0", d)
	}
	back, err := atmcac.SubStreams(agg, env)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(env, 1e-9) {
		t.Error("Sub(Add(e,e), e) != e through the facade")
	}

	// Switch-level admission.
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name:       "node0",
		QueueCells: map[atmcac.Priority]float64{1: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Admit(atmcac.HopRequest{
		Conn: "sensor-1", Spec: atmcac.CBR(0.05), In: 1, Out: 0, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Guaranteed != 32 {
		t.Errorf("guaranteed = %g, want 32", res.Guaranteed)
	}

	// Network-level setup and teardown.
	n := atmcac.NewNetwork(atmcac.SoftCDV{})
	for _, name := range []string{"a", "b"} {
		if _, err := n.AddSwitch(atmcac.SwitchConfig{
			Name: name, QueueCells: map[atmcac.Priority]float64{1: 32},
		}); err != nil {
			t.Fatal(err)
		}
	}
	route := atmcac.Route{{Switch: "a", In: 1, Out: 0}, {Switch: "b", In: 0, Out: 0}}
	adm, err := n.Setup(context.Background(), atmcac.ConnRequest{
		ID: "c1", Spec: atmcac.VBR(0.5, 0.1, 4), Priority: 1, Route: route, DelayBound: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adm.EndToEndGuaranteed != 64 {
		t.Errorf("end-to-end guarantee = %g, want 64", adm.EndToEndGuaranteed)
	}
	if err := n.Teardown("c1"); err != nil {
		t.Fatal(err)
	}
	if err := n.Teardown("c1"); !errors.Is(err, atmcac.ErrUnknownConn) {
		t.Errorf("double teardown error = %v", err)
	}
}

func TestFacadeUnits(t *testing.T) {
	ct := atmcac.OC3.CellTime()
	if ct <= 0 {
		t.Fatalf("OC3 cell time = %v", ct)
	}
	r := atmcac.OC3.Normalize(155.52e6 / 2)
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("half OC3 normalized = %g, want 0.5", r)
	}
}

func TestFacadePacerAndChecker(t *testing.T) {
	spec := atmcac.VBR(0.5, 0.1, 4)
	p, err := atmcac.NewPacer(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := atmcac.NewConformanceChecker(spec, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ok, err := c.Observe(p.NextAfter(0))
		if err != nil || !ok {
			t.Fatalf("cell %d non-conforming: %v", i, err)
		}
	}
}

func TestFacadeRejection(t *testing.T) {
	sw, err := atmcac.NewSwitch(atmcac.SwitchConfig{
		Name: "tiny", QueueCells: map[atmcac.Priority]float64{1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rejected error
	for i := 0; i < 8 && rejected == nil; i++ {
		_, rejected = sw.Admit(atmcac.HopRequest{
			Conn: atmcac.ConnID(rune('a' + i)), Spec: atmcac.CBR(0.01),
			In: atmcac.PortID(i), Out: 0, Priority: 1,
		})
	}
	if !errors.Is(rejected, atmcac.ErrRejected) {
		t.Fatalf("rejection = %v, want ErrRejected", rejected)
	}
	var detail *atmcac.RejectionError
	if !errors.As(rejected, &detail) {
		t.Fatal("rejection lacks RejectionError detail")
	}
}
